//! Bounded, tenant-fair admission queue with in-flight request dedup,
//! end-to-end deadlines, and per-tenant caps.
//!
//! The daemon's contention policy lives here, generic over the job and
//! result types so it is unit-testable without a trained model:
//!
//! * **Admission control** — at most `limit` requests queue; the next one
//!   is refused with a typed [`ScanError::Overloaded`] carrying a
//!   retry-after hint that scales with queue pressure (see
//!   [`FairQueue::retry_hint`]). The daemon sheds load instead of
//!   queueing unboundedly.
//! * **Fairness** — tenants take turns: workers pop from a round-robin
//!   rotation of tenants with queued work, so one tenant flooding the
//!   queue cannot starve another's single request (it waits behind at
//!   most one job per other tenant, not behind the flood).
//! * **In-flight dedup** — a request identical (same tenant, same
//!   fingerprint) to one already queued or executing joins that job's
//!   waiter list instead of queueing again: two clients auditing the same
//!   image trigger one computation, and each still gets its own
//!   correctly-tagged response.
//! * **Deadlines** — each [`Waiter`] may carry an absolute deadline.
//!   [`FairQueue::next`] prunes expired waiters at pop time and *discards*
//!   a job whose every waiter has expired without ever burning an
//!   executor slot; the expired waiters are handed to the caller so each
//!   can be answered with a typed
//!   [`ScanError::DeadlineExceeded`](patchecko_core::ScanError::DeadlineExceeded).
//!   A job that still has live waiters returns the strictest *surviving*
//!   envelope (`None` if any waiter is unbounded, else the latest
//!   deadline) for the executor's cancellation token.
//! * **Per-tenant cap** — on top of the global bound, a tenant may hold
//!   at most `tenant_cap` distinct jobs (queued + executing); the next
//!   distinct job is refused with a typed `QuotaExceeded`. Dedup joins
//!   are exempt: they consume no execution capacity.
//! * **Drain** — a state machine `Running → Draining → Stopped`. Draining
//!   refuses new work ([`ScanError::Draining`]), lets queued + in-flight
//!   work finish, and wakes the drain caller when the queue is idle.
//!
//! Everything synchronizes on one `Mutex` + two `Condvar`s (`ready` for
//! workers, `idle` for drainers); the service state lives *inside* the
//! mutex so a state flip can never race a worker's decision to sleep.

use patchecko_core::error::ScanError;
use std::collections::{HashMap, VecDeque};
use std::sync::mpsc::Sender;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Service lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum State {
    /// Accepting and executing work.
    Running,
    /// Refusing new work; queued and in-flight work is finishing.
    Draining,
    /// All work finished; workers have been told to exit.
    Stopped,
}

/// How an admitted request entered the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admitted {
    /// A new job was queued.
    Queued,
    /// The request joined an identical job already queued or executing.
    Joined,
}

/// A job identity: (tenant, fingerprint of the operation).
pub type JobKey = (String, u64);

/// One client awaiting a job's result under its own request tag, with
/// its (optional) end-to-end deadline.
pub struct Waiter<R> {
    /// The request tag echoed back in the response.
    pub tag: u64,
    /// Absolute expiry instant; `None` waits indefinitely.
    pub deadline: Option<Instant>,
    /// The millisecond budget behind `deadline` (0 when unbounded) —
    /// retained so a typed `DeadlineExceeded` can name the envelope.
    pub budget_ms: u64,
    /// Where the `(tag, result)` pair is delivered.
    pub tx: Sender<(u64, R)>,
}

impl<R> Waiter<R> {
    /// A waiter with no deadline.
    pub fn unbounded(tag: u64, tx: Sender<(u64, R)>) -> Waiter<R> {
        Waiter { tag, deadline: None, budget_ms: 0, tx }
    }

    /// Whether this waiter's deadline has passed at `now`.
    fn expired_at(&self, now: Instant) -> bool {
        matches!(self.deadline, Some(d) if now >= d)
    }
}

/// The clients awaiting a job's result.
pub type Waiters<R> = Vec<Waiter<R>>;

/// A popped job, as handed to an executor: its key, the job itself, and
/// the strictest surviving deadline envelope — `None` when any live
/// waiter is unbounded, otherwise the latest live `(deadline, budget_ms)`.
pub type PoppedJob<J> = (JobKey, J, Option<(Instant, u64)>);

struct Entry<J, R> {
    job: J,
    enqueued: Instant,
    waiters: Waiters<R>,
}

struct Inner<J, R> {
    state: State,
    jobs: HashMap<JobKey, Entry<J, R>>,
    per_tenant: HashMap<String, VecDeque<JobKey>>,
    rotation: VecDeque<String>,
    // Distinct jobs (queued + in flight) per tenant, for the tenant cap.
    load: HashMap<String, usize>,
    depth: usize,
    in_flight: usize,
}

impl<J, R> Inner<J, R> {
    fn load_dec(&mut self, tenant: &str) {
        if let Some(n) = self.load.get_mut(tenant) {
            *n -= 1;
            if *n == 0 {
                self.load.remove(tenant);
            }
        }
    }
}

/// The tenant-fair bounded queue. `J` is the job payload workers execute;
/// `R` is the (cloneable) result broadcast to every waiter.
pub struct FairQueue<J, R> {
    inner: Mutex<Inner<J, R>>,
    ready: Condvar,
    idle: Condvar,
    limit: usize,
    retry_after_ms: u64,
    tenant_cap: Option<usize>,
}

impl<J: Clone, R: Clone> FairQueue<J, R> {
    /// A queue admitting at most `limit` jobs, advertising a pressure-
    /// scaled multiple of `retry_after_ms` in its typed rejections.
    pub fn new(limit: usize, retry_after_ms: u64) -> FairQueue<J, R> {
        FairQueue {
            inner: Mutex::new(Inner {
                state: State::Running,
                jobs: HashMap::new(),
                per_tenant: HashMap::new(),
                rotation: VecDeque::new(),
                load: HashMap::new(),
                depth: 0,
                in_flight: 0,
            }),
            ready: Condvar::new(),
            idle: Condvar::new(),
            limit: limit.max(1),
            retry_after_ms,
            tenant_cap: None,
        }
    }

    /// Cap the distinct jobs (queued + executing) any one tenant may hold;
    /// `None` leaves only the global bound.
    pub fn with_tenant_cap(mut self, cap: Option<usize>) -> FairQueue<J, R> {
        self.tenant_cap = cap.map(|c| c.max(1));
        self
    }

    /// The admission limit.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Current (state, queued, in-flight).
    pub fn status(&self) -> (State, usize, usize) {
        let inner = self.inner.lock().expect("queue lock");
        (inner.state, inner.depth, inner.in_flight)
    }

    /// The backoff hint for a rejection issued under `pressure` live jobs
    /// (queued + in flight): the configured base, scaled linearly with
    /// `pressure / queue_limit` up to 8× base, so clients back off harder
    /// exactly when the service is deepest under water. An empty queue
    /// hints the base itself.
    pub fn retry_hint(&self, pressure: usize) -> u64 {
        let base = self.retry_after_ms.max(1);
        let scaled = base + (base * 3).saturating_mul(pressure as u64) / self.limit as u64;
        scaled.min(base * 8)
    }

    /// Submit a request: the waiter receives `(tag, result)` when the job
    /// completes. Identical in-flight requests coalesce.
    ///
    /// # Errors
    /// [`ScanError::Draining`] once drain has begun;
    /// [`ScanError::Overloaded`] when the queue is full; `QuotaExceeded`
    /// when the tenant's distinct-job cap is reached.
    pub fn submit(
        &self,
        tenant: &str,
        fingerprint: u64,
        job: &J,
        waiter: Waiter<R>,
    ) -> Result<Admitted, ScanError> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.state != State::Running {
            return Err(ScanError::Draining);
        }
        let key: JobKey = (tenant.to_string(), fingerprint);
        if let Some(entry) = inner.jobs.get_mut(&key) {
            entry.waiters.push(waiter);
            return Ok(Admitted::Joined);
        }
        let pressure = inner.depth + inner.in_flight;
        if let Some(cap) = self.tenant_cap {
            if inner.load.get(tenant).copied().unwrap_or(0) >= cap {
                return Err(ScanError::QuotaExceeded {
                    tenant: tenant.to_string(),
                    retry_after_ms: self.retry_hint(pressure),
                });
            }
        }
        if inner.depth >= self.limit {
            return Err(ScanError::Overloaded {
                queue_depth: inner.depth,
                queue_limit: self.limit,
                retry_after_ms: self.retry_hint(pressure),
            });
        }
        inner.jobs.insert(
            key.clone(),
            Entry { job: job.clone(), enqueued: Instant::now(), waiters: vec![waiter] },
        );
        let queue = inner.per_tenant.entry(tenant.to_string()).or_default();
        queue.push_back(key);
        if queue.len() == 1 {
            inner.rotation.push_back(tenant.to_string());
        }
        *inner.load.entry(tenant.to_string()).or_insert(0) += 1;
        inner.depth += 1;
        drop(inner);
        self.ready.notify_one();
        Ok(Admitted::Queued)
    }

    /// Block until a job is available (rotating fairly across tenants) or
    /// the queue shuts down. `None` tells the worker to exit: the queue
    /// is stopped, or draining with nothing left to run.
    ///
    /// Deadline enforcement happens here, at pop time: waiters whose
    /// deadline has already passed are pruned and handed to `on_expired`
    /// (keyed by the job they were waiting on) so the caller can answer
    /// each with a typed `DeadlineExceeded`. A job left with *no* live
    /// waiters is discarded outright — it never reaches an executor —
    /// and the loop moves on to the next queued job. A surviving job
    /// returns the strictest remaining envelope: `None` if any live
    /// waiter is unbounded, otherwise the latest live deadline.
    pub fn next(
        &self,
        mut on_expired: impl FnMut(&JobKey, Waiters<R>),
    ) -> Option<PoppedJob<J>> {
        let mut expired_batches: Vec<(JobKey, Waiters<R>)> = Vec::new();
        let mut became_idle = false;
        let popped = {
            let mut inner = self.inner.lock().expect("queue lock");
            loop {
                if let Some(tenant) = inner.rotation.pop_front() {
                    let queue =
                        inner.per_tenant.get_mut(&tenant).expect("rotated tenant has a queue");
                    let key = queue.pop_front().expect("rotated tenant queue is non-empty");
                    if queue.is_empty() {
                        inner.per_tenant.remove(&tenant);
                    } else {
                        inner.rotation.push_back(tenant.clone());
                    }
                    inner.depth -= 1;
                    let now = Instant::now();
                    let entry = inner.jobs.get_mut(&key).expect("queued job has an entry");
                    let expired: Waiters<R> = {
                        let mut kept = Vec::new();
                        let mut gone = Vec::new();
                        for w in entry.waiters.drain(..) {
                            if w.expired_at(now) {
                                gone.push(w);
                            } else {
                                kept.push(w);
                            }
                        }
                        entry.waiters = kept;
                        gone
                    };
                    if entry.waiters.is_empty() {
                        // Every waiter's deadline passed while the job sat
                        // queued: discard it without burning an executor
                        // slot and try the next job.
                        inner.jobs.remove(&key);
                        inner.load_dec(&tenant);
                        expired_batches.push((key, expired));
                        if inner.depth == 0 && inner.in_flight == 0 {
                            became_idle = true;
                        }
                        continue;
                    }
                    // The strictest envelope that still satisfies every
                    // live waiter: any unbounded waiter means the job
                    // must run to completion; otherwise the latest
                    // deadline (with its budget, for typed errors) wins.
                    let mut envelope: Option<(Instant, u64)> = None;
                    let mut bounded = true;
                    for w in &entry.waiters {
                        match w.deadline {
                            None => {
                                bounded = false;
                                break;
                            }
                            Some(d) => {
                                if envelope.is_none_or(|(a, _)| d > a) {
                                    envelope = Some((d, w.budget_ms));
                                }
                            }
                        }
                    }
                    let deadline = if bounded { envelope } else { None };
                    let job = entry.job.clone();
                    inner.in_flight += 1;
                    if !expired.is_empty() {
                        expired_batches.push((key.clone(), expired));
                    }
                    break Some((key, job, deadline));
                }
                if inner.state != State::Running {
                    break None;
                }
                inner = self.ready.wait(inner).expect("queue lock");
            }
        };
        if became_idle {
            self.idle.notify_all();
        }
        for (key, waiters) in expired_batches {
            on_expired(&key, waiters);
        }
        popped
    }

    /// Retire a job without waking its waiters yet: remove it from the
    /// in-flight set and return its admission-to-completion latency plus
    /// the waiter list. The caller records telemetry *before* passing the
    /// waiters to [`broadcast`], so a client released by the
    /// broadcast can never observe counters that predate its own job.
    pub fn settle(&self, key: &JobKey) -> (Duration, Waiters<R>) {
        let (entry, drained) = {
            let mut inner = self.inner.lock().expect("queue lock");
            let entry = inner.jobs.remove(key).expect("settled job has an entry");
            inner.in_flight -= 1;
            inner.load_dec(&key.0);
            (entry, inner.depth == 0 && inner.in_flight == 0)
        };
        if drained {
            self.idle.notify_all();
        }
        (entry.enqueued.elapsed(), entry.waiters)
    }

    /// [`FairQueue::settle`] + [`broadcast`] in one step.
    pub fn complete(&self, key: &JobKey, result: R) -> Duration {
        let (latency, waiters) = self.settle(key);
        broadcast(waiters, result);
        latency
    }

    /// Begin (or join) a drain: refuse new work, wait until every queued
    /// and in-flight job has completed. Returns whether this caller
    /// initiated the drain (the initiator persists and then [`FairQueue::stop`]s).
    pub fn drain_wait(&self) -> bool {
        let mut inner = self.inner.lock().expect("queue lock");
        let initiator = inner.state == State::Running;
        if initiator {
            inner.state = State::Draining;
            // Idle workers re-check state and exit once the queue empties.
            self.ready.notify_all();
        }
        while inner.depth > 0 || inner.in_flight > 0 {
            inner = self.idle.wait(inner).expect("queue lock");
        }
        initiator
    }

    /// Final transition: tell every worker to exit.
    pub fn stop(&self) {
        let mut inner = self.inner.lock().expect("queue lock");
        inner.state = State::Stopped;
        drop(inner);
        self.ready.notify_all();
    }
}

/// Deliver `result` to every waiter from [`FairQueue::settle`], each
/// under its own tag — late joiners from dedup included.
pub fn broadcast<R: Clone>(waiters: Waiters<R>, result: R) {
    for w in waiters {
        // A waiter whose connection died mid-request dropped its
        // receiver; the send just fails and the job's other waiters
        // (and the cache warm-up) are unaffected.
        let _ = w.tx.send((w.tag, result.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    fn queue(limit: usize) -> FairQueue<u32, u32> {
        FairQueue::new(limit, 25)
    }

    fn no_expiry(_: &JobKey, _: Waiters<u32>) {
        panic!("no waiter should expire in this test");
    }

    #[test]
    fn rotation_interleaves_tenants_fairly() {
        let q = queue(16);
        // Tenant "flood" queues four jobs before "meek" queues one.
        for i in 0..4 {
            let (tx, _rx) = channel();
            q.submit("flood", i, &(i as u32), Waiter::unbounded(0, tx)).unwrap();
        }
        let (tx, _rx) = channel();
        q.submit("meek", 100, &100, Waiter::unbounded(0, tx)).unwrap();

        let first = q.next(no_expiry).unwrap();
        let second = q.next(no_expiry).unwrap();
        assert_eq!(first.0 .0, "flood");
        assert_eq!(second.0 .0, "meek", "one queued job is enough to take the second turn");
        let rest: Vec<String> = (0..3).map(|_| q.next(no_expiry).unwrap().0 .0).collect();
        assert_eq!(rest, ["flood"; 3], "the flood then finishes in order");
    }

    #[test]
    fn admission_rejects_above_the_limit_with_a_typed_hint() {
        let q = queue(2);
        for i in 0..2 {
            let (tx, _rx) = channel();
            q.submit("t", i, &0, Waiter::unbounded(0, tx)).unwrap();
        }
        let (tx, _rx) = channel();
        match q.submit("t", 99, &0, Waiter::unbounded(0, tx)) {
            Err(ScanError::Overloaded { queue_depth, queue_limit, retry_after_ms }) => {
                assert_eq!((queue_depth, queue_limit), (2, 2));
                assert_eq!(retry_after_ms, q.retry_hint(2), "hint reflects pressure at rejection");
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        // In-flight jobs do not occupy queue slots: popping one admits one.
        let popped = q.next(no_expiry).unwrap();
        let (tx, _rx) = channel();
        q.submit("t", 99, &0, Waiter::unbounded(0, tx)).unwrap();
        q.complete(&popped.0, 0);
    }

    #[test]
    fn retry_hint_scales_with_pressure_and_saturates() {
        let q = queue(8); // base 25ms
        assert_eq!(q.retry_hint(0), 25, "empty queue hints the base");
        assert!(q.retry_hint(4) > q.retry_hint(0));
        assert_eq!(q.retry_hint(8), 100, "full queue hints 4x base");
        assert!(q.retry_hint(12) > q.retry_hint(8), "in-flight pressure keeps scaling");
        assert_eq!(q.retry_hint(1000), 200, "hint saturates at 8x base");
        let monotone: Vec<u64> = (0..32).map(|p| q.retry_hint(p)).collect();
        assert!(monotone.windows(2).all(|w| w[0] <= w[1]), "{monotone:?}");
    }

    #[test]
    fn identical_requests_coalesce_and_all_waiters_hear_the_result() {
        let q = queue(8);
        let (tx1, rx1) = channel();
        let (tx2, rx2) = channel();
        let (tx3, rx3) = channel();
        assert_eq!(q.submit("t", 7, &41, Waiter::unbounded(101, tx1)).unwrap(), Admitted::Queued);
        assert_eq!(q.submit("t", 7, &41, Waiter::unbounded(102, tx2)).unwrap(), Admitted::Joined);
        let (key, job, deadline) = q.next(no_expiry).unwrap();
        assert!(deadline.is_none(), "unbounded waiters leave the job unbounded");
        // A waiter arriving while the job executes still joins it.
        assert_eq!(q.submit("t", 7, &41, Waiter::unbounded(103, tx3)).unwrap(), Admitted::Joined);
        assert_eq!(q.status().1, 0, "three requests, one queue slot");
        q.complete(&key, job + 1);
        assert_eq!(rx1.recv().unwrap(), (101, 42), "each waiter gets its own tag back");
        assert_eq!(rx2.recv().unwrap(), (102, 42));
        assert_eq!(rx3.recv().unwrap(), (103, 42));
        // Different tenant, same fingerprint: never coalesced.
        let (tx, _rx) = channel();
        assert_eq!(q.submit("other", 7, &41, Waiter::unbounded(104, tx)).unwrap(), Admitted::Queued);
    }

    #[test]
    fn expired_jobs_are_discarded_at_pop_without_burning_a_slot() {
        let q = queue(8);
        let past = Instant::now() - Duration::from_millis(5);
        let (tx_dead, _rx_dead) = channel();
        q.submit(
            "a",
            1,
            &10,
            Waiter { tag: 7, deadline: Some(past), budget_ms: 3, tx: tx_dead },
        )
        .unwrap();
        let (tx_live, rx_live) = channel();
        q.submit("b", 2, &20, Waiter::unbounded(8, tx_live)).unwrap();

        let mut expired: Vec<(JobKey, u64, u64)> = Vec::new();
        let (key, job, _) = q
            .next(|k, ws| {
                for w in ws {
                    expired.push((k.clone(), w.tag, w.budget_ms));
                }
            })
            .unwrap();
        assert_eq!(key.0, "b", "the expired job was skipped, the live one popped");
        assert_eq!(expired, vec![(("a".to_string(), 1), 7, 3)]);
        let (_, depth, in_flight) = q.status();
        assert_eq!((depth, in_flight), (0, 1), "discard never entered in_flight");
        q.complete(&key, job);
        assert_eq!(rx_live.recv().unwrap(), (8, 20));
        // The discarded tenant's load was released: it can submit again.
        let (tx, _rx) = channel();
        assert_eq!(q.submit("a", 3, &30, Waiter::unbounded(9, tx)).unwrap(), Admitted::Queued);
    }

    #[test]
    fn partially_expired_job_still_runs_for_its_live_waiters() {
        let q = queue(8);
        let past = Instant::now() - Duration::from_millis(5);
        let future = Instant::now() + Duration::from_secs(60);
        let (tx_dead, _rx_dead) = channel();
        let (tx_live, rx_live) = channel();
        q.submit("t", 1, &5, Waiter { tag: 1, deadline: Some(past), budget_ms: 2, tx: tx_dead })
            .unwrap();
        q.submit(
            "t",
            1,
            &5,
            Waiter { tag: 2, deadline: Some(future), budget_ms: 60_000, tx: tx_live },
        )
        .unwrap();
        let mut expired_tags = Vec::new();
        let (key, job, deadline) = q
            .next(|_, ws| expired_tags.extend(ws.into_iter().map(|w| w.tag)))
            .unwrap();
        assert_eq!(expired_tags, vec![1], "only the expired waiter was pruned");
        assert_eq!(
            deadline,
            Some((future, 60_000)),
            "the surviving envelope (and its budget) bounds the executor"
        );
        q.complete(&key, job);
        assert_eq!(rx_live.recv().unwrap(), (2, 5));
    }

    #[test]
    fn tenant_cap_rejects_distinct_jobs_but_not_joins() {
        let q: FairQueue<u32, u32> = FairQueue::new(16, 25).with_tenant_cap(Some(1));
        let (tx, _rx) = channel();
        q.submit("t", 1, &1, Waiter::unbounded(1, tx)).unwrap();
        // Second distinct job: over the cap, typed rejection.
        let (tx, _rx) = channel();
        match q.submit("t", 2, &2, Waiter::unbounded(2, tx)) {
            Err(ScanError::QuotaExceeded { tenant, retry_after_ms }) => {
                assert_eq!(tenant, "t");
                assert!(retry_after_ms >= 25);
            }
            other => panic!("expected QuotaExceeded, got {other:?}"),
        }
        // A dedup join consumes no capacity and is always admitted.
        let (tx, rx) = channel();
        assert_eq!(q.submit("t", 1, &1, Waiter::unbounded(3, tx)).unwrap(), Admitted::Joined);
        // Another tenant is unaffected by t's cap.
        let (tx, _rx) = channel();
        assert_eq!(q.submit("u", 9, &9, Waiter::unbounded(4, tx)).unwrap(), Admitted::Queued);
        // The cap covers execution too: popping t's job keeps it loaded...
        let (key, job, _) = q.next(no_expiry).unwrap();
        assert_eq!(key.0, "t");
        let (tx, _rx) = channel();
        assert!(matches!(
            q.submit("t", 3, &3, Waiter::unbounded(5, tx)),
            Err(ScanError::QuotaExceeded { .. })
        ));
        // ...and settling releases it.
        q.complete(&key, job);
        assert_eq!(rx.recv().unwrap(), (3, 1));
        let (tx, _rx) = channel();
        assert_eq!(q.submit("t", 3, &3, Waiter::unbounded(6, tx)).unwrap(), Admitted::Queued);
    }

    #[test]
    fn drain_refuses_new_work_and_waits_for_the_queue_to_empty() {
        let q = std::sync::Arc::new(queue(8));
        let (tx, rx) = channel();
        q.submit("t", 1, &10, Waiter::unbounded(1, tx)).unwrap();

        let worker = {
            let q = std::sync::Arc::clone(&q);
            std::thread::spawn(move || {
                while let Some((key, job, _)) = q.next(|_, _| {}) {
                    std::thread::sleep(Duration::from_millis(30));
                    q.complete(&key, job);
                }
            })
        };
        // Give the worker time to pick the job up, then drain mid-flight.
        std::thread::sleep(Duration::from_millis(10));
        assert!(q.drain_wait(), "first drainer initiates");
        let (tx2, _rx2) = channel();
        assert!(matches!(
            q.submit("t", 2, &20, Waiter::unbounded(2, tx2)),
            Err(ScanError::Draining)
        ));
        assert_eq!(rx.recv().unwrap(), (1, 10), "in-flight work finished before drain returned");
        assert_eq!(q.status().0, State::Draining);
        assert!(!q.drain_wait(), "later drainers join, not initiate");
        q.stop();
        worker.join().unwrap();
        assert_eq!(q.status().0, State::Stopped);
    }

    #[test]
    fn draining_queue_of_expired_jobs_reaches_idle() {
        let q = std::sync::Arc::new(queue(8));
        let past = Instant::now() - Duration::from_millis(1);
        let (tx, _rx) = channel();
        q.submit("t", 1, &10, Waiter { tag: 1, deadline: Some(past), budget_ms: 1, tx }).unwrap();
        let worker = {
            let q = std::sync::Arc::clone(&q);
            std::thread::spawn(move || {
                let mut expired = 0usize;
                while let Some((key, job, _)) = q.next(|_, ws| expired += ws.len()) {
                    q.complete(&key, job);
                }
                expired
            })
        };
        // The only queued job is expired: drain must still observe idle
        // once the worker discards it.
        assert!(q.drain_wait());
        q.stop();
        assert_eq!(worker.join().unwrap(), 1, "the expired waiter was reported");
    }
}
