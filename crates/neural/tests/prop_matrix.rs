//! Property tests for the matrix substrate: the fast GEMM paths agree with
//! a naive reference implementation, and linear-algebra laws hold within
//! floating-point tolerance.

use neural::matrix::Matrix;
use proptest::prelude::*;

fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-4.0f32..4.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for r in 0..a.rows() {
        for k in 0..a.cols() {
            for c in 0..b.cols() {
                out.set(r, c, out.get(r, c) + a.get(r, k) * b.get(k, c));
            }
        }
    }
    out
}

fn assert_close(a: &Matrix, b: &Matrix, tol: f32) {
    assert_eq!(a.rows(), b.rows());
    assert_eq!(a.cols(), b.cols());
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        assert!((x - y).abs() <= tol, "{x} vs {y}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn matmul_matches_naive(
        a in matrix_strategy(7, 5),
        b in matrix_strategy(5, 9),
    ) {
        assert_close(&a.matmul(&b), &naive_matmul(&a, &b), 1e-4);
    }

    #[test]
    fn t_matmul_matches_transpose(
        a in matrix_strategy(6, 4),
        b in matrix_strategy(6, 3),
    ) {
        let at = Matrix::from_fn(4, 6, |r, c| a.get(c, r));
        assert_close(&a.t_matmul(&b), &naive_matmul(&at, &b), 1e-4);
    }

    #[test]
    fn matmul_t_matches_transpose(
        a in matrix_strategy(5, 6),
        b in matrix_strategy(8, 6),
    ) {
        let bt = Matrix::from_fn(6, 8, |r, c| b.get(c, r));
        assert_close(&a.matmul_t(&b), &naive_matmul(&a, &bt), 1e-4);
    }

    #[test]
    fn matmul_distributes_over_add(
        a in matrix_strategy(4, 4),
        b in matrix_strategy(4, 4),
        c in matrix_strategy(4, 4),
    ) {
        // A(B + C) == AB + AC
        let mut bc = b.clone();
        bc.add_scaled(&c, 1.0);
        let lhs = a.matmul(&bc);
        let mut rhs = a.matmul(&b);
        rhs.add_scaled(&a.matmul(&c), 1.0);
        assert_close(&lhs, &rhs, 1e-3);
    }

    #[test]
    fn gather_rows_picks_rows(
        a in matrix_strategy(9, 3),
        idx in proptest::collection::vec(0usize..9, 0..12),
    ) {
        let g = a.gather_rows(&idx);
        prop_assert_eq!(g.rows(), idx.len());
        for (i, &r) in idx.iter().enumerate() {
            prop_assert_eq!(g.row(i), a.row(r));
        }
    }
}

#[test]
fn auc_is_threshold_free() {
    // Monotone transformation of scores leaves AUC unchanged.
    let probs = [0.1f32, 0.4, 0.35, 0.8, 0.65, 0.9];
    let labels = [0.0f32, 0.0, 1.0, 1.0, 0.0, 1.0];
    let a1 = neural::auc(&probs, &labels);
    let squashed: Vec<f32> = probs.iter().map(|p| p * p).collect();
    let a2 = neural::auc(&squashed, &labels);
    assert!((a1 - a2).abs() < 1e-12);
}
