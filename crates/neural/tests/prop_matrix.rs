//! Property tests for the matrix substrate: the fast GEMM paths agree with
//! a naive reference implementation, and linear-algebra laws hold within
//! floating-point tolerance.

use neural::matrix::Matrix;
use proptest::prelude::*;

fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-4.0f32..4.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for r in 0..a.rows() {
        for k in 0..a.cols() {
            for c in 0..b.cols() {
                out.set(r, c, out.get(r, c) + a.get(r, k) * b.get(k, c));
            }
        }
    }
    out
}

fn assert_close(a: &Matrix, b: &Matrix, tol: f32) {
    assert_eq!(a.rows(), b.rows());
    assert_eq!(a.cols(), b.cols());
    for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
        assert!((x - y).abs() <= tol, "{x} vs {y}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn matmul_matches_naive(
        a in matrix_strategy(7, 5),
        b in matrix_strategy(5, 9),
    ) {
        assert_close(&a.matmul(&b), &naive_matmul(&a, &b), 1e-4);
    }

    #[test]
    fn t_matmul_matches_transpose(
        a in matrix_strategy(6, 4),
        b in matrix_strategy(6, 3),
    ) {
        let at = Matrix::from_fn(4, 6, |r, c| a.get(c, r));
        assert_close(&a.t_matmul(&b), &naive_matmul(&at, &b), 1e-4);
    }

    #[test]
    fn matmul_t_matches_transpose(
        a in matrix_strategy(5, 6),
        b in matrix_strategy(8, 6),
    ) {
        let bt = Matrix::from_fn(6, 8, |r, c| b.get(c, r));
        assert_close(&a.matmul_t(&b), &naive_matmul(&a, &bt), 1e-4);
    }

    #[test]
    fn matmul_distributes_over_add(
        a in matrix_strategy(4, 4),
        b in matrix_strategy(4, 4),
        c in matrix_strategy(4, 4),
    ) {
        // A(B + C) == AB + AC
        let mut bc = b.clone();
        bc.add_scaled(&c, 1.0);
        let lhs = a.matmul(&bc);
        let mut rhs = a.matmul(&b);
        rhs.add_scaled(&a.matmul(&c), 1.0);
        assert_close(&lhs, &rhs, 1e-3);
    }

    #[test]
    fn gather_rows_picks_rows(
        a in matrix_strategy(9, 3),
        idx in proptest::collection::vec(0usize..9, 0..12),
    ) {
        let g = a.gather_rows(&idx);
        prop_assert_eq!(g.rows(), idx.len());
        for (i, &r) in idx.iter().enumerate() {
            prop_assert_eq!(g.row(i), a.row(r));
        }
    }

    #[test]
    fn parallel_widths_are_bitwise_identical(
        a in matrix_strategy(13, 6),
        b in matrix_strategy(6, 5),
        width in 2usize..7,
    ) {
        // Any dispatch width — including widths that don't divide the row
        // count — reproduces the serial result bit for bit, for all three
        // product kernels.
        prop_assert_eq!(a.matmul_threads(&b, width), a.matmul_threads(&b, 1));
        let bt = Matrix::from_fn(5, 6, |r, c| b.get(c, r));
        prop_assert_eq!(a.matmul_t_threads(&bt, width), a.matmul_t_threads(&bt, 1));
        let c = Matrix::from_fn(13, 4, |r, c| a.get(r, c % 6) - 1.0);
        prop_assert_eq!(a.t_matmul_threads(&c, width), a.t_matmul_threads(&c, 1));
    }

    #[test]
    fn fused_forward_matches_unfused(
        x in matrix_strategy(11, 7),
        w in matrix_strategy(7, 6),
        bias in proptest::collection::vec(-2.0f32..2.0, 6),
        relu in any::<bool>(),
    ) {
        // The fused GEMM+bias+ReLU pass matches the unfused matmul →
        // bias sweep → activation sweep composition within 1e-6 (it is
        // bitwise equal by construction; the tolerance is the
        // acceptance-criteria bound).
        let mut expect = x.matmul(&w);
        for r in 0..expect.rows() {
            for (v, b) in expect.row_mut(r).iter_mut().zip(&bias) {
                *v += b;
            }
        }
        if relu {
            for v in expect.as_mut_slice() {
                *v = v.max(0.0);
            }
        }
        let fused = x.dense_forward(&w, &bias, relu);
        prop_assert_eq!(fused.rows(), expect.rows());
        for (f, e) in fused.as_slice().iter().zip(expect.as_slice()) {
            prop_assert!((f - e).abs() <= 1e-6, "{} vs {}", f, e);
        }
    }

    #[test]
    fn degenerate_shapes_match_naive(
        rows in 0usize..3,
        cols in 1usize..3,
        n in 0usize..3,
        seed in 0u64..1000,
    ) {
        // 0 rows, 1 row, and outputs narrower than the SIMD tile all go
        // through the same kernels.
        let a = Matrix::from_fn(rows, cols, |r, c| ((r as u64 * 31 + c as u64 * 7 + seed) % 11) as f32 - 5.0);
        let b = Matrix::from_fn(cols, n, |r, c| ((r as u64 * 13 + c as u64 * 3 + seed) % 9) as f32 - 4.0);
        assert_close(&a.matmul(&b), &naive_matmul(&a, &b), 1e-4);
        let bt = Matrix::from_fn(n, cols, |r, c| b.get(c, r));
        assert_close(&a.matmul_t(&bt), &naive_matmul(&a, &b), 1e-4);
        let at = Matrix::from_fn(cols, rows, |r, c| a.get(c, r));
        let c2 = Matrix::from_fn(rows, n, |r, c| ((r + c) % 5) as f32 - 2.0);
        assert_close(&a.t_matmul(&c2), &naive_matmul(&at, &c2), 1e-4);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn fused_mlp_predict_matches_manual_layers(
        x in matrix_strategy(9, 4),
        seed in 0u64..500,
    ) {
        // The network's fused forward equals an unfused composition built
        // from the same layer parameters, end to end through the sigmoid.
        let net = neural::net::Mlp::new(&[4, 6, 5, 1], seed);
        let mut a = x.clone();
        for li in 0..net.num_layers() {
            let (w, bias) = net.layer_params(li);
            let mut z = a.matmul(w);
            for r in 0..z.rows() {
                for (v, b) in z.row_mut(r).iter_mut().zip(bias) {
                    *v += b;
                }
            }
            if li + 1 < net.num_layers() {
                for v in z.as_mut_slice() {
                    *v = v.max(0.0);
                }
            }
            a = z;
        }
        let expect: Vec<f32> = a.as_slice().iter().map(|&z| 1.0 / (1.0 + (-z).exp())).collect();
        let got = net.predict(&x);
        prop_assert_eq!(got.len(), expect.len());
        for (g, e) in got.iter().zip(&expect) {
            prop_assert!((g - e).abs() <= 1e-6, "{} vs {}", g, e);
        }
    }
}

#[test]
fn auc_is_threshold_free() {
    // Monotone transformation of scores leaves AUC unchanged.
    let probs = [0.1f32, 0.4, 0.35, 0.8, 0.65, 0.9];
    let labels = [0.0f32, 0.0, 1.0, 1.0, 0.0, 1.0];
    let a1 = neural::auc(&probs, &labels);
    let squashed: Vec<f32> = probs.iter().map(|p| p * p).collect();
    let a2 = neural::auc(&squashed, &labels);
    assert!((a1 - a2).abs() < 1e-12);
}
