//! Structure2vec-style graph embedding network — the static-only baseline
//! the paper compares against (Xu et al. \[41\], "Gemini"): each CFG node
//! carries a small feature vector, T rounds of neighborhood aggregation
//! produce node embeddings, and the summed node embedding is the function
//! embedding. A siamese cosine objective trains the shared parameters so
//! that same-source functions embed nearby.
//!
//! Forward recurrence (node features `X: n×f`, symmetric adjacency `A`):
//!
//! ```text
//! mu_0 = 0
//! mu_t = tanh(X·W1 + A·mu_{t-1}·W2)      t = 1..T
//! g    = sum_rows(mu_T)                  (the function embedding)
//! ```
//!
//! Training minimizes `(cos(g1, g2) - y)^2` with `y ∈ {+1, -1}`.
//! Backpropagation through the T unrolled iterations is implemented
//! manually and verified against numeric gradients in the tests.

use crate::matrix::Matrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A graph ready for embedding: symmetric neighbor lists plus an `n×f`
/// node-feature matrix.
#[derive(Debug, Clone)]
pub struct GraphSample {
    /// Symmetric adjacency: `adj[v]` lists the neighbors of `v`.
    pub adj: Vec<Vec<usize>>,
    /// Node features, one row per node.
    pub feats: Matrix,
}

impl GraphSample {
    /// Validate shape invariants (debug helper).
    pub fn check(&self) -> bool {
        self.adj.len() == self.feats.rows()
            && self.adj.iter().all(|ns| ns.iter().all(|&u| u < self.adj.len()))
    }
}

/// Sparse `A · M` for neighbor-list adjacency.
fn agg(adj: &[Vec<usize>], m: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(m.rows(), m.cols());
    for (v, ns) in adj.iter().enumerate() {
        for &u in ns {
            let src = m.row(u);
            let dst = out.row_mut(v);
            for (d, s) in dst.iter_mut().zip(src) {
                *d += s;
            }
        }
    }
    out
}

/// The embedding network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GraphEmbedder {
    w1: Matrix, // f×d
    w2: Matrix, // d×d
    f: usize,
    d: usize,
    t: usize,
}

/// Cosine similarity of two equal-length vectors (0 when either is zero).
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

struct ForwardCache {
    mus: Vec<Matrix>,   // mu_0..mu_T
    aggs: Vec<Matrix>,  // A·mu_{t-1} for t = 1..T
    g: Vec<f32>,        // summed embedding
}

impl GraphEmbedder {
    /// Create an embedder for `f`-dimensional node features, embedding
    /// dimension `d`, and `t` aggregation rounds.
    pub fn new(f: usize, d: usize, t: usize, seed: u64) -> GraphEmbedder {
        let mut rng = SmallRng::seed_from_u64(seed);
        let lim1 = (6.0 / (f + d) as f32).sqrt();
        let lim2 = (6.0 / (2 * d) as f32).sqrt();
        GraphEmbedder {
            w1: Matrix::from_fn(f, d, |_, _| rng.gen_range(-lim1..lim1)),
            w2: Matrix::from_fn(d, d, |_, _| rng.gen_range(-lim2..lim2)),
            f,
            d,
            t,
        }
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.d
    }

    fn forward(&self, g: &GraphSample) -> ForwardCache {
        debug_assert!(g.check(), "malformed graph sample");
        let n = g.feats.rows();
        let xw1 = g.feats.matmul(&self.w1);
        let mut mus = vec![Matrix::zeros(n, self.d)];
        let mut aggs = Vec::with_capacity(self.t);
        for _ in 0..self.t {
            let am = agg(&g.adj, mus.last().unwrap());
            let mut s = am.matmul(&self.w2);
            s.add_scaled(&xw1, 1.0);
            for v in s.as_mut_slice() {
                *v = v.tanh();
            }
            aggs.push(am);
            mus.push(s);
        }
        let mut gv = vec![0.0f32; self.d];
        let last = mus.last().unwrap();
        for r in 0..n {
            for (o, v) in gv.iter_mut().zip(last.row(r)) {
                *o += v;
            }
        }
        ForwardCache { mus, aggs, g: gv }
    }

    /// Embed a graph into a `d`-vector.
    pub fn embed(&self, g: &GraphSample) -> Vec<f32> {
        self.forward(g).g
    }

    /// Similarity of two graphs in `[-1, 1]`.
    pub fn similarity(&self, a: &GraphSample, b: &GraphSample) -> f32 {
        cosine(&self.embed(a), &self.embed(b))
    }

    /// Backprop through one graph: given `dG` (gradient w.r.t. the summed
    /// embedding), accumulate `dW1`/`dW2`.
    fn backward(
        &self,
        sample: &GraphSample,
        cache: &ForwardCache,
        dg: &[f32],
        dw1: &mut Matrix,
        dw2: &mut Matrix,
    ) {
        let n = sample.feats.rows();
        // dmu_T: every row receives dg.
        let mut dmu = Matrix::from_fn(n, self.d, |_, c| dg[c]);
        for step in (0..self.t).rev() {
            let mu_t = &cache.mus[step + 1];
            // dS = dmu ⊙ (1 - mu^2)
            let mut ds = dmu.clone();
            for (v, m) in ds.as_mut_slice().iter_mut().zip(mu_t.as_slice()) {
                *v *= 1.0 - m * m;
            }
            // dW1 += X^T dS ; dW2 += (A mu_{t-1})^T dS
            dw1.add_scaled(&sample.feats.t_matmul(&ds), 1.0);
            dw2.add_scaled(&cache.aggs[step].t_matmul(&ds), 1.0);
            // dmu_{t-1} = A^T (dS W2^T); A symmetric -> A^T = A.
            let dsw = ds.matmul_t(&self.w2);
            dmu = agg(&sample.adj, &dsw);
        }
    }

    /// One siamese training step on a labeled pair (`label` +1 similar,
    /// -1 dissimilar). Plain SGD; returns the squared cosine loss.
    pub fn train_pair(
        &mut self,
        a: &GraphSample,
        b: &GraphSample,
        label: f32,
        lr: f32,
    ) -> f32 {
        let ca = self.forward(a);
        let cb = self.forward(b);
        let (ga, gb) = (&ca.g, &cb.g);
        let na: f32 = ga.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
        let nb: f32 = gb.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
        let dot: f32 = ga.iter().zip(gb).map(|(x, y)| x * y).sum();
        let sim = dot / (na * nb);
        let loss = (sim - label) * (sim - label);
        let dsim = 2.0 * (sim - label);
        // d cos / d ga = gb/(na*nb) - sim * ga / na^2 (and symmetric).
        let dga: Vec<f32> = ga
            .iter()
            .zip(gb)
            .map(|(x, y)| dsim * (y / (na * nb) - sim * x / (na * na)))
            .collect();
        let dgb: Vec<f32> = ga
            .iter()
            .zip(gb)
            .map(|(x, y)| dsim * (x / (na * nb) - sim * y / (nb * nb)))
            .collect();
        let mut dw1 = Matrix::zeros(self.f, self.d);
        let mut dw2 = Matrix::zeros(self.d, self.d);
        self.backward(a, &ca, &dga, &mut dw1, &mut dw2);
        self.backward(b, &cb, &dgb, &mut dw1, &mut dw2);
        self.w1.add_scaled(&dw1, -lr);
        self.w2.add_scaled(&dw2, -lr);
        loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_graph(seed: u64, n: usize, f: usize) -> GraphSample {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut adj = vec![Vec::new(); n];
        for v in 1..n {
            let u = rng.gen_range(0..v);
            adj[v].push(u);
            adj[u].push(v);
        }
        let feats = Matrix::from_fn(n, f, |_, _| rng.gen_range(-1.0..1.0));
        GraphSample { adj, feats }
    }

    #[test]
    fn embedding_has_right_dim_and_is_deterministic() {
        let e = GraphEmbedder::new(4, 16, 3, 9);
        let g = tiny_graph(1, 6, 4);
        let a = e.embed(&g);
        let b = e.embed(&g);
        assert_eq!(a.len(), 16);
        assert_eq!(a, b);
    }

    #[test]
    fn identical_graphs_have_similarity_one() {
        let e = GraphEmbedder::new(4, 8, 2, 3);
        let g = tiny_graph(2, 5, 4);
        let s = e.similarity(&g, &g);
        assert!((s - 1.0).abs() < 1e-5, "self-similarity {s}");
    }

    #[test]
    fn training_pulls_similar_pairs_together() {
        let mut e = GraphEmbedder::new(4, 8, 2, 5);
        let g1 = tiny_graph(10, 6, 4);
        let g2 = tiny_graph(11, 6, 4); // same size, different features
        let g3 = tiny_graph(12, 9, 4);
        let before_12 = e.similarity(&g1, &g2);
        for _ in 0..200 {
            e.train_pair(&g1, &g2, 1.0, 1e-2);
            e.train_pair(&g1, &g3, -1.0, 1e-2);
        }
        let after_12 = e.similarity(&g1, &g2);
        let after_13 = e.similarity(&g1, &g3);
        assert!(after_12 > before_12, "similar pair should move up: {before_12} -> {after_12}");
        assert!(after_12 > after_13, "similar pair should rank above dissimilar");
    }

    #[test]
    fn numeric_gradient_check_w1() {
        let mut e = GraphEmbedder::new(3, 4, 2, 7);
        let a = tiny_graph(20, 4, 3);
        let b = tiny_graph(21, 5, 3);
        let label = 1.0f32;
        let loss_fn = |e: &GraphEmbedder| {
            let sim = e.similarity(&a, &b);
            (sim - label) * (sim - label)
        };
        // Analytic gradient via a zero-lr trick: replicate train_pair's
        // gradient computation by finite differences on each W1 entry.
        let eps = 1e-3f32;
        let base_w1 = e.w1.clone();
        let mut numeric = Matrix::zeros(3, 4);
        for r in 0..3 {
            for c in 0..4 {
                let mut ep = e.clone();
                ep.w1 = base_w1.clone();
                ep.w1.set(r, c, base_w1.get(r, c) + eps);
                let lp = loss_fn(&ep);
                ep.w1.set(r, c, base_w1.get(r, c) - eps);
                let lm = loss_fn(&ep);
                numeric.set(r, c, (lp - lm) / (2.0 * eps));
            }
        }
        // Take one SGD step and verify the loss moved the way the numeric
        // gradient predicts (dot(grad_step, numeric) > 0 ⇒ loss decreases).
        let before = loss_fn(&e);
        e.train_pair(&a, &b, label, 1e-2);
        let after = loss_fn(&e);
        let grad_norm: f32 = numeric.as_slice().iter().map(|v| v * v).sum();
        if grad_norm > 1e-10 {
            assert!(after <= before + 1e-6, "step along -grad must not increase loss");
        }
    }

    #[test]
    fn lone_node_graph_embeds() {
        let e = GraphEmbedder::new(4, 8, 2, 1);
        let g = GraphSample { adj: vec![vec![]], feats: Matrix::from_fn(1, 4, |_, c| c as f32) };
        let v = e.embed(&g);
        assert_eq!(v.len(), 8);
        assert!(v.iter().any(|x| *x != 0.0));
    }
}
