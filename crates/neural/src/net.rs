//! The feed-forward pair classifier: a sequential stack of dense layers
//! with ReLU hidden activations and a sigmoid output — the paper's 6-layer
//! Keras model ("we adapt a sequential model that is composed of a linear
//! stack of layers", input shape 96).

use crate::matrix::Matrix;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One dense layer with its Adam optimizer state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dense {
    w: Matrix,
    b: Vec<f32>,
    // Adam moments.
    mw: Matrix,
    vw: Matrix,
    mb: Vec<f32>,
    vb: Vec<f32>,
}

impl Dense {
    fn new(inp: usize, out: usize, rng: &mut SmallRng) -> Dense {
        // Xavier/Glorot uniform initialization.
        let limit = (6.0 / (inp + out) as f32).sqrt();
        let w = Matrix::from_fn(inp, out, |_, _| rng.gen_range(-limit..limit));
        Dense {
            w,
            b: vec![0.0; out],
            mw: Matrix::zeros(inp, out),
            vw: Matrix::zeros(inp, out),
            mb: vec![0.0; out],
            vb: vec![0.0; out],
        }
    }

    /// Fused forward: GEMM + bias (+ ReLU for hidden layers) in one
    /// kernel pass instead of a matmul followed by whole-output sweeps.
    fn forward(&self, x: &Matrix, relu: bool) -> Matrix {
        x.dense_forward(&self.w, &self.b, relu)
    }
}

/// Parameter count below which Adam updates stay serial: the paper's
/// 12.9k-parameter model fits in cache and the per-layer dispatch would
/// cost more than the elementwise update itself.
const PAR_ADAM_MIN_PARAMS: usize = 1 << 16;

/// One Adam update, precomputed per minibatch and applied per layer.
/// `Copy` so the parallel path can move it into per-layer tasks; the
/// element expressions are shared between the serial and parallel paths,
/// so results are bitwise identical either way.
#[derive(Clone, Copy)]
struct AdamStep {
    lr: f32,
    b1: f32,
    b2: f32,
    eps: f32,
    bias1: f32,
    bias2: f32,
}

impl AdamStep {
    fn apply(self, layer: &mut Dense, dw: &Matrix, db: &[f32]) {
        let AdamStep { lr, b1, b2, eps, bias1, bias2 } = self;
        for i in 0..dw.as_slice().len() {
            let g = dw.as_slice()[i];
            let m = &mut layer.mw.as_mut_slice()[i];
            *m = b1 * *m + (1.0 - b1) * g;
            let v = &mut layer.vw.as_mut_slice()[i];
            *v = b2 * *v + (1.0 - b2) * g * g;
            let mhat = *m / bias1;
            let vhat = *v / bias2;
            layer.w.as_mut_slice()[i] -= lr * mhat / (vhat.sqrt() + eps);
        }
        for (i, &g) in db.iter().enumerate() {
            layer.mb[i] = b1 * layer.mb[i] + (1.0 - b1) * g;
            layer.vb[i] = b2 * layer.vb[i] + (1.0 - b2) * g * g;
            let mhat = layer.mb[i] / bias1;
            let vhat = layer.vb[i] / bias2;
            layer.b[i] -= lr * mhat / (vhat.sqrt() + eps);
        }
    }
}

/// Adam hyperparameters and step counter.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    t: u64,
}

impl Default for Adam {
    fn default() -> Adam {
        Adam { lr: 1e-3, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0 }
    }
}

/// The multi-layer perceptron.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Dense>,
    dims: Vec<usize>,
    adam: Adam,
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

impl Mlp {
    /// Build a network with the given layer widths, e.g.
    /// `[96, 128, 64, 32, 16, 8, 1]` for the paper's 6-layer model.
    /// The final width must be 1 (binary similarity output).
    ///
    /// # Panics
    /// Panics if fewer than two dims are given or the output width is not 1.
    pub fn new(dims: &[usize], seed: u64) -> Mlp {
        assert!(dims.len() >= 2, "need at least input and output dims");
        assert_eq!(*dims.last().unwrap(), 1, "binary classifier output must be width 1");
        let mut rng = SmallRng::seed_from_u64(seed);
        let layers = dims.windows(2).map(|w| Dense::new(w[0], w[1], &mut rng)).collect();
        Mlp { layers, dims: dims.to_vec(), adam: Adam::default() }
    }

    /// Number of dense layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Input feature width.
    pub fn input_dim(&self) -> usize {
        self.dims[0]
    }

    /// Total trainable parameter count (weights + biases).
    pub fn parameter_count(&self) -> usize {
        self.dims.windows(2).map(|w| w[0] * w[1] + w[1]).sum()
    }

    /// Borrow layer `li`'s weight matrix and bias, for benchmarks and
    /// inspection tooling that reproduce the forward pass externally.
    pub fn layer_params(&self, li: usize) -> (&Matrix, &[f32]) {
        (&self.layers[li].w, &self.layers[li].b)
    }

    /// Forward pass: returns the sigmoid probability per input row.
    pub fn predict(&self, x: &Matrix) -> Vec<f32> {
        let nl = self.layers.len();
        self.predict_from(1, self.layers[0].forward(x, nl > 1))
    }

    /// Resume the forward pass with `a` as the activations entering layer
    /// `li` (so `predict_from(0, x)` is a full pass and `li == num_layers`
    /// just applies the output sigmoid). Lets callers that compute the
    /// first layer by other means — e.g. the detector's factorized
    /// pair-product classification — reuse the remaining layers.
    ///
    /// # Panics
    /// Panics if `li > num_layers()`.
    pub fn predict_from(&self, li: usize, mut a: Matrix) -> Vec<f32> {
        let nl = self.layers.len();
        assert!(li <= nl, "layer index {li} out of range ({nl} layers)");
        for (lj, layer) in self.layers.iter().enumerate().skip(li) {
            a = layer.forward(&a, lj + 1 < nl);
        }
        a.as_slice().iter().map(|&z| sigmoid(z)).collect()
    }

    /// One minibatch of training with binary cross-entropy loss. Returns
    /// the mean loss over the batch.
    ///
    /// # Panics
    /// Panics if `y.len() != x.rows()`.
    pub fn train_batch(&mut self, x: &Matrix, y: &[f32], lr: f32) -> f32 {
        assert_eq!(y.len(), x.rows(), "label count mismatch");
        let batch = x.rows();
        let nl = self.layers.len();
        // Forward, caching activations only. The ReLU backward gate reads
        // post-activations (for a = max(z, 0), a <= 0 exactly when
        // z <= 0), so the per-layer pre-activation clones the seed kept
        // were dead weight; the final entry holds the raw logits.
        let mut acts: Vec<Matrix> = Vec::with_capacity(nl + 1);
        acts.push(x.clone());
        for (li, layer) in self.layers.iter().enumerate() {
            let a = layer.forward(acts.last().unwrap(), li + 1 < nl);
            acts.push(a);
        }
        // Output probabilities and loss.
        let logits = acts.last().unwrap();
        let mut loss = 0.0f32;
        let mut dz = Matrix::zeros(batch, 1);
        for (r, &t) in y.iter().enumerate().take(batch) {
            let p = sigmoid(logits.get(r, 0));
            let pc = p.clamp(1e-7, 1.0 - 1e-7);
            loss += -(t * pc.ln() + (1.0 - t) * (1.0 - pc).ln());
            dz.set(r, 0, (p - t) / batch as f32);
        }
        loss /= batch as f32;

        // Backward: gradients first (against pre-update weights, exactly
        // as the seed's propagate-before-update ordering), then one Adam
        // step over all layers — elementwise-independent, so it can fan
        // out per layer for large models without changing any result.
        let mut grads: Vec<(Matrix, Vec<f32>)> = Vec::with_capacity(nl);
        let mut delta = dz;
        for li in (0..nl).rev() {
            let a_prev = &acts[li];
            let dw = a_prev.t_matmul(&delta);
            let mut db = vec![0.0f32; delta.cols()];
            for r in 0..delta.rows() {
                for (c, d) in db.iter_mut().enumerate() {
                    *d += delta.get(r, c);
                }
            }
            if li > 0 {
                let mut d = delta.matmul_t(&self.layers[li].w);
                // ReLU gate on the previous layer's activation.
                for (v, a) in d.as_mut_slice().iter_mut().zip(acts[li].as_slice()) {
                    if *a <= 0.0 {
                        *v = 0.0;
                    }
                }
                delta = d;
            }
            grads.push((dw, db));
        }
        grads.reverse();

        self.adam.t += 1;
        let t = self.adam.t;
        let (b1, b2) = (self.adam.beta1, self.adam.beta2);
        let step = AdamStep {
            lr,
            b1,
            b2,
            eps: self.adam.eps,
            bias1: 1.0 - b1.powi(t as i32),
            bias2: 1.0 - b2.powi(t as i32),
        };
        if crate::pool::current_width() > 1 && self.parameter_count() >= PAR_ADAM_MIN_PARAMS {
            let layers = std::mem::take(&mut self.layers);
            let tasks: Vec<Box<dyn FnOnce() -> Dense + Send>> = layers
                .into_iter()
                .zip(grads)
                .map(|(mut layer, (dw, db))| {
                    Box::new(move || {
                        step.apply(&mut layer, &dw, &db);
                        layer
                    }) as Box<dyn FnOnce() -> Dense + Send>
                })
                .collect();
            self.layers = crate::pool::global().run(tasks);
        } else {
            for (layer, (dw, db)) in self.layers.iter_mut().zip(&grads) {
                step.apply(layer, dw, db);
            }
        }
        loss
    }

    /// Mean binary cross-entropy loss of the model on `(x, y)` without
    /// updating weights.
    pub fn loss(&self, x: &Matrix, y: &[f32]) -> f32 {
        let p = self.predict(x);
        let mut loss = 0.0;
        for (pi, ti) in p.iter().zip(y) {
            let pc = pi.clamp(1e-7, 1.0 - 1e-7);
            loss += -(ti * pc.ln() + (1.0 - ti) * (1.0 - pc).ln());
        }
        loss / y.len().max(1) as f32
    }
}

/// Per-epoch training statistics (the series plotted in the paper's
/// Figure 8).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss.
    pub train_loss: f32,
    /// Training accuracy at threshold 0.5.
    pub train_acc: f32,
    /// Validation loss.
    pub val_loss: f32,
    /// Validation accuracy.
    pub val_acc: f32,
}

/// Full training history.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrainHistory {
    /// One entry per epoch.
    pub epochs: Vec<EpochStats>,
}

impl TrainHistory {
    /// Final validation accuracy, or 0 if empty.
    pub fn final_val_acc(&self) -> f32 {
        self.epochs.last().map(|e| e.val_acc).unwrap_or(0.0)
    }
}

/// Training configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Minibatch size.
    pub batch: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Shuffle seed.
    pub seed: u64,
    /// Multiply the learning rate by this factor after each epoch
    /// (1.0 = constant rate).
    #[serde(default = "default_lr_decay")]
    pub lr_decay: f32,
    /// Stop early when validation loss has not improved for this many
    /// consecutive epochs (`None` = always run all epochs).
    #[serde(default)]
    pub early_stop_patience: Option<usize>,
}

fn default_lr_decay() -> f32 {
    1.0
}

impl Default for TrainConfig {
    fn default() -> TrainConfig {
        TrainConfig {
            epochs: 12,
            batch: 256,
            lr: 1e-3,
            seed: 7,
            lr_decay: 1.0,
            early_stop_patience: None,
        }
    }
}

/// Train `net` on `(x, y)` with a held-out validation set, recording the
/// Figure-8 curves.
pub fn train(
    net: &mut Mlp,
    x: &Matrix,
    y: &[f32],
    val_x: &Matrix,
    val_y: &[f32],
    cfg: &TrainConfig,
) -> TrainHistory {
    let n = x.rows();
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut history = TrainHistory::default();
    let mut lr = cfg.lr;
    let mut best_val = f32::INFINITY;
    let mut stale = 0usize;
    // Minibatch scratch buffers, reused across every batch of every
    // epoch instead of allocating a fresh gather per batch.
    let mut bx = Matrix::zeros(0, x.cols());
    let mut by: Vec<f32> = Vec::with_capacity(cfg.batch);
    for epoch in 0..cfg.epochs {
        // Fisher-Yates shuffle.
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        let mut loss_sum = 0.0;
        let mut batches = 0;
        for chunk in order.chunks(cfg.batch) {
            x.gather_rows_into(chunk, &mut bx);
            by.clear();
            by.extend(chunk.iter().map(|&i| y[i]));
            loss_sum += net.train_batch(&bx, &by, lr);
            batches += 1;
        }
        let train_loss = loss_sum / batches.max(1) as f32;
        let train_acc = crate::metrics::accuracy(&net.predict(x), y, 0.5);
        let val_loss = net.loss(val_x, val_y);
        let val_acc = crate::metrics::accuracy(&net.predict(val_x), val_y, 0.5);
        history.epochs.push(EpochStats { epoch, train_loss, train_acc, val_loss, val_acc });
        lr *= cfg.lr_decay;
        if let Some(patience) = cfg.early_stop_patience {
            if val_loss < best_val - 1e-5 {
                best_val = val_loss;
                stale = 0;
            } else {
                stale += 1;
                if stale >= patience {
                    break;
                }
            }
        }
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xor_is_learnable() {
        let x = Matrix::from_vec(4, 2, vec![0., 0., 0., 1., 1., 0., 1., 1.]);
        let y = vec![0., 1., 1., 0.];
        let mut net = Mlp::new(&[2, 8, 8, 1], 3);
        for _ in 0..2000 {
            net.train_batch(&x, &y, 5e-2);
        }
        let p = net.predict(&x);
        assert!(p[0] < 0.2 && p[3] < 0.2, "negatives: {p:?}");
        assert!(p[1] > 0.8 && p[2] > 0.8, "positives: {p:?}");
    }

    #[test]
    fn gradient_check_numeric() {
        // Numeric gradient of the loss w.r.t. one weight matches backprop's
        // effect direction: after one SGD-ish Adam step the loss drops.
        let x = Matrix::from_vec(8, 3, (0..24).map(|i| ((i * 7 % 5) as f32 - 2.0) / 2.0).collect());
        let y: Vec<f32> = (0..8).map(|i| (i % 2) as f32).collect();
        let mut net = Mlp::new(&[3, 6, 1], 11);
        let before = net.loss(&x, &y);
        for _ in 0..50 {
            net.train_batch(&x, &y, 1e-2);
        }
        let after = net.loss(&x, &y);
        assert!(after < before, "loss should decrease: {before} -> {after}");
    }

    #[test]
    fn predict_outputs_probabilities() {
        let net = Mlp::new(&[4, 8, 1], 1);
        let x = Matrix::from_fn(10, 4, |r, c| (r + c) as f32 / 10.0);
        for p in net.predict(&x) {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn training_records_history() {
        let x = Matrix::from_fn(64, 4, |r, c| ((r * 13 + c * 5) % 7) as f32 - 3.0);
        let y: Vec<f32> = (0..64).map(|i| if i % 3 == 0 { 1.0 } else { 0.0 }).collect();
        let mut net = Mlp::new(&[4, 8, 1], 2);
        let cfg = TrainConfig { epochs: 3, batch: 16, lr: 1e-3, seed: 1, ..Default::default() };
        let hist = train(&mut net, &x, &y, &x, &y, &cfg);
        assert_eq!(hist.epochs.len(), 3);
        assert!(hist.final_val_acc() > 0.0);
    }

    #[test]
    fn early_stopping_halts_training() {
        let x = Matrix::from_fn(64, 4, |r, c| ((r * 13 + c * 5) % 7) as f32 - 3.0);
        let y: Vec<f32> = (0..64).map(|i| if i % 3 == 0 { 1.0 } else { 0.0 }).collect();
        let mut net = Mlp::new(&[4, 4, 1], 2);
        let cfg = TrainConfig {
            epochs: 200,
            batch: 64,
            lr: 0.0, // no learning: validation loss never improves
            seed: 1,
            lr_decay: 1.0,
            early_stop_patience: Some(3),
        };
        let hist = train(&mut net, &x, &y, &x, &y, &cfg);
        assert!(hist.epochs.len() <= 5, "stopped after patience ran out: {}", hist.epochs.len());
    }

    #[test]
    fn lr_decay_shrinks_updates() {
        // With aggressive decay, later epochs barely move the weights:
        // training with decay diverges less from the start than without.
        let x = Matrix::from_fn(32, 3, |r, c| ((r + c) % 5) as f32 - 2.0);
        let y: Vec<f32> = (0..32).map(|i| (i % 2) as f32).collect();
        let run = |decay: f32| {
            let mut net = Mlp::new(&[3, 4, 1], 9);
            let cfg = TrainConfig {
                epochs: 12,
                batch: 32,
                lr: 5e-2,
                seed: 1,
                lr_decay: decay,
                early_stop_patience: None,
            };
            let h = train(&mut net, &x, &y, &x, &y, &cfg);
            h.epochs.last().unwrap().train_loss
        };
        // Both must make progress, but they are genuinely different runs.
        let with_decay = run(0.3);
        let without = run(1.0);
        assert_ne!(with_decay, without);
    }

    #[test]
    fn parameter_count_matches_architecture() {
        let net = Mlp::new(&[96, 128, 64, 32, 16, 8, 1], 0);
        let expect = 96 * 128 + 128 + 128 * 64 + 64 + 64 * 32 + 32 + 32 * 16 + 16 + 16 * 8 + 8 + 8 + 1;
        assert_eq!(net.parameter_count(), expect);
    }

    #[test]
    fn model_serde_roundtrip() {
        let net = Mlp::new(&[4, 6, 1], 5);
        let json = serde_json::to_string(&net).unwrap();
        let back: Mlp = serde_json::from_str(&json).unwrap();
        let x = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32 / 12.0);
        assert_eq!(net.predict(&x), back.predict(&x));
    }

    #[test]
    #[should_panic]
    fn output_width_must_be_one() {
        let _ = Mlp::new(&[4, 8, 2], 0);
    }

    #[test]
    fn separable_data_reaches_high_accuracy() {
        // Two Gaussian-ish blobs.
        let n = 200;
        let x = Matrix::from_fn(n, 4, |r, c| {
            let base = if r % 2 == 0 { 1.0 } else { -1.0 };
            base + ((r * 31 + c * 17) % 10) as f32 / 20.0
        });
        let y: Vec<f32> = (0..n).map(|i| (i % 2 == 0) as u8 as f32).collect();
        let mut net = Mlp::new(&[4, 8, 8, 1], 4);
        let cfg = TrainConfig { epochs: 30, batch: 32, lr: 5e-3, seed: 2, ..Default::default() };
        let hist = train(&mut net, &x, &y, &x, &y, &cfg);
        assert!(hist.final_val_acc() > 0.95, "acc = {}", hist.final_val_acc());
    }
}
