//! # neural — pure-Rust neural network substrate
//!
//! The learning machinery the paper builds on Keras/TensorFlow,
//! reimplemented from scratch:
//!
//! * [`matrix`] — dense `f32` matrices with cache-blocked, register-tiled
//!   (optionally parallel) GEMM kernels and a fused dense-layer forward;
//! * [`pool`] — the shared persistent worker pool behind every parallel
//!   kernel, plus unified thread-count resolution (`PATCHECKO_THREADS`);
//! * [`net`] — the sequential pair classifier (dense layers, ReLU, sigmoid,
//!   binary cross-entropy, Adam) plus the training loop that records the
//!   Figure-8 accuracy/loss curves;
//! * [`metrics`] — accuracy, AUC (Mann–Whitney), confusion counts;
//! * [`graph`] — a structure2vec graph-embedding network with siamese
//!   cosine training, serving as the Gemini-style static baseline.
//!
//! ## Example
//!
//! ```
//! use neural::matrix::Matrix;
//! use neural::net::{train, Mlp, TrainConfig};
//!
//! // Learn y = x0 > x1 on a toy dataset.
//! let x = Matrix::from_fn(128, 2, |r, c| ((r * 37 + c * 11) % 19) as f32 / 19.0);
//! let y: Vec<f32> = (0..128).map(|r| (x.get(r, 0) > x.get(r, 1)) as u8 as f32).collect();
//! let mut net = Mlp::new(&[2, 16, 1], 1);
//! let cfg = TrainConfig { epochs: 40, batch: 32, lr: 5e-3, seed: 1, ..Default::default() };
//! let hist = train(&mut net, &x, &y, &x, &y, &cfg);
//! assert!(hist.final_val_acc() > 0.9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod matrix;
pub mod metrics;
pub mod net;
pub mod pool;

pub use graph::{cosine, GraphEmbedder, GraphSample};
pub use matrix::Matrix;
pub use metrics::{accuracy, auc, Confusion};
pub use net::{train, Adam, EpochStats, Mlp, TrainConfig, TrainHistory};
