//! Shared persistent worker pool for the compute kernels.
//!
//! The seed spawned fresh `crossbeam::thread::scope` threads on every
//! large `matmul` call; at service scale (scanhub batches thousands of
//! forward passes) the spawn/join cost is pure overhead. This module
//! keeps one process-wide pool of detached workers that is initialized
//! on first use and then reused by every parallel kernel, feature
//! extraction sweep, and scheduler batch.
//!
//! Thread-count resolution is unified here (the satellite task): an
//! explicit override (`PipelineConfig::threads` upstream) wins, then the
//! `PATCHECKO_THREADS` environment variable, then the machine's
//! available parallelism — so `--threads 1` forces serial kernels end to
//! end through [`resolve_threads`].
//!
//! Workers are plain detached `std::thread`s feeding from one unbounded
//! MPMC channel; they are spawned lazily up to the current limit and
//! never exit (the pool is `'static`). Tasks must be `'static`, so
//! parallel callers clone shared inputs behind `Arc` — for a GEMM above
//! the parallel threshold the O(m·k + k·n) copy is noise next to the
//! O(m·k·n) multiply, and it keeps the whole workspace free of `unsafe`
//! lifetime erasure.
//!
//! Nested dispatch runs inline: a task that itself calls [`WorkerPool::run`]
//! (e.g. a scheduler job whose scan reaches a parallel matmul) executes
//! its subtasks on its own worker thread. That both prevents the classic
//! fixed-pool deadlock (workers blocking on results that sit behind them
//! in the queue) and avoids oversubscription when outer stages are
//! already parallel.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Pool telemetry handles, resolved once from the global `scope` registry
/// (`pool.dispatches` = parallel fan-outs, `pool.inline_runs` = calls
/// that ran on the calling thread, `pool.tasks` = tasks executed either
/// way). Handle-based so the hot path pays one atomic add, not a map
/// lookup.
fn counters() -> &'static (scope::Counter, scope::Counter, scope::Counter) {
    static COUNTERS: OnceLock<(scope::Counter, scope::Counter, scope::Counter)> = OnceLock::new();
    COUNTERS.get_or_init(|| {
        let reg = scope::global();
        (reg.counter("pool.dispatches"), reg.counter("pool.inline_runs"), reg.counter("pool.tasks"))
    })
}

/// Environment variable overriding the default worker-thread count.
pub const THREADS_ENV: &str = "PATCHECKO_THREADS";

/// Resolve an effective worker count: an explicit override when given,
/// else the `PATCHECKO_THREADS` environment variable, else the machine's
/// available parallelism. Always at least 1.
pub fn resolve_threads(explicit: Option<usize>) -> usize {
    explicit
        .or_else(|| std::env::var(THREADS_ENV).ok().and_then(|v| v.trim().parse().ok()))
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4))
        .max(1)
}

type Job = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    static IN_POOL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Whether the current thread is a pool worker. Kernels use this to run
/// inline instead of re-dispatching from inside a task.
pub fn in_worker() -> bool {
    IN_POOL.with(|f| f.get())
}

/// A persistent pool of detached worker threads draining a shared job
/// queue. One process-wide instance lives behind [`global`]; tests and
/// benches may build private pools.
pub struct WorkerPool {
    tx: crossbeam::channel::Sender<Job>,
    rx: crossbeam::channel::Receiver<Job>,
    limit: AtomicUsize,
    spawned: Mutex<usize>,
}

impl WorkerPool {
    /// A pool that will dispatch across up to `limit` workers (threads
    /// spawn lazily on first parallel use).
    pub fn new(limit: usize) -> WorkerPool {
        let (tx, rx) = crossbeam::channel::unbounded();
        WorkerPool { tx, rx, limit: AtomicUsize::new(limit.max(1)), spawned: Mutex::new(0) }
    }

    /// Current dispatch-width limit.
    pub fn limit(&self) -> usize {
        self.limit.load(Ordering::Relaxed)
    }

    /// Set the dispatch-width limit (min 1). Already-spawned workers stay
    /// alive but idle when the limit shrinks; raising it spawns more on
    /// the next parallel dispatch.
    pub fn set_limit(&self, n: usize) {
        self.limit.store(n.max(1), Ordering::Relaxed);
    }

    fn ensure_spawned(&self, want: usize) {
        let mut spawned = self.spawned.lock().expect("pool spawn lock");
        while *spawned < want {
            let rx = self.rx.clone();
            std::thread::Builder::new()
                .name(format!("patchecko-pool-{spawned}"))
                .spawn(move || {
                    IN_POOL.with(|f| f.set(true));
                    while let Ok(job) = rx.recv() {
                        job();
                    }
                })
                .expect("spawn pool worker");
            *spawned += 1;
        }
    }

    /// Run every task and return the outputs in task order.
    ///
    /// Runs inline (no dispatch) when the limit is 1, there is at most
    /// one task, or the caller is itself a pool worker. Tasks run
    /// concurrently otherwise, pulled from the shared queue so long
    /// tasks don't starve short ones.
    ///
    /// # Panics
    /// If a task panics, the panic is re-raised here after every task of
    /// this call has finished (workers themselves survive).
    pub fn run<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let width = self.limit().min(tasks.len());
        let (dispatches, inline_runs, task_count) = counters();
        task_count.add(tasks.len() as u64);
        if width <= 1 || in_worker() {
            inline_runs.inc();
            return tasks.into_iter().map(|t| t()).collect();
        }
        dispatches.inc();
        self.ensure_spawned(width);
        let n = tasks.len();
        let (rtx, rrx) = crossbeam::channel::unbounded::<(usize, std::thread::Result<T>)>();
        for (i, task) in tasks.into_iter().enumerate() {
            let rtx = rtx.clone();
            let job: Job = Box::new(move || {
                let result = catch_unwind(AssertUnwindSafe(task));
                let _ = rtx.send((i, result));
            });
            assert!(self.tx.send(job).is_ok(), "pool queue accepts jobs");
        }
        drop(rtx);
        let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for _ in 0..n {
            let (i, result) = rrx.recv().expect("pool workers stay alive");
            match result {
                Ok(v) => slots[i] = Some(v),
                Err(p) => panic = Some(p),
            }
        }
        if let Some(p) = panic {
            resume_unwind(p);
        }
        slots.into_iter().map(|s| s.expect("every task reports")).collect()
    }
}

/// The process-wide shared pool. First access sizes the limit via
/// [`resolve_threads`]`(None)`; [`set_global_threads`] adjusts it later
/// (e.g. from `PipelineConfig::threads`).
pub fn global() -> &'static WorkerPool {
    static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
    GLOBAL.get_or_init(|| WorkerPool::new(resolve_threads(None)))
}

/// Set the global pool's dispatch width (min 1). Results are identical
/// at any width — kernels preserve per-element accumulation order — so
/// concurrent callers only affect each other's parallelism, never their
/// outputs.
pub fn set_global_threads(n: usize) {
    global().set_limit(n);
}

/// Effective parallel width for kernels launched from this thread: 1
/// inside a pool worker (nested work runs inline), the global limit
/// otherwise.
pub fn current_width() -> usize {
    if in_worker() {
        1
    } else {
        global().limit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn run_preserves_task_order() {
        let pool = WorkerPool::new(4);
        let tasks: Vec<_> = (0..32)
            .map(|i| {
                move || {
                    if i % 3 == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                    i * 10
                }
            })
            .collect();
        let out = pool.run(tasks);
        assert_eq!(out, (0..32).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn limit_one_runs_inline() {
        let pool = WorkerPool::new(1);
        let out = pool.run(vec![|| std::thread::current().id()]);
        assert_eq!(out[0], std::thread::current().id());
        assert_eq!(*pool.spawned.lock().unwrap(), 0, "no workers for inline runs");
    }

    #[test]
    fn task_panic_propagates_after_drain() {
        let pool = Arc::new(WorkerPool::new(2));
        let finished = Arc::new(AtomicBool::new(false));
        let fin = finished.clone();
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = vec![
            Box::new(|| panic!("task boom")),
            Box::new(move || {
                fin.store(true, Ordering::SeqCst);
                7
            }),
        ];
        let r = catch_unwind(AssertUnwindSafe(|| pool.run(tasks)));
        assert!(r.is_err(), "panic must propagate to the caller");
        assert!(finished.load(Ordering::SeqCst), "other tasks still complete");
        // The pool survives a panicking task.
        assert_eq!(pool.run(vec![|| 1, || 2]), vec![1, 2]);
    }

    #[test]
    fn nested_dispatch_runs_inline() {
        let pool = Arc::new(WorkerPool::new(2));
        let inner_pool = pool.clone();
        let tasks: Vec<Box<dyn FnOnce() -> bool + Send>> = vec![
            Box::new(move || {
                // From a worker thread, a nested run must not dead-lock
                // and must execute inline.
                assert!(in_worker());
                let ids = inner_pool.run(vec![|| std::thread::current().id()]);
                ids[0] == std::thread::current().id()
            }),
            Box::new(|| true),
        ];
        assert!(pool.run(tasks).into_iter().all(|b| b));
    }

    #[test]
    fn resolve_threads_precedence() {
        // Explicit override wins over everything.
        assert_eq!(resolve_threads(Some(3)), 3);
        assert_eq!(resolve_threads(Some(0)), 1, "clamped to at least 1");
        // Without an override the count is positive whatever the source.
        assert!(resolve_threads(None) >= 1);
    }

    #[test]
    fn set_limit_clamps_to_one() {
        let pool = WorkerPool::new(4);
        pool.set_limit(0);
        assert_eq!(pool.limit(), 1);
        pool.set_limit(8);
        assert_eq!(pool.limit(), 8);
    }
}
