//! Dense row-major `f32` matrices with cache-blocked, autovectorization-
//! friendly kernels.
//!
//! ## Kernel design
//!
//! `matmul` (and the fused [`Matrix::dense_forward`]) uses a register-
//! accumulator micro-kernel: each 2×[`NR`] output tile is held in
//! vector registers across the entire reduction, so the inner loop is
//! four `b` vector loads plus two broadcasts feeding 2·`NR`
//! multiply-adds — no output reload/store per reduction step. `t_matmul`
//! uses the same tile shape with its coefficient loads walking columns
//! of `a`, and `matmul_t` computes 2×4 output tiles as eight independent
//! ascending-index dot chains (instruction-level parallelism without
//! reassociation). In all three, SIMD lanes map to adjacent output
//! columns — LLVM autovectorizes without horizontal reductions.
//!
//! **Bit-stability invariant:** every output element accumulates its
//! reduction terms in strictly ascending index order — the unroll adds
//! the four products *sequentially* per lane — so results are bitwise
//! identical to the naive kernels, at any thread count, with or without
//! the fused epilogue. Training trajectories (and therefore every seeded
//! test fixture) are unchanged by this rewrite.
//!
//! Large products fan out across row chunks on the shared persistent
//! [`crate::pool`] (no per-call thread spawning). Parallel tasks are
//! `'static`, so the inputs are cloned behind `Arc` for the dispatch —
//! an O(m·k + k·n) copy under an O(m·k·n) multiply, only paid above
//! [`PAR_THRESHOLD_FLOPS`].
//!
//! [`Matrix::dense_forward`] is the fused dense-layer kernel: GEMM, bias
//! add, and optional ReLU in one pass, applying the epilogue per row
//! tile while the tile is cache-hot instead of re-sweeping the output.

use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A row-major matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

/// Multiply-accumulate flop count (`m·k·n`) above which a product fans
/// out across the worker pool; below it the dispatch + input-clone cost
/// outweighs the parallel win.
const PAR_THRESHOLD_FLOPS: usize = 1 << 22;

/// Minimum output rows before a product is worth splitting across tasks.
const PAR_MIN_ROWS: usize = 8;

/// Minimum output rows at which `matmul_t` materializes the transposed
/// right-hand side and switches to the register-tiled GEMM; below it the
/// O(q·k) transpose rivals the product itself.
const MT_TRANSPOSE_MIN_ROWS: usize = 16;

/// Output-column register tile width (four 8-lane `f32` vectors): the
/// 2×`NR` accumulator tile of [`gemm_kernel`] lives in registers for
/// the whole reduction, so the inner loop issues four `b` vector loads
/// plus two broadcasts per 2·`NR` multiply-adds instead of reloading
/// and restoring the output row at every reduction step.
const NR: usize = 32;

/// Store an accumulated row segment (`out += acc`), applying the optional
/// bias/ReLU epilogue in the same order as the unfused sweeps.
#[inline]
fn store_row(orow: &mut [f32], acc: &[f32], bias: Option<&[f32]>, relu: bool) {
    match bias {
        Some(bias) if relu => {
            for ((o, &s), &bv) in orow.iter_mut().zip(acc).zip(bias) {
                *o = (*o + s + bv).max(0.0);
            }
        }
        Some(bias) => {
            for ((o, &s), &bv) in orow.iter_mut().zip(acc).zip(bias) {
                *o = *o + s + bv;
            }
        }
        None => {
            for (o, &s) in orow.iter_mut().zip(acc) {
                *o += s;
            }
        }
    }
}

/// Register-tiled `out += a[r0..r1) · b` for row-major `a` (`k` columns)
/// and `b` (`k`×`n`), with an optional fused bias/ReLU epilogue applied
/// as each output tile is stored.
///
/// Each 2×`NR` output tile accumulates in registers across the entire
/// reduction (one add per element per `t`, strictly ascending — the
/// bit-stability invariant), then is written back exactly once. The
/// explicit per-row accumulator arrays and fixed-trip `NR` loops are
/// what lets LLVM keep the tile in vector registers.
#[allow(clippy::too_many_arguments)]
fn gemm_kernel(
    a: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
    r0: usize,
    r1: usize,
    out: &mut [f32],
    bias: Option<&[f32]>,
    relu: bool,
) {
    debug_assert_eq!(out.len(), (r1 - r0) * n);
    if n == 0 {
        return;
    }
    let jfull = n - n % NR;
    let mut r = r0;
    // Full two-row tiles.
    while r + 2 <= r1 {
        let ar0 = &a[r * k..(r + 1) * k];
        let ar1 = &a[(r + 1) * k..(r + 2) * k];
        let mut j = 0;
        while j < jfull {
            let mut acc0 = [0.0f32; NR];
            let mut acc1 = [0.0f32; NR];
            for t in 0..k {
                let bt: &[f32; NR] = b[t * n + j..t * n + j + NR].try_into().expect("NR-wide b tile");
                let a0 = ar0[t];
                let a1 = ar1[t];
                for jj in 0..NR {
                    acc0[jj] += a0 * bt[jj];
                    acc1[jj] += a1 * bt[jj];
                }
            }
            let o0 = (r - r0) * n + j;
            store_row(&mut out[o0..o0 + NR], &acc0, bias.map(|bv| &bv[j..j + NR]), relu);
            let o1 = (r + 1 - r0) * n + j;
            store_row(&mut out[o1..o1 + NR], &acc1, bias.map(|bv| &bv[j..j + NR]), relu);
            j += NR;
        }
        if j < n {
            // Column remainder (width < NR): same accumulation order over
            // a partially used tile.
            let w = n - j;
            let mut acc0 = [0.0f32; NR];
            let mut acc1 = [0.0f32; NR];
            for t in 0..k {
                let btail = &b[t * n + j..t * n + j + w];
                let a0 = ar0[t];
                let a1 = ar1[t];
                for (jj, &bv) in btail.iter().enumerate() {
                    acc0[jj] += a0 * bv;
                    acc1[jj] += a1 * bv;
                }
            }
            let o0 = (r - r0) * n + j;
            store_row(&mut out[o0..o0 + w], &acc0[..w], bias.map(|bv| &bv[j..]), relu);
            let o1 = (r + 1 - r0) * n + j;
            store_row(&mut out[o1..o1 + w], &acc1[..w], bias.map(|bv| &bv[j..]), relu);
        }
        r += 2;
    }
    // Row remainder: one row at a time.
    while r < r1 {
        let arow = &a[r * k..(r + 1) * k];
        let mut j = 0;
        while j < jfull {
            let mut acc = [0.0f32; NR];
            for t in 0..k {
                let bt: &[f32; NR] = b[t * n + j..t * n + j + NR].try_into().expect("NR-wide b tile");
                let av = arow[t];
                for (s, &bv) in acc.iter_mut().zip(bt) {
                    *s += av * bv;
                }
            }
            let o0 = (r - r0) * n + j;
            store_row(&mut out[o0..o0 + NR], &acc, bias.map(|bv| &bv[j..j + NR]), relu);
            j += NR;
        }
        if j < n {
            let w = n - j;
            let mut acc = [0.0f32; NR];
            for t in 0..k {
                let btail = &b[t * n + j..t * n + j + w];
                let av = arow[t];
                for (s, &bv) in acc[..w].iter_mut().zip(btail) {
                    *s += av * bv;
                }
            }
            let o0 = (r - r0) * n + j;
            store_row(&mut out[o0..o0 + w], &acc[..w], bias.map(|bv| &bv[j..]), relu);
        }
        r += 1;
    }
}

/// Register-tiled `out[i0..i1) += (aᵀ · b)` rows for row-major `a`
/// (`rows`×`p`, reduced over its rows) and `b` (`rows`×`n`). Same 2×[`NR`]
/// register-accumulator shape as [`gemm_kernel`] — the only difference is
/// that the two coefficient loads per step walk a column of `a` (stride
/// `p`). Reduction stays in ascending row order per element.
#[allow(clippy::too_many_arguments)]
fn tgemm_kernel(a: &[f32], b: &[f32], rows: usize, p: usize, n: usize, i0: usize, i1: usize, out: &mut [f32]) {
    debug_assert_eq!(out.len(), (i1 - i0) * n);
    if n == 0 {
        return;
    }
    let jfull = n - n % NR;
    let mut i = i0;
    while i + 2 <= i1 {
        let mut j = 0;
        while j < jfull {
            let mut acc0 = [0.0f32; NR];
            let mut acc1 = [0.0f32; NR];
            for r in 0..rows {
                let bt: &[f32; NR] = b[r * n + j..r * n + j + NR].try_into().expect("NR-wide b tile");
                let a0 = a[r * p + i];
                let a1 = a[r * p + i + 1];
                for jj in 0..NR {
                    acc0[jj] += a0 * bt[jj];
                    acc1[jj] += a1 * bt[jj];
                }
            }
            let o0 = (i - i0) * n + j;
            for (o, &s) in out[o0..o0 + NR].iter_mut().zip(&acc0) {
                *o += s;
            }
            let o1 = (i + 1 - i0) * n + j;
            for (o, &s) in out[o1..o1 + NR].iter_mut().zip(&acc1) {
                *o += s;
            }
            j += NR;
        }
        if j < n {
            let w = n - j;
            let mut acc0 = [0.0f32; NR];
            let mut acc1 = [0.0f32; NR];
            for r in 0..rows {
                let btail = &b[r * n + j..r * n + j + w];
                let a0 = a[r * p + i];
                let a1 = a[r * p + i + 1];
                for (jj, &bv) in btail.iter().enumerate() {
                    acc0[jj] += a0 * bv;
                    acc1[jj] += a1 * bv;
                }
            }
            let o0 = (i - i0) * n + j;
            for (o, &s) in out[o0..o0 + w].iter_mut().zip(&acc0[..w]) {
                *o += s;
            }
            let o1 = (i + 1 - i0) * n + j;
            for (o, &s) in out[o1..o1 + w].iter_mut().zip(&acc1[..w]) {
                *o += s;
            }
        }
        i += 2;
    }
    while i < i1 {
        let mut j = 0;
        while j < jfull {
            let mut acc = [0.0f32; NR];
            for r in 0..rows {
                let bt: &[f32; NR] = b[r * n + j..r * n + j + NR].try_into().expect("NR-wide b tile");
                let av = a[r * p + i];
                for jj in 0..NR {
                    acc[jj] += av * bt[jj];
                }
            }
            let o0 = (i - i0) * n + j;
            for (o, &s) in out[o0..o0 + NR].iter_mut().zip(&acc) {
                *o += s;
            }
            j += NR;
        }
        if j < n {
            let w = n - j;
            let mut acc = [0.0f32; NR];
            for r in 0..rows {
                let btail = &b[r * n + j..r * n + j + w];
                let av = a[r * p + i];
                for (jj, &bv) in btail.iter().enumerate() {
                    acc[jj] += av * bv;
                }
            }
            let o0 = (i - i0) * n + j;
            for (o, &s) in out[o0..o0 + w].iter_mut().zip(&acc[..w]) {
                *o += s;
            }
        }
        i += 1;
    }
}

/// `out[r0..r1) = a[r0..r1) · bᵀ` for row-major `a` (`k` columns) and `b`
/// (`q`×`k`): dot products against four `b` rows at a time, each as its
/// own ascending-`k` chain (instruction-level parallelism without
/// reassociation).
fn gemm_nt_kernel(a: &[f32], b: &[f32], k: usize, q: usize, r0: usize, r1: usize, out: &mut [f32]) {
    debug_assert_eq!(out.len(), (r1 - r0) * q);
    const JT: usize = 4;
    let mut r = r0;
    // 2×4 output tiles: eight independent dot chains give the FP units
    // enough in-flight accumulators to hide add latency, and each loaded
    // group of `b` rows is reused across both `a` rows. Every chain is a
    // strictly t-ascending sum, so per-element accumulation order is
    // unchanged.
    while r + 2 <= r1 {
        let ar0 = &a[r * k..(r + 1) * k];
        let ar1 = &a[(r + 1) * k..(r + 2) * k];
        let mut j = 0;
        while j + JT <= q {
            let b0 = &b[j * k..(j + 1) * k];
            let b1 = &b[(j + 1) * k..(j + 2) * k];
            let b2 = &b[(j + 2) * k..(j + 3) * k];
            let b3 = &b[(j + 3) * k..(j + 4) * k];
            let (mut s00, mut s01, mut s02, mut s03) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            let (mut s10, mut s11, mut s12, mut s13) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            for t in 0..k {
                let (v0, v1, v2, v3) = (b0[t], b1[t], b2[t], b3[t]);
                let (a0, a1) = (ar0[t], ar1[t]);
                s00 += a0 * v0;
                s01 += a0 * v1;
                s02 += a0 * v2;
                s03 += a0 * v3;
                s10 += a1 * v0;
                s11 += a1 * v1;
                s12 += a1 * v2;
                s13 += a1 * v3;
            }
            let base0 = (r - r0) * q + j;
            out[base0] = s00;
            out[base0 + 1] = s01;
            out[base0 + 2] = s02;
            out[base0 + 3] = s03;
            let base1 = (r + 1 - r0) * q + j;
            out[base1] = s10;
            out[base1 + 1] = s11;
            out[base1 + 2] = s12;
            out[base1 + 3] = s13;
            j += JT;
        }
        while j < q {
            let brow = &b[j * k..(j + 1) * k];
            let (mut s0, mut s1) = (0.0f32, 0.0f32);
            for t in 0..k {
                s0 += ar0[t] * brow[t];
                s1 += ar1[t] * brow[t];
            }
            out[(r - r0) * q + j] = s0;
            out[(r + 1 - r0) * q + j] = s1;
            j += 1;
        }
        r += 2;
    }
    // Remainder row: four independent chains.
    while r < r1 {
        let arow = &a[r * k..(r + 1) * k];
        let orow = &mut out[(r - r0) * q..(r - r0 + 1) * q];
        let mut j = 0;
        while j + JT <= q {
            let b0 = &b[j * k..(j + 1) * k];
            let b1 = &b[(j + 1) * k..(j + 2) * k];
            let b2 = &b[(j + 2) * k..(j + 3) * k];
            let b3 = &b[(j + 3) * k..(j + 4) * k];
            let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            for ((((&av, &v0), &v1), &v2), &v3) in arow.iter().zip(b0).zip(b1).zip(b2).zip(b3) {
                s0 += av * v0;
                s1 += av * v1;
                s2 += av * v2;
                s3 += av * v3;
            }
            orow[j] = s0;
            orow[j + 1] = s1;
            orow[j + 2] = s2;
            orow[j + 3] = s3;
            j += JT;
        }
        while j < q {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in arow.iter().zip(brow) {
                acc += av * bv;
            }
            orow[j] = acc;
            j += 1;
        }
        r += 1;
    }
}

/// Width the automatic entry points use for a product of `flops`
/// multiply-accumulates over `rows` output rows.
fn auto_width(flops: usize, rows: usize) -> usize {
    if flops < PAR_THRESHOLD_FLOPS || rows < PAR_MIN_ROWS {
        1
    } else {
        crate::pool::current_width()
    }
}

/// Fill `out` (`rows`×`n`, flattened) by running `make_task(r0, r1)` per
/// contiguous row chunk on the shared pool; `threads <= 1` must be
/// handled by the caller (serial fast path without `Arc` clones).
fn pooled_rows(
    threads: usize,
    rows: usize,
    n: usize,
    out: &mut [f32],
    make_task: impl Fn(usize, usize) -> Box<dyn FnOnce() -> Vec<f32> + Send + 'static>,
) {
    let width = threads.min(rows);
    let chunk = rows.div_ceil(width);
    let tasks: Vec<_> = (0..rows).step_by(chunk).map(|r0| make_task(r0, (r0 + chunk).min(rows))).collect();
    for (dst, part) in out.chunks_mut(chunk * n).zip(crate::pool::global().run(tasks)) {
        dst.copy_from_slice(&part);
    }
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Build from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Matrix {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Build from a flat row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Matrix { rows, cols, data }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable element access.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of a row.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of a row.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Flat data access.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable data access.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Gather the given rows into a new matrix (minibatch assembly).
    pub fn gather_rows(&self, idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(0, self.cols);
        self.gather_rows_into(idx, &mut out);
        out
    }

    /// [`Matrix::gather_rows`] into a reusable scratch matrix: `out` is
    /// reshaped to `(idx.len(), self.cols)` keeping its allocation, so a
    /// training loop pays for one minibatch buffer instead of one per
    /// batch per epoch.
    pub fn gather_rows_into(&self, idx: &[usize], out: &mut Matrix) {
        out.rows = idx.len();
        out.cols = self.cols;
        out.data.clear();
        out.data.reserve(idx.len() * self.cols);
        for &r in idx {
            out.data.extend_from_slice(self.row(r));
        }
    }

    /// `self * other`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        self.matmul_threads(other, auto_width(self.rows * self.cols * other.cols, self.rows))
    }

    /// [`Matrix::matmul`] with an explicit parallel width (`1` = serial).
    /// Output is bitwise identical at every width.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul_threads(&self, other: &Matrix, threads: usize) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul inner dimension mismatch");
        let (k, n) = (self.cols, other.cols);
        let mut out = Matrix::zeros(self.rows, n);
        if threads <= 1 || self.rows <= 1 || n == 0 {
            gemm_kernel(&self.data, &other.data, k, n, 0, self.rows, &mut out.data, None, false);
        } else {
            let a = Arc::new(self.data.clone());
            let b = Arc::new(other.data.clone());
            pooled_rows(threads, self.rows, n, &mut out.data, |r0, r1| {
                let (a, b) = (a.clone(), b.clone());
                Box::new(move || {
                    let mut part = vec![0.0f32; (r1 - r0) * n];
                    gemm_kernel(&a, &b, k, n, r0, r1, &mut part, None, false);
                    part
                })
            });
        }
        out
    }

    /// Fused dense-layer forward: `relu_if(self · w + bias)` in one pass.
    /// The bias (and optional ReLU) epilogue runs per cache-hot row tile,
    /// eliminating the separate output sweeps; the result is bitwise
    /// identical to `matmul` followed by bias and activation sweeps.
    ///
    /// # Panics
    /// Panics on inner-dimension or bias-length mismatch.
    pub fn dense_forward(&self, w: &Matrix, bias: &[f32], relu: bool) -> Matrix {
        self.dense_forward_threads(w, bias, relu, auto_width(self.rows * self.cols * w.cols, self.rows))
    }

    /// [`Matrix::dense_forward`] with an explicit parallel width.
    ///
    /// # Panics
    /// Panics on inner-dimension or bias-length mismatch.
    pub fn dense_forward_threads(&self, w: &Matrix, bias: &[f32], relu: bool, threads: usize) -> Matrix {
        assert_eq!(self.cols, w.rows, "dense_forward inner dimension mismatch");
        assert_eq!(bias.len(), w.cols, "dense_forward bias length mismatch");
        let (k, n) = (self.cols, w.cols);
        let mut out = Matrix::zeros(self.rows, n);
        if threads <= 1 || self.rows <= 1 || n == 0 {
            gemm_kernel(&self.data, &w.data, k, n, 0, self.rows, &mut out.data, Some(bias), relu);
        } else {
            let a = Arc::new(self.data.clone());
            let b = Arc::new(w.data.clone());
            let bias = Arc::new(bias.to_vec());
            pooled_rows(threads, self.rows, n, &mut out.data, |r0, r1| {
                let (a, b, bias) = (a.clone(), b.clone(), bias.clone());
                Box::new(move || {
                    let mut part = vec![0.0f32; (r1 - r0) * n];
                    gemm_kernel(&a, &b, k, n, r0, r1, &mut part, Some(&bias), relu);
                    part
                })
            });
        }
        out
    }

    /// Gather-combine for factorized sparse-pair classification: output
    /// row `p` is `relu_if(a.row(i) + b.row(j) + bias)` for
    /// `pairs[p] = (i, j)`. This is the sparse counterpart of the dense
    /// product combine — identical per-element arithmetic (`av + bv +
    /// bias`, then the optional ReLU), so a gathered row is bitwise equal
    /// to the corresponding row of the dense cross-product combine.
    ///
    /// # Panics
    /// Panics on column/bias shape mismatch or an out-of-range pair index.
    pub fn combine_pairs(
        a: &Matrix,
        b: &Matrix,
        pairs: &[(u32, u32)],
        bias: &[f32],
        relu: bool,
    ) -> Matrix {
        assert_eq!(a.cols, b.cols, "combine_pairs column mismatch");
        assert_eq!(bias.len(), a.cols, "combine_pairs bias length mismatch");
        let mut out = Matrix::zeros(pairs.len(), a.cols);
        for (p, &(i, j)) in pairs.iter().enumerate() {
            let arow = a.row(i as usize);
            let brow = b.row(j as usize);
            let orow = out.row_mut(p);
            for (((o, &av), &bv), &cv) in orow.iter_mut().zip(arow).zip(brow).zip(bias) {
                let z = av + bv + cv;
                *o = if relu { z.max(0.0) } else { z };
            }
        }
        out
    }

    /// `self^T * other` without materializing the transpose.
    ///
    /// # Panics
    /// Panics on row-count mismatch.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        self.t_matmul_threads(other, auto_width(self.rows * self.cols * other.cols, self.cols))
    }

    /// [`Matrix::t_matmul`] with an explicit parallel width (splitting
    /// output rows, i.e. `self` columns).
    ///
    /// # Panics
    /// Panics on row-count mismatch.
    pub fn t_matmul_threads(&self, other: &Matrix, threads: usize) -> Matrix {
        assert_eq!(self.rows, other.rows, "t_matmul dimension mismatch");
        let (rows, p, n) = (self.rows, self.cols, other.cols);
        let mut out = Matrix::zeros(p, n);
        if threads <= 1 || p <= 1 || n == 0 {
            tgemm_kernel(&self.data, &other.data, rows, p, n, 0, p, &mut out.data);
        } else {
            let a = Arc::new(self.data.clone());
            let b = Arc::new(other.data.clone());
            pooled_rows(threads, p, n, &mut out.data, |i0, i1| {
                let (a, b) = (a.clone(), b.clone());
                Box::new(move || {
                    let mut part = vec![0.0f32; (i1 - i0) * n];
                    tgemm_kernel(&a, &b, rows, p, n, i0, i1, &mut part);
                    part
                })
            });
        }
        out
    }

    /// `self * other^T` without materializing the transpose.
    ///
    /// # Panics
    /// Panics on column-count mismatch.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        self.matmul_t_threads(other, auto_width(self.rows * self.cols * other.rows, self.rows))
    }

    /// [`Matrix::matmul_t`] with an explicit parallel width.
    ///
    /// # Panics
    /// Panics on column-count mismatch.
    pub fn matmul_t_threads(&self, other: &Matrix, threads: usize) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_t dimension mismatch");
        let (k, q) = (self.cols, other.rows);
        let mut out = Matrix::zeros(self.rows, q);
        if q == 0 {
            return out;
        }
        // With enough output rows to amortize the O(q·k) copy, transpose
        // `other` once and run the register-tiled GEMM instead of the
        // dot-product kernel. Both accumulate every element in ascending
        // reduction order, so the results are bitwise identical — this is
        // purely a throughput trade (SIMD across output columns vs scalar
        // dot chains).
        if self.rows >= MT_TRANSPOSE_MIN_ROWS {
            let mut bt = vec![0.0f32; k * q];
            for (r, row) in other.data.chunks_exact(k).enumerate() {
                for (t, &v) in row.iter().enumerate() {
                    bt[t * q + r] = v;
                }
            }
            if threads <= 1 {
                gemm_kernel(&self.data, &bt, k, q, 0, self.rows, &mut out.data, None, false);
            } else {
                let a = Arc::new(self.data.clone());
                let b = Arc::new(bt);
                pooled_rows(threads, self.rows, q, &mut out.data, |r0, r1| {
                    let (a, b) = (a.clone(), b.clone());
                    Box::new(move || {
                        let mut part = vec![0.0f32; (r1 - r0) * q];
                        gemm_kernel(&a, &b, k, q, r0, r1, &mut part, None, false);
                        part
                    })
                });
            }
        } else if threads <= 1 || self.rows <= 1 {
            gemm_nt_kernel(&self.data, &other.data, k, q, 0, self.rows, &mut out.data);
        } else {
            let a = Arc::new(self.data.clone());
            let b = Arc::new(other.data.clone());
            pooled_rows(threads, self.rows, q, &mut out.data, |r0, r1| {
                let (a, b) = (a.clone(), b.clone());
                Box::new(move || {
                    let mut part = vec![0.0f32; (r1 - r0) * q];
                    gemm_nt_kernel(&a, &b, k, q, r0, r1, &mut part);
                    part
                })
            });
        }
        out
    }

    /// Add `other` scaled by `alpha` in place.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, other: &Matrix, alpha: f32) {
        assert_eq!(self.data.len(), other.data.len(), "add_scaled shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn combine_pairs_gathers_rows_with_bias_and_relu() {
        let a = Matrix::from_vec(2, 3, vec![1., -2., 3., 4., 5., -6.]);
        let b = Matrix::from_vec(3, 3, vec![0.5, 0.5, 0.5, -1., -1., -1., 2., 2., 2.]);
        let bias = [0.25, -0.25, 0.0];
        let pairs = [(1u32, 0u32), (0, 2), (0, 0), (1, 2)];
        let out = Matrix::combine_pairs(&a, &b, &pairs, &bias, false);
        assert_eq!(out.rows(), 4);
        assert_eq!(out.cols(), 3);
        for (p, &(i, j)) in pairs.iter().enumerate() {
            for (c, &bv) in bias.iter().enumerate() {
                let expect = a.get(i as usize, c) + b.get(j as usize, c) + bv;
                assert_eq!(out.get(p, c).to_bits(), expect.to_bits(), "row {p} col {c}");
            }
        }
        // With ReLU, negative sums clamp to zero.
        let relu = Matrix::combine_pairs(&a, &b, &pairs, &bias, true);
        for p in 0..pairs.len() {
            for c in 0..3 {
                assert_eq!(relu.get(p, c).to_bits(), out.get(p, c).max(0.0).to_bits());
            }
        }
        // Empty pair list: zero-row output with the right width.
        let empty = Matrix::combine_pairs(&a, &b, &[], &bias, true);
        assert_eq!((empty.rows(), empty.cols()), (0, 3));
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.t_matmul(&b);
        // a^T (2x3) * b (3x2) = 2x2
        let at = Matrix::from_fn(2, 3, |r, c2| a.get(c2, r));
        let expect = at.matmul(&b);
        assert_eq!(c, expect);
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(4, 3, (0..12).map(|x| x as f32).collect());
        let c = a.matmul_t(&b);
        let bt = Matrix::from_fn(3, 4, |r, c2| b.get(c2, r));
        assert_eq!(c, a.matmul(&bt));
    }

    #[test]
    fn parallel_and_serial_agree() {
        // The partitioned path must be bitwise identical to the serial
        // one (the end-to-end fixtures depend on exact accumulation
        // order).
        let a = Matrix::from_fn(512, 256, |r, c| ((r * 31 + c * 7) % 13) as f32 - 6.0);
        let b = Matrix::from_fn(256, 64, |r, c| ((r * 17 + c * 3) % 11) as f32 - 5.0);
        let serial = a.matmul_threads(&b, 1);
        for threads in [2, 3, 4, 7] {
            assert_eq!(a.matmul_threads(&b, threads), serial, "width {threads}");
        }
        assert_eq!(a.matmul(&b), serial);
    }

    #[test]
    fn gather_rows_selects() {
        let a = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let g = a.gather_rows(&[2, 0]);
        assert_eq!(g.as_slice(), &[5., 6., 1., 2.]);
    }

    #[test]
    fn gather_rows_into_reuses_buffer() {
        let a = Matrix::from_fn(6, 3, |r, c| (r * 3 + c) as f32);
        let mut scratch = Matrix::zeros(0, 3);
        a.gather_rows_into(&[4, 1, 5], &mut scratch);
        assert_eq!(scratch, a.gather_rows(&[4, 1, 5]));
        // Re-gathering a smaller batch reshapes in place.
        a.gather_rows_into(&[0], &mut scratch);
        assert_eq!(scratch.rows(), 1);
        assert_eq!(scratch.row(0), a.row(0));
    }

    #[test]
    fn dense_forward_fuses_bias_and_relu() {
        let x = Matrix::from_fn(9, 5, |r, c| ((r * 7 + c * 3) % 9) as f32 - 4.0);
        let w = Matrix::from_fn(5, 6, |r, c| ((r * 5 + c) % 7) as f32 - 3.0);
        let bias: Vec<f32> = (0..6).map(|i| i as f32 / 2.0 - 1.5).collect();
        // Unfused reference: matmul, then bias sweep, then ReLU sweep.
        let mut z = x.matmul(&w);
        for r in 0..z.rows() {
            for (v, b) in z.row_mut(r).iter_mut().zip(&bias) {
                *v += b;
            }
        }
        let mut a = z.clone();
        for v in a.as_mut_slice() {
            *v = v.max(0.0);
        }
        assert_eq!(x.dense_forward(&w, &bias, false), z);
        assert_eq!(x.dense_forward(&w, &bias, true), a);
        // Parallel fused path agrees too.
        assert_eq!(x.dense_forward_threads(&w, &bias, true, 3), a);
    }

    #[test]
    fn degenerate_shapes() {
        // 0 rows.
        let empty = Matrix::zeros(0, 5);
        let w = Matrix::from_fn(5, 4, |r, c| (r + c) as f32);
        assert_eq!(empty.matmul(&w).rows(), 0);
        assert_eq!(empty.matmul_threads(&w, 4).rows(), 0);
        assert_eq!(empty.t_matmul(&Matrix::zeros(0, 3)), Matrix::zeros(5, 3));
        assert_eq!(empty.matmul_t(&Matrix::zeros(7, 5)), Matrix::zeros(0, 7));
        // 1 row.
        let one = Matrix::from_fn(1, 5, |_, c| c as f32);
        assert_eq!(one.matmul_threads(&w, 4), one.matmul_threads(&w, 1));
        // Fewer columns than the register tile / unroll width.
        let thin_a = Matrix::from_fn(5, 2, |r, c| (r * 2 + c) as f32);
        let thin_b = Matrix::from_fn(2, 3, |r, c| (r + c) as f32 - 1.0);
        let got = thin_a.matmul(&thin_b);
        let mut want = Matrix::zeros(5, 3);
        for r in 0..5 {
            for k in 0..2 {
                for c in 0..3 {
                    want.set(r, c, want.get(r, c) + thin_a.get(r, k) * thin_b.get(k, c));
                }
            }
        }
        assert_eq!(got, want);
        // Zero-width output.
        assert_eq!(thin_a.matmul(&Matrix::zeros(2, 0)).cols(), 0);
        // Zero-length reduction: all-zero output plus fused bias.
        let nok = Matrix::zeros(3, 0);
        let z = nok.dense_forward(&Matrix::zeros(0, 2), &[1.0, -2.0], false);
        assert_eq!(z.as_slice(), &[1.0, -2.0, 1.0, -2.0, 1.0, -2.0]);
    }

    #[test]
    fn non_divisible_chunks_agree() {
        // Rows not divisible by the width or the tile height.
        let a = Matrix::from_fn(23, 9, |r, c| ((r * 13 + c * 5) % 17) as f32 - 8.0);
        let b = Matrix::from_fn(9, 7, |r, c| ((r * 11 + c * 2) % 7) as f32 - 3.0);
        let serial = a.matmul_threads(&b, 1);
        for threads in [2, 3, 5, 23, 64] {
            assert_eq!(a.matmul_threads(&b, threads), serial, "width {threads}");
        }
    }

    #[test]
    fn t_matmul_parallel_and_serial_agree() {
        let a = Matrix::from_fn(300, 37, |r, c| ((r * 7 + c * 3) % 19) as f32 - 9.0);
        let b = Matrix::from_fn(300, 29, |r, c| ((r * 3 + c * 11) % 13) as f32 - 6.0);
        let serial = a.t_matmul_threads(&b, 1);
        for threads in [2, 3, 8, 37] {
            assert_eq!(a.t_matmul_threads(&b, threads), serial, "width {threads}");
        }
        assert_eq!(a.t_matmul(&b), serial);
    }

    #[test]
    fn matmul_t_parallel_and_serial_agree() {
        let a = Matrix::from_fn(41, 33, |r, c| ((r * 5 + c * 7) % 23) as f32 - 11.0);
        let b = Matrix::from_fn(26, 33, |r, c| ((r * 9 + c) % 17) as f32 - 8.0);
        let serial = a.matmul_t_threads(&b, 1);
        for threads in [2, 4, 41] {
            assert_eq!(a.matmul_t_threads(&b, threads), serial, "width {threads}");
        }
        assert_eq!(a.matmul_t(&b), serial);
    }

    #[test]
    fn long_reduction_crosses_cache_blocks() {
        // A reduction much longer than any register tile, with a
        // non-divisible remainder.
        let k = 293;
        let a = Matrix::from_fn(5, k, |r, c| ((r + c * 3) % 11) as f32 - 5.0);
        let b = Matrix::from_fn(k, 6, |r, c| ((r * 2 + c) % 9) as f32 - 4.0);
        let got = a.matmul(&b);
        let mut want = Matrix::zeros(5, 6);
        for r in 0..5 {
            for kk in 0..k {
                for c in 0..6 {
                    want.set(r, c, want.get(r, c) + a.get(r, kk) * b.get(kk, c));
                }
            }
        }
        for (g, w) in got.as_slice().iter().zip(want.as_slice()) {
            assert!((g - w).abs() <= 1e-3, "{g} vs {w}");
        }
    }

    #[test]
    #[should_panic]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
