//! Dense row-major `f32` matrices with the handful of operations a
//! feed-forward network needs. Large multiplications parallelize over row
//! chunks with crossbeam scoped threads (deterministic: rows are
//! independent).

use serde::{Deserialize, Serialize};

/// A row-major matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

/// Row count above which `matmul` fans out across threads.
const PAR_THRESHOLD_FLOPS: usize = 1 << 22;

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Build from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Matrix {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Build from a flat row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Matrix { rows, cols, data }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable element access.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of a row.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of a row.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Flat data access.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable data access.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Gather the given rows into a new matrix (minibatch assembly).
    pub fn gather_rows(&self, idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(idx.len(), self.cols);
        for (i, &r) in idx.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(r));
        }
        out
    }

    /// `self * other`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul inner dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        let flops = self.rows * self.cols * other.cols;
        if flops >= PAR_THRESHOLD_FLOPS && self.rows >= 8 {
            let n_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
            let chunk = self.rows.div_ceil(n_threads).max(1);
            let cols = self.cols;
            let ocols = other.cols;
            crossbeam::thread::scope(|s| {
                for (t, out_chunk) in out.data.chunks_mut(chunk * ocols).enumerate() {
                    let a = &self.data;
                    let b = &other.data;
                    s.spawn(move |_| {
                        let row0 = t * chunk;
                        for (local_r, orow) in out_chunk.chunks_mut(ocols).enumerate() {
                            let r = row0 + local_r;
                            for k in 0..cols {
                                let av = a[r * cols + k];
                                if av == 0.0 {
                                    continue;
                                }
                                let brow = &b[k * ocols..(k + 1) * ocols];
                                for (o, &bv) in orow.iter_mut().zip(brow) {
                                    *o += av * bv;
                                }
                            }
                        }
                    });
                }
            })
            .expect("matmul worker panicked");
        } else {
            for r in 0..self.rows {
                for k in 0..self.cols {
                    let av = self.data[r * self.cols + k];
                    if av == 0.0 {
                        continue;
                    }
                    let brow = &other.data[k * other.cols..(k + 1) * other.cols];
                    let orow = &mut out.data[r * other.cols..(r + 1) * other.cols];
                    for (o, &bv) in orow.iter_mut().zip(brow) {
                        *o += av * bv;
                    }
                }
            }
        }
        out
    }

    /// `self^T * other` without materializing the transpose.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "t_matmul dimension mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for r in 0..self.rows {
            for i in 0..self.cols {
                let av = self.data[r * self.cols + i];
                if av == 0.0 {
                    continue;
                }
                let brow = &other.data[r * other.cols..(r + 1) * other.cols];
                let orow = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &bv) in orow.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
        out
    }

    /// `self * other^T` without materializing the transpose.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_t dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for r in 0..self.rows {
            let arow = &self.data[r * self.cols..(r + 1) * self.cols];
            for j in 0..other.rows {
                let brow = &other.data[j * other.cols..(j + 1) * other.cols];
                let mut acc = 0.0;
                for (a, b) in arow.iter().zip(brow) {
                    acc += a * b;
                }
                out.data[r * other.rows + j] = acc;
            }
        }
        out
    }

    /// Add `other` scaled by `alpha` in place.
    pub fn add_scaled(&mut self, other: &Matrix, alpha: f32) {
        assert_eq!(self.data.len(), other.data.len(), "add_scaled shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.t_matmul(&b);
        // a^T (2x3) * b (3x2) = 2x2
        let at = Matrix::from_fn(2, 3, |r, c2| a.get(c2, r));
        let expect = at.matmul(&b);
        assert_eq!(c, expect);
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(4, 3, (0..12).map(|x| x as f32).collect());
        let c = a.matmul_t(&b);
        let bt = Matrix::from_fn(3, 4, |r, c2| b.get(c2, r));
        assert_eq!(c, a.matmul(&bt));
    }

    #[test]
    fn parallel_and_serial_agree() {
        // Force both paths with a matrix above/below the threshold.
        let a = Matrix::from_fn(512, 256, |r, c| ((r * 31 + c * 7) % 13) as f32 - 6.0);
        let b = Matrix::from_fn(256, 64, |r, c| ((r * 17 + c * 3) % 11) as f32 - 5.0);
        let big = a.matmul(&b);
        // Serial reference.
        let mut refm = Matrix::zeros(512, 64);
        for r in 0..512 {
            for k in 0..256 {
                for c in 0..64 {
                    refm.set(r, c, refm.get(r, c) + a.get(r, k) * b.get(k, c));
                }
            }
        }
        assert_eq!(big, refm);
    }

    #[test]
    fn gather_rows_selects() {
        let a = Matrix::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let g = a.gather_rows(&[2, 0]);
        assert_eq!(g.as_slice(), &[5., 6., 1., 2.]);
    }

    #[test]
    #[should_panic]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
