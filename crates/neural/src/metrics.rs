//! Classification metrics: accuracy, AUC, confusion counts.

use serde::{Deserialize, Serialize};

/// Fraction of predictions on the correct side of `threshold`.
pub fn accuracy(probs: &[f32], labels: &[f32], threshold: f32) -> f32 {
    assert_eq!(probs.len(), labels.len());
    if probs.is_empty() {
        return 0.0;
    }
    let correct = probs
        .iter()
        .zip(labels)
        .filter(|(p, y)| (**p >= threshold) == (**y >= 0.5))
        .count();
    correct as f32 / probs.len() as f32
}

/// Area under the ROC curve via the Mann–Whitney U statistic, with tie
/// correction. Returns 0.5 when one class is absent.
pub fn auc(probs: &[f32], labels: &[f32]) -> f64 {
    assert_eq!(probs.len(), labels.len());
    let mut pairs: Vec<(f32, bool)> =
        probs.iter().zip(labels).map(|(p, y)| (*p, *y >= 0.5)).collect();
    pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    let n_pos = pairs.iter().filter(|(_, y)| *y).count();
    let n_neg = pairs.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    // Average ranks over ties.
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0;
    while i < pairs.len() {
        let mut j = i;
        while j + 1 < pairs.len() && pairs[j + 1].0 == pairs[i].0 {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for p in &pairs[i..=j] {
            if p.1 {
                rank_sum_pos += avg_rank;
            }
        }
        i = j + 1;
    }
    let u = rank_sum_pos - (n_pos as f64 * (n_pos as f64 + 1.0)) / 2.0;
    u / (n_pos as f64 * n_neg as f64)
}

/// Confusion-matrix counts at a threshold (the TP/TN/FP/FN columns of the
/// paper's Tables VI and VII).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Confusion {
    /// True positives.
    pub tp: u32,
    /// True negatives.
    pub tn: u32,
    /// False positives.
    pub fp: u32,
    /// False negatives.
    pub fn_: u32,
}

impl Confusion {
    /// Tally predictions against labels at `threshold`.
    pub fn from_predictions(probs: &[f32], labels: &[f32], threshold: f32) -> Confusion {
        let mut c = Confusion::default();
        for (p, y) in probs.iter().zip(labels) {
            match (*p >= threshold, *y >= 0.5) {
                (true, true) => c.tp += 1,
                (false, false) => c.tn += 1,
                (true, false) => c.fp += 1,
                (false, true) => c.fn_ += 1,
            }
        }
        c
    }

    /// Total sample count.
    pub fn total(&self) -> u32 {
        self.tp + self.tn + self.fp + self.fn_
    }

    /// False-positive rate in percent (Fig. 7 / Tables VI-VII "FP(%)"),
    /// computed as FP over all samples as the paper's tables do.
    pub fn fp_percent(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        100.0 * self.fp as f64 / self.total() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_correct_side() {
        let p = [0.9, 0.1, 0.6, 0.4];
        let y = [1.0, 0.0, 0.0, 1.0];
        assert_eq!(accuracy(&p, &y, 0.5), 0.5);
    }

    #[test]
    fn auc_perfect_separation_is_one() {
        let p = [0.1, 0.2, 0.8, 0.9];
        let y = [0.0, 0.0, 1.0, 1.0];
        assert_eq!(auc(&p, &y), 1.0);
    }

    #[test]
    fn auc_reversed_is_zero() {
        let p = [0.9, 0.8, 0.2, 0.1];
        let y = [0.0, 0.0, 1.0, 1.0];
        assert_eq!(auc(&p, &y), 0.0);
    }

    #[test]
    fn auc_random_is_half() {
        let p = [0.5, 0.5, 0.5, 0.5];
        let y = [0.0, 1.0, 0.0, 1.0];
        assert_eq!(auc(&p, &y), 0.5);
    }

    #[test]
    fn auc_single_class_is_half() {
        assert_eq!(auc(&[0.1, 0.9], &[1.0, 1.0]), 0.5);
    }

    #[test]
    fn confusion_tallies() {
        let p = [0.9, 0.1, 0.6, 0.4];
        let y = [1.0, 0.0, 0.0, 1.0];
        let c = Confusion::from_predictions(&p, &y, 0.5);
        assert_eq!(c, Confusion { tp: 1, tn: 1, fp: 1, fn_: 1 });
        assert_eq!(c.total(), 4);
        assert_eq!(c.fp_percent(), 25.0);
    }
}
