//! # fwlang — synthetic firmware source language
//!
//! The source-language substrate for the PATCHECKO reproduction. Real
//! firmware libraries (the paper's `libstagefright` and friends) are not
//! shippable, so this crate provides:
//!
//! * [`ast`] — a small imperative language with functions, buffers, loops,
//!   library-routine calls (`memmove`, `malloc`, ...), and syscalls;
//! * [`gen`] — a seeded random program generator producing whole libraries
//!   with realistic shape diversity;
//! * [`patch`] — the security-patch model (source-level edits ranging from
//!   a single constant change to a full restructure);
//! * [`pretty`] — a pseudo-C renderer for reports and the case-study
//!   example;
//! * [`visit`] — AST walkers and derived counters.
//!
//! Downstream, `fwbin` compiles these libraries to four synthetic ISAs at
//! six optimization levels, producing the cross-platform binary variants
//! that PATCHECKO's analyses operate on.
//!
//! ## Example
//!
//! ```
//! use fwlang::gen::Generator;
//! use fwlang::patch::Patch;
//!
//! let mut g = Generator::new(42);
//! let lib = g.library("libdemo");
//! assert!(!lib.functions.is_empty());
//!
//! // Patch the first function with a bounds guard.
//! let vulnerable = &lib.functions[0];
//! let patched = Patch::BoundsGuard { len_param: 1, min_len: 4, reject: Some(-1) }
//!     .apply(vulnerable);
//! assert_ne!(vulnerable.body, patched.body);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod gen;
pub mod patch;
pub mod pretty;
pub mod visit;

pub use ast::{
    BinOp, CmpOp, Expr, Function, GlobalDef, GlobalId, Library, Local, LocalId, Param, ParamId,
    Stmt, StrId, Ty,
};
pub use gen::{GenConfig, Generator};
pub use patch::Patch;
