//! Security-patch model.
//!
//! A patch is a small, source-level edit to a vulnerable function — the
//! paper's central observation is that "a patch typically introduces few
//! changes to a vulnerable function", yet those changes range from a single
//! integer constant (the CVE-2018-9470 case PATCHECKO misses) to a full
//! restructuring of the function (the CVE-2017-13209 case where the
//! vulnerable-basis search misses the patched target).
//!
//! Patches operate purely on the AST; the compiled vulnerable and patched
//! binaries then differ exactly the way real pre-/post-patch builds differ.

use crate::ast::{BinOp, CmpOp, Expr, Function, ParamId, Stmt};
use serde::{Deserialize, Serialize};

/// A source-level security patch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Patch {
    /// Insert an early-return bounds guard on a length parameter at the top
    /// of the function: `if (len < min_len) return -1;`. Models the most
    /// common out-of-bounds fix.
    BoundsGuard {
        /// The length parameter to validate.
        len_param: ParamId,
        /// Minimum accepted length.
        min_len: i64,
        /// Value to return when validation fails (`None` for void).
        reject: Option<i64>,
    },
    /// Change the `occurrence`-th integer constant (in pre-order walk
    /// order) by `delta`. Models one-integer fixes — feature-invisible by
    /// design (the paper's single differential-engine miss).
    ChangeConstant {
        /// Zero-based index of the constant occurrence to edit.
        occurrence: usize,
        /// Amount added to the constant.
        delta: i64,
    },
    /// Remove every statement-level call to `callee` (e.g. drop a
    /// `memmove`), replacing each with the given statements. Models the
    /// CVE-2018-9412 `removeUnsynchronization` patch shape, where the
    /// `memmove` is removed and an index-rewrite takes its place.
    ReplaceCall {
        /// Name of the callee whose statement-level calls are removed.
        callee: String,
        /// Replacement statements (may be empty).
        replacement: Vec<Stmt>,
    },
    /// Wrap the `occurrence`-th top-level statement in a validation
    /// conditional: `if (cond) { stmt }`. Models "add one more if condition
    /// for value checking".
    GuardStmt {
        /// Zero-based index of the top-level statement to guard.
        occurrence: usize,
        /// Guard condition; the statement only executes when it holds.
        cond: Expr,
    },
    /// Heavy rewrite: negates and swaps conditional arms, adds a leading
    /// validation block, and renumbers loop structure. Models patches that
    /// make pre- and post-patch versions *dissimilar* even to the deep
    /// learning model (the paper's CVE-2017-13209 / CVE-2018-9345
    /// discussion).
    Restructure {
        /// Extra guard inserted at function entry.
        min_len: i64,
    },
    /// Apply several patches in order.
    Seq(Vec<Patch>),
}

impl Patch {
    /// Apply the patch, producing the patched function. The input function
    /// is not modified.
    pub fn apply(&self, func: &Function) -> Function {
        let mut out = func.clone();
        match self {
            Patch::BoundsGuard { len_param, min_len, reject } => {
                let guard = Stmt::If {
                    cond: Expr::cmp(CmpOp::Lt, Expr::Param(*len_param), Expr::ConstInt(*min_len)),
                    then_body: vec![Stmt::Return(reject.map(Expr::ConstInt))],
                    else_body: vec![],
                };
                out.body.insert(0, guard);
            }
            Patch::ChangeConstant { occurrence, delta } => {
                let mut seen = 0usize;
                change_constant(&mut out.body, *occurrence, *delta, &mut seen);
            }
            Patch::ReplaceCall { callee, replacement } => {
                out.body = replace_call(&out.body, callee, replacement);
            }
            Patch::GuardStmt { occurrence, cond } => {
                if *occurrence < out.body.len() {
                    let stmt = out.body.remove(*occurrence);
                    out.body.insert(
                        *occurrence,
                        Stmt::If { cond: cond.clone(), then_body: vec![stmt], else_body: vec![] },
                    );
                }
            }
            Patch::Restructure { min_len } => {
                restructure(&mut out, *min_len);
            }
            Patch::Seq(ps) => {
                for p in ps {
                    out = p.apply(&out);
                }
            }
        }
        out
    }

    /// Human-readable summary of the edit (used in reports).
    pub fn summary(&self) -> String {
        match self {
            Patch::BoundsGuard { min_len, .. } => format!("add bounds guard (len >= {min_len})"),
            Patch::ChangeConstant { occurrence, delta } => {
                format!("change constant #{occurrence} by {delta:+}")
            }
            Patch::ReplaceCall { callee, replacement } => {
                format!("remove {callee} call ({} replacement stmts)", replacement.len())
            }
            Patch::GuardStmt { occurrence, .. } => format!("guard statement #{occurrence}"),
            Patch::Restructure { .. } => "restructure function".to_string(),
            Patch::Seq(ps) => ps.iter().map(Patch::summary).collect::<Vec<_>>().join("; "),
        }
    }
}

fn change_constant(stmts: &mut [Stmt], target: usize, delta: i64, seen: &mut usize) {
    for s in stmts {
        change_constant_stmt(s, target, delta, seen);
    }
}

fn change_constant_stmt(s: &mut Stmt, target: usize, delta: i64, seen: &mut usize) {
    match s {
        Stmt::Let { value, .. } | Stmt::SetGlobal { value, .. } => {
            change_constant_expr(value, target, delta, seen)
        }
        Stmt::StoreByte { base, index, value } => {
            change_constant_expr(base, target, delta, seen);
            change_constant_expr(index, target, delta, seen);
            change_constant_expr(value, target, delta, seen);
        }
        Stmt::If { cond, then_body, else_body } => {
            change_constant_expr(cond, target, delta, seen);
            change_constant(then_body, target, delta, seen);
            change_constant(else_body, target, delta, seen);
        }
        Stmt::While { cond, body } => {
            change_constant_expr(cond, target, delta, seen);
            change_constant(body, target, delta, seen);
        }
        Stmt::For { start, end, step, body, .. } => {
            change_constant_expr(start, target, delta, seen);
            change_constant_expr(end, target, delta, seen);
            change_constant_expr(step, target, delta, seen);
            change_constant(body, target, delta, seen);
        }
        Stmt::Expr(e) => change_constant_expr(e, target, delta, seen),
        Stmt::Return(Some(e)) => change_constant_expr(e, target, delta, seen),
        Stmt::Syscall { args, .. } => {
            for a in args {
                change_constant_expr(a, target, delta, seen);
            }
        }
        Stmt::Return(None) | Stmt::Break | Stmt::Continue | Stmt::Abort => {}
    }
}

fn change_constant_expr(e: &mut Expr, target: usize, delta: i64, seen: &mut usize) {
    match e {
        Expr::ConstInt(v) => {
            if *seen == target {
                *v += delta;
            }
            *seen += 1;
        }
        Expr::Bin(_, a, b) | Expr::FBin(_, a, b) | Expr::Cmp(_, a, b) => {
            change_constant_expr(a, target, delta, seen);
            change_constant_expr(b, target, delta, seen);
        }
        Expr::Not(a) | Expr::Neg(a) => change_constant_expr(a, target, delta, seen),
        Expr::LoadByte { base, index } => {
            change_constant_expr(base, target, delta, seen);
            change_constant_expr(index, target, delta, seen);
        }
        Expr::Call { args, .. } => {
            for a in args {
                change_constant_expr(a, target, delta, seen);
            }
        }
        _ => {}
    }
}

fn replace_call(stmts: &[Stmt], callee: &str, replacement: &[Stmt]) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(stmts.len());
    for s in stmts {
        match s {
            Stmt::Expr(Expr::Call { callee: c, .. }) if c == callee => {
                out.extend(replacement.iter().cloned());
            }
            Stmt::If { cond, then_body, else_body } => out.push(Stmt::If {
                cond: cond.clone(),
                then_body: replace_call(then_body, callee, replacement),
                else_body: replace_call(else_body, callee, replacement),
            }),
            Stmt::While { cond, body } => out.push(Stmt::While {
                cond: cond.clone(),
                body: replace_call(body, callee, replacement),
            }),
            Stmt::For { var, start, end, step, body } => out.push(Stmt::For {
                var: *var,
                start: start.clone(),
                end: end.clone(),
                step: step.clone(),
                body: replace_call(body, callee, replacement),
            }),
            other => out.push(other.clone()),
        }
    }
    out
}

fn restructure(func: &mut Function, min_len: i64) {
    // 1. Leading validation block on the conventional length parameter.
    if let Some((_, len_param)) = func.buffer_param() {
        func.body.insert(
            0,
            Stmt::If {
                cond: Expr::cmp(CmpOp::Lt, Expr::Param(len_param), Expr::ConstInt(min_len)),
                then_body: vec![Stmt::Return(func.ret.map(|_| Expr::ConstInt(-1)))],
                else_body: vec![],
            },
        );
    }
    // 2. Negate every two-armed conditional and swap its arms, and add a
    //    progress accumulator to every loop — structurally different CFG,
    //    same externally visible intent.
    let counter = func.add_local("patch_ctr", crate::ast::Ty::Int);
    func.body.insert(0, Stmt::Let { local: counter, value: Expr::ConstInt(0) });
    restructure_stmts(&mut func.body, counter);
}

fn restructure_stmts(stmts: &mut [Stmt], counter: u32) {
    for s in stmts.iter_mut() {
        match s {
            Stmt::If { cond, then_body, else_body } if !else_body.is_empty() => {
                *cond = Expr::Not(Box::new(cond.clone()));
                std::mem::swap(then_body, else_body);
                restructure_stmts(then_body, counter);
                restructure_stmts(else_body, counter);
            }
            Stmt::If { then_body, else_body, .. } => {
                restructure_stmts(then_body, counter);
                restructure_stmts(else_body, counter);
            }
            Stmt::While { body, .. } | Stmt::For { body, .. } => {
                body.push(Stmt::Let {
                    local: counter,
                    value: Expr::bin(BinOp::Add, Expr::Local(counter), Expr::ConstInt(1)),
                });
                restructure_stmts(body, counter);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Local, Param, Ty};
    use crate::visit;

    fn base() -> Function {
        Function {
            name: "f".into(),
            params: vec![
                Param { name: "data".into(), ty: Ty::Buf },
                Param { name: "len".into(), ty: Ty::Int },
            ],
            locals: vec![Local { name: "i".into(), ty: Ty::Int }],
            ret: Some(Ty::Int),
            body: vec![
                Stmt::For {
                    var: 0,
                    start: Expr::ConstInt(0),
                    end: Expr::Param(1),
                    step: Expr::ConstInt(1),
                    body: vec![Stmt::Expr(Expr::Call {
                        callee: "memmove".into(),
                        args: vec![Expr::Param(0), Expr::Param(0), Expr::ConstInt(2)],
                    })],
                },
                Stmt::Return(Some(Expr::ConstInt(7))),
            ],
            exported: true,
        }
    }

    #[test]
    fn bounds_guard_prepends_if() {
        let f = base();
        let p = Patch::BoundsGuard { len_param: 1, min_len: 4, reject: Some(-1) };
        let g = p.apply(&f);
        assert_eq!(g.body.len(), f.body.len() + 1);
        assert!(matches!(&g.body[0], Stmt::If { .. }));
        // Original untouched.
        assert_eq!(f.body.len(), 2);
    }

    #[test]
    fn change_constant_edits_exactly_one_occurrence() {
        let f = base();
        // Pre-order constants: 0 (start), 1 (step), 2 (memmove arg), 7 (ret).
        let p = Patch::ChangeConstant { occurrence: 3, delta: 10 };
        let g = p.apply(&f);
        let before = visit::int_constants(&f);
        let after = visit::int_constants(&g);
        assert!(before.contains(&7) && !after.contains(&7));
        assert!(after.contains(&17));
        assert_eq!(before.len(), after.len());
    }

    #[test]
    fn replace_call_removes_nested_call() {
        let f = base();
        let p = Patch::ReplaceCall { callee: "memmove".into(), replacement: vec![] };
        let g = p.apply(&f);
        assert!(visit::callee_names(&g).is_empty());
        assert!(visit::callee_names(&f).contains(&"memmove".to_string()));
    }

    #[test]
    fn replace_call_inserts_replacement() {
        let f = base();
        let repl = vec![Stmt::Let { local: 0, value: Expr::ConstInt(99) }];
        let p = Patch::ReplaceCall { callee: "memmove".into(), replacement: repl };
        let g = p.apply(&f);
        let mut found = false;
        visit::walk_stmts(&g.body, &mut |s| {
            if matches!(s, Stmt::Let { value: Expr::ConstInt(99), .. }) {
                found = true;
            }
        });
        assert!(found);
    }

    #[test]
    fn restructure_changes_shape_substantially() {
        let f = base();
        let p = Patch::Restructure { min_len: 2 };
        let g = p.apply(&f);
        assert!(visit::stmt_count(&g) > visit::stmt_count(&f) + 1);
        assert_eq!(g.locals.len(), f.locals.len() + 1);
    }

    #[test]
    fn seq_applies_in_order() {
        let f = base();
        let p = Patch::Seq(vec![
            Patch::BoundsGuard { len_param: 1, min_len: 4, reject: Some(-1) },
            Patch::ReplaceCall { callee: "memmove".into(), replacement: vec![] },
        ]);
        let g = p.apply(&f);
        assert!(matches!(&g.body[0], Stmt::If { .. }));
        assert!(visit::callee_names(&g).is_empty());
    }

    #[test]
    fn guard_stmt_wraps_target() {
        let f = base();
        let p = Patch::GuardStmt {
            occurrence: 0,
            cond: Expr::cmp(CmpOp::Gt, Expr::Param(1), Expr::ConstInt(1)),
        };
        let g = p.apply(&f);
        match &g.body[0] {
            Stmt::If { then_body, .. } => assert!(matches!(then_body[0], Stmt::For { .. })),
            other => panic!("expected guard, got {other:?}"),
        }
    }

    #[test]
    fn summaries_are_nonempty() {
        let ps = [
            Patch::BoundsGuard { len_param: 1, min_len: 4, reject: None },
            Patch::ChangeConstant { occurrence: 0, delta: 1 },
            Patch::ReplaceCall { callee: "memmove".into(), replacement: vec![] },
            Patch::Restructure { min_len: 1 },
        ];
        for p in ps {
            assert!(!p.summary().is_empty());
        }
    }
}
