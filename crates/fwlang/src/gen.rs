//! Seeded random program generator.
//!
//! Generates [`Library`] values whose functions exercise the same code
//! shapes the paper's Android libraries contain: buffer scanning loops,
//! in-place byte transforms, checksum-style reductions, state machines over
//! parser input, arithmetic kernels (including floating point), and thin
//! wrappers that call into other functions of the same library.
//!
//! Every generated function terminates on any input the dynamic-analysis VM
//! can supply (loop bounds are derived from the buffer length parameter or
//! from small constants, and all `while` loops make constant progress).
//! Functions may still *fault* on hostile inputs (out-of-bounds indexing
//! through unguarded integer parameters); this is deliberate — it is exactly
//! what lets PATCHECKO's execution-validation stage prune candidates, as in
//! §III-B of the paper.
//!
//! Generation is fully deterministic in the seed.

use crate::ast::{
    BinOp, CmpOp, Expr, Function, GlobalId, Library, Param, ParamId, Stmt, Ty,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Configuration for library generation.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Minimum number of functions per library.
    pub min_functions: usize,
    /// Maximum number of functions per library.
    pub max_functions: usize,
    /// Fraction of functions marked exported (the rest model internal
    /// functions the paper re-exports with LIEF before dynamic analysis).
    pub export_ratio: f64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig { min_functions: 12, max_functions: 20, export_ratio: 0.6 }
    }
}

/// Template identities, used for naming and for controlling the mix of
/// generated function shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Template {
    Scan,
    Transform,
    Reduce,
    StateMachine,
    Arith,
    Wrapper,
    Parse,
}

const TEMPLATE_WEIGHTS: &[(Template, u32)] = &[
    (Template::Scan, 20),
    (Template::Transform, 18),
    (Template::Reduce, 16),
    (Template::StateMachine, 12),
    (Template::Arith, 14),
    (Template::Wrapper, 8),
    (Template::Parse, 12),
];

fn pick_template(rng: &mut SmallRng) -> Template {
    let total: u32 = TEMPLATE_WEIGHTS.iter().map(|(_, w)| w).sum();
    let mut x = rng.gen_range(0..total);
    for (t, w) in TEMPLATE_WEIGHTS {
        if x < *w {
            return *t;
        }
        x -= w;
    }
    Template::Scan
}

fn template_name(t: Template) -> &'static str {
    match t {
        Template::Scan => "scan",
        Template::Transform => "transform",
        Template::Reduce => "reduce",
        Template::StateMachine => "fsm",
        Template::Arith => "kernel",
        Template::Wrapper => "wrap",
        Template::Parse => "parse",
    }
}

/// Program generator with a deterministic RNG stream.
pub struct Generator {
    rng: SmallRng,
    config: GenConfig,
}

impl Generator {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Generator {
        Generator { rng: SmallRng::seed_from_u64(seed), config: GenConfig::default() }
    }

    /// Create a generator with an explicit configuration.
    pub fn with_config(seed: u64, config: GenConfig) -> Generator {
        Generator { rng: SmallRng::seed_from_u64(seed), config }
    }

    /// Generate a library named `name` with a template-mixed set of
    /// functions sized by the configuration.
    pub fn library(&mut self, name: &str) -> Library {
        let n = self.rng.gen_range(self.config.min_functions..=self.config.max_functions);
        self.library_sized(name, n)
    }

    /// Generate a library with exactly `n` functions.
    pub fn library_sized(&mut self, name: &str, n: usize) -> Library {
        let mut lib = Library::new(name);
        // A small pool of globals shared across the library's functions.
        for g in 0..self.rng.gen_range(2..=4usize) {
            let init = self.rng.gen_range(0..64);
            lib.add_global(format!("g_{name}_{g}"), init);
        }
        for i in 0..n {
            let t = pick_template(&mut self.rng);
            let fname = format!("{name}_{}_{i}", template_name(t));
            let f = self.function(&mut lib, t, fname, i);
            lib.functions.push(f);
        }
        lib
    }

    /// Generate a single function of a random template into `lib`.
    pub fn any_function(&mut self, lib: &mut Library, name: impl Into<String>) -> Function {
        let t = pick_template(&mut self.rng);
        let idx = lib.functions.len();
        self.function(lib, t, name.into(), idx)
    }

    fn function(&mut self, lib: &mut Library, t: Template, name: String, idx: usize) -> Function {
        let exported = self.rng.gen_bool(self.config.export_ratio);
        match t {
            Template::Scan => self.gen_scan(lib, name, exported),
            Template::Transform => self.gen_transform(lib, name, exported),
            Template::Reduce => self.gen_reduce(lib, name, exported),
            Template::StateMachine => self.gen_state_machine(lib, name, exported),
            Template::Arith => self.gen_arith(lib, name, exported),
            Template::Wrapper => self.gen_wrapper(lib, name, exported, idx),
            Template::Parse => self.gen_parse(lib, name, exported),
        }
    }

    // ---- helpers -------------------------------------------------------

    fn gen_range(&mut self, lo: i64, hi: i64) -> i64 {
        self.rng.gen_range(lo..hi)
    }

    /// A pure arithmetic expression over the given integer-valued atoms.
    fn int_expr(&mut self, atoms: &[Expr], depth: usize) -> Expr {
        if depth == 0 || self.rng.gen_bool(0.35) {
            if self.rng.gen_bool(0.4) {
                return Expr::ConstInt(self.gen_range(0, 256));
            }
            return atoms[self.rng.gen_range(0..atoms.len())].clone();
        }
        let a = self.int_expr(atoms, depth - 1);
        let b = self.int_expr(atoms, depth - 1);
        let op = BinOp::ALL[self.rng.gen_range(0..BinOp::ALL.len())];
        match op {
            // Guard division/modulo with a non-zero constant divisor and
            // shifts with an in-range constant amount so generated code
            // cannot fault in pure arithmetic.
            BinOp::Div | BinOp::Mod => {
                Expr::bin(op, a, Expr::ConstInt(self.gen_range(1, 17)))
            }
            BinOp::Shl | BinOp::Shr => Expr::bin(op, a, Expr::ConstInt(self.gen_range(0, 8))),
            _ => Expr::bin(op, a, b),
        }
    }

    fn cmp_expr(&mut self, atoms: &[Expr]) -> Expr {
        let op = CmpOp::ALL[self.rng.gen_range(0..CmpOp::ALL.len())];
        let a = self.int_expr(atoms, 1);
        let b =
            if self.rng.gen_bool(0.5) { Expr::ConstInt(self.gen_range(0, 128)) } else { self.int_expr(atoms, 1) };
        Expr::cmp(op, a, b)
    }

    // ---- templates -----------------------------------------------------

    /// Scan a buffer, counting/branching on byte values. Shape of the
    /// paper's `removeUnsynchronization`-like loops.
    fn gen_scan(&mut self, lib: &mut Library, name: String, exported: bool) -> Function {
        let mut f = Function {
            name,
            params: vec![
                Param { name: "data".into(), ty: Ty::Buf },
                Param { name: "len".into(), ty: Ty::Int },
            ],
            locals: vec![],
            ret: Some(Ty::Int),
            body: vec![],
            exported,
        };
        if self.rng.gen_bool(0.5) {
            f.params.push(Param { name: "mode".into(), ty: Ty::Int });
        }
        let i = f.add_local("i", Ty::Int);
        let acc = f.add_local("acc", Ty::Int);
        f.body.push(Stmt::Let { local: acc, value: Expr::ConstInt(0) });

        let sentinel = self.gen_range(0, 256);
        let mut loop_body = vec![];
        let byte = Expr::load(Expr::Param(0), Expr::Local(i));
        let mut then_body = vec![Stmt::Let {
            local: acc,
            value: Expr::bin(BinOp::Add, Expr::Local(acc), Expr::ConstInt(1)),
        }];
        if self.rng.gen_bool(0.4) {
            then_body.push(Stmt::If {
                cond: Expr::cmp(CmpOp::Gt, Expr::Local(acc), Expr::ConstInt(self.gen_range(4, 64))),
                then_body: vec![Stmt::Break],
                else_body: vec![],
            });
        }
        loop_body.push(Stmt::If {
            cond: Expr::cmp(CmpOp::Eq, byte, Expr::ConstInt(sentinel)),
            then_body,
            else_body: if self.rng.gen_bool(0.5) {
                vec![Stmt::Let {
                    local: acc,
                    value: Expr::bin(
                        BinOp::Xor,
                        Expr::Local(acc),
                        Expr::load(Expr::Param(0), Expr::Local(i)),
                    ),
                }]
            } else {
                vec![]
            },
        });
        f.body.push(Stmt::For {
            var: i,
            start: Expr::ConstInt(0),
            end: Expr::Param(1),
            step: Expr::ConstInt(1),
            body: loop_body,
        });
        if self.rng.gen_bool(0.3) {
            let sid = lib.intern_string(format!("scan done {}", self.gen_range(0, 1000)));
            f.body.push(Stmt::Expr(Expr::Call {
                callee: "log_event".into(),
                args: vec![Expr::Str(sid), Expr::Local(acc)],
            }));
        }
        f.body.push(Stmt::Return(Some(Expr::Local(acc))));
        f
    }

    /// In-place byte transform with stores; sometimes calls `memset` or
    /// `memmove`.
    fn gen_transform(&mut self, lib: &mut Library, name: String, exported: bool) -> Function {
        let mut f = Function {
            name,
            params: vec![
                Param { name: "data".into(), ty: Ty::Buf },
                Param { name: "len".into(), ty: Ty::Int },
                Param { name: "key".into(), ty: Ty::Int },
            ],
            locals: vec![],
            ret: None,
            body: vec![],
            exported,
        };
        let i = f.add_local("i", Ty::Int);
        let op = [BinOp::Xor, BinOp::Add, BinOp::Sub][self.rng.gen_range(0..3usize)];
        let body = vec![Stmt::StoreByte {
            base: Expr::Param(0),
            index: Expr::Local(i),
            value: Expr::bin(op, Expr::load(Expr::Param(0), Expr::Local(i)), Expr::Param(2)),
        }];
        f.body.push(Stmt::For {
            var: i,
            start: Expr::ConstInt(0),
            end: Expr::Param(1),
            step: Expr::ConstInt(self.gen_range(1, 3)),
            body,
        });
        match self.rng.gen_range(0..3) {
            0 => f.body.push(Stmt::If {
                cond: Expr::cmp(CmpOp::Gt, Expr::Param(1), Expr::ConstInt(2)),
                then_body: vec![Stmt::Expr(Expr::Call {
                    callee: "memset".into(),
                    args: vec![Expr::Param(0), Expr::ConstInt(0), Expr::ConstInt(1)],
                })],
                else_body: vec![],
            }),
            1 => f.body.push(Stmt::If {
                cond: Expr::cmp(CmpOp::Gt, Expr::Param(1), Expr::ConstInt(4)),
                then_body: vec![Stmt::Expr(Expr::Call {
                    callee: "memmove".into(),
                    args: vec![
                        Expr::Param(0),
                        Expr::bin(BinOp::Add, Expr::Param(0), Expr::ConstInt(1)),
                        Expr::bin(BinOp::Sub, Expr::Param(1), Expr::ConstInt(1)),
                    ],
                })],
                else_body: vec![],
            }),
            _ => {
                let _ = lib; // no extra call
            }
        }
        f.body.push(Stmt::Return(None));
        f
    }

    /// Checksum-style reduction over the buffer with mixing arithmetic.
    fn gen_reduce(&mut self, _lib: &mut Library, name: String, exported: bool) -> Function {
        let mut f = Function {
            name,
            params: vec![
                Param { name: "data".into(), ty: Ty::Buf },
                Param { name: "len".into(), ty: Ty::Int },
            ],
            locals: vec![],
            ret: Some(Ty::Int),
            body: vec![],
            exported,
        };
        let i = f.add_local("i", Ty::Int);
        let h = f.add_local("h", Ty::Int);
        let seed = self.gen_range(1, 1 << 16);
        f.body.push(Stmt::Let { local: h, value: Expr::ConstInt(seed) });
        let mul = self.gen_range(3, 97) | 1;
        let body = vec![Stmt::Let {
            local: h,
            value: Expr::bin(
                BinOp::Xor,
                Expr::bin(BinOp::Mul, Expr::Local(h), Expr::ConstInt(mul)),
                Expr::load(Expr::Param(0), Expr::Local(i)),
            ),
        }];
        f.body.push(Stmt::For {
            var: i,
            start: Expr::ConstInt(0),
            end: Expr::Param(1),
            step: Expr::ConstInt(1),
            body,
        });
        if self.rng.gen_bool(0.5) {
            f.body.push(Stmt::Let {
                local: h,
                value: Expr::bin(
                    BinOp::And,
                    Expr::Local(h),
                    Expr::ConstInt((1 << self.gen_range(16, 32)) - 1),
                ),
            });
        }
        f.body.push(Stmt::Return(Some(Expr::Local(h))));
        f
    }

    /// Byte-driven state machine over the input, updating a library global.
    fn gen_state_machine(&mut self, lib: &mut Library, name: String, exported: bool) -> Function {
        let mut f = Function {
            name,
            params: vec![
                Param { name: "data".into(), ty: Ty::Buf },
                Param { name: "len".into(), ty: Ty::Int },
            ],
            locals: vec![],
            ret: Some(Ty::Int),
            body: vec![],
            exported,
        };
        let i = f.add_local("i", Ty::Int);
        let st = f.add_local("state", Ty::Int);
        let n_states = self.gen_range(2, 5);
        f.body.push(Stmt::Let { local: st, value: Expr::ConstInt(0) });
        f.body.push(Stmt::Let { local: i, value: Expr::ConstInt(0) });

        let mut arms: Vec<Stmt> = Vec::new();
        for s in 0..n_states {
            let trig = self.gen_range(0, 256);
            let next = self.gen_range(0, n_states);
            arms.push(Stmt::If {
                cond: Expr::bin(
                    BinOp::And,
                    Expr::cmp(CmpOp::Eq, Expr::Local(st), Expr::ConstInt(s)),
                    Expr::cmp(
                        CmpOp::Eq,
                        Expr::load(Expr::Param(0), Expr::Local(i)),
                        Expr::ConstInt(trig),
                    ),
                ),
                then_body: vec![Stmt::Let { local: st, value: Expr::ConstInt(next) }],
                else_body: vec![],
            });
        }
        let mut loop_body = arms;
        loop_body.push(Stmt::Let {
            local: i,
            value: Expr::bin(BinOp::Add, Expr::Local(i), Expr::ConstInt(1)),
        });
        f.body.push(Stmt::While {
            cond: Expr::cmp(CmpOp::Lt, Expr::Local(i), Expr::Param(1)),
            body: loop_body,
        });
        let gid: GlobalId = self.rng.gen_range(0..lib.globals.len().max(1)) as GlobalId;
        if !lib.globals.is_empty() {
            f.body.push(Stmt::SetGlobal { global: gid, value: Expr::Local(st) });
        }
        if self.rng.gen_bool(0.3) {
            f.body.push(Stmt::Syscall { num: 1, args: vec![Expr::Local(st)] });
        }
        f.body.push(Stmt::Return(Some(Expr::Local(st))));
        f
    }

    /// Loop-free (or small fixed loop) arithmetic kernel; may use floats.
    fn gen_arith(&mut self, _lib: &mut Library, name: String, exported: bool) -> Function {
        let n_params = self.gen_range(2, 5) as usize;
        let mut f = Function {
            name,
            params: (0..n_params)
                .map(|k| Param { name: format!("a{k}"), ty: Ty::Int })
                .collect(),
            locals: vec![],
            ret: Some(Ty::Int),
            body: vec![],
            exported,
        };
        let atoms: Vec<Expr> = (0..n_params as ParamId).map(Expr::Param).collect();
        let t0 = f.add_local("t0", Ty::Int);
        let t1 = f.add_local("t1", Ty::Int);
        let e0 = self.int_expr(&atoms, 3);
        let e1 = self.int_expr(&atoms, 3);
        f.body.push(Stmt::Let { local: t0, value: e0 });
        f.body.push(Stmt::Let { local: t1, value: e1 });
        let use_float = self.rng.gen_bool(0.35);
        if use_float {
            let fl = f.add_local("fv", Ty::Float);
            let fop = BinOp::FLOAT[self.rng.gen_range(0..BinOp::FLOAT.len())];
            f.body.push(Stmt::Let {
                local: fl,
                value: Expr::FBin(
                    fop,
                    Box::new(Expr::Local(t0)),
                    Box::new(Expr::ConstFloat(self.rng.gen_range(1.0..8.0))),
                ),
            });
            f.body.push(Stmt::Let {
                local: t0,
                value: Expr::bin(BinOp::Add, Expr::Local(t0), Expr::Local(fl)),
            });
        }
        let cond = self.cmp_expr(&atoms);
        f.body.push(Stmt::If {
            cond,
            then_body: vec![Stmt::Return(Some(Expr::Local(t0)))],
            else_body: vec![],
        });
        if self.rng.gen_bool(0.4) {
            // small constant-trip loop
            let i = f.add_local("i", Ty::Int);
            let trip = self.gen_range(2, 9);
            f.body.push(Stmt::For {
                var: i,
                start: Expr::ConstInt(0),
                end: Expr::ConstInt(trip),
                step: Expr::ConstInt(1),
                body: vec![Stmt::Let {
                    local: t1,
                    value: Expr::bin(
                        BinOp::Add,
                        Expr::Local(t1),
                        Expr::bin(BinOp::Mul, Expr::Local(i), Expr::Local(t0)),
                    ),
                }],
            });
        }
        f.body.push(Stmt::Return(Some(Expr::bin(BinOp::Xor, Expr::Local(t0), Expr::Local(t1)))));
        f
    }

    /// Thin wrapper: validates arguments then delegates to an existing
    /// function of the library (if any), mirroring the delegation wrappers
    /// common in media frameworks.
    fn gen_wrapper(
        &mut self,
        lib: &mut Library,
        name: String,
        exported: bool,
        _idx: usize,
    ) -> Function {
        let mut f = Function {
            name,
            params: vec![
                Param { name: "data".into(), ty: Ty::Buf },
                Param { name: "len".into(), ty: Ty::Int },
            ],
            locals: vec![],
            ret: Some(Ty::Int),
            body: vec![],
            exported,
        };
        let r = f.add_local("r", Ty::Int);
        // Argument validation guard.
        f.body.push(Stmt::If {
            cond: Expr::cmp(CmpOp::Le, Expr::Param(1), Expr::ConstInt(0)),
            then_body: vec![Stmt::Return(Some(Expr::ConstInt(-1)))],
            else_body: vec![],
        });
        // Delegate to a previously generated (buf, len) function if one
        // exists; otherwise fall back to a library routine.
        let callee = lib
            .functions
            .iter()
            .filter(|g| g.buffer_param() == Some((0, 1)))
            .map(|g| g.name.clone())
            .next_back();
        let call = match callee {
            Some(c) => Expr::Call { callee: c, args: vec![Expr::Param(0), Expr::Param(1)] },
            None => Expr::Call { callee: "checksum".into(), args: vec![Expr::Param(0), Expr::Param(1)] },
        };
        f.body.push(Stmt::Let { local: r, value: call });
        if self.rng.gen_bool(0.5) {
            f.body.push(Stmt::Let {
                local: r,
                value: Expr::bin(BinOp::And, Expr::Local(r), Expr::ConstInt(0xffff)),
            });
        }
        f.body.push(Stmt::Return(Some(Expr::Local(r))));
        f
    }

    /// Header-parser shape: reads fixed offsets (may fault on short input —
    /// intentionally, see module docs), branches on magic values, and
    /// occasionally aborts.
    fn gen_parse(&mut self, lib: &mut Library, name: String, exported: bool) -> Function {
        let mut f = Function {
            name,
            params: vec![
                Param { name: "data".into(), ty: Ty::Buf },
                Param { name: "len".into(), ty: Ty::Int },
            ],
            locals: vec![],
            ret: Some(Ty::Int),
            body: vec![],
            exported,
        };
        let magic = self.gen_range(0, 256);
        let guarded = self.rng.gen_bool(0.6);
        let hdr = self.gen_range(2, 8);
        if guarded {
            f.body.push(Stmt::If {
                cond: Expr::cmp(CmpOp::Lt, Expr::Param(1), Expr::ConstInt(hdr)),
                then_body: vec![Stmt::Return(Some(Expr::ConstInt(-1)))],
                else_body: vec![],
            });
        }
        let v = f.add_local("v", Ty::Int);
        // Fixed-offset header reads. Without the guard these fault on short
        // buffers — the paper's crash-pruning behaviour.
        f.body.push(Stmt::Let {
            local: v,
            value: Expr::load(Expr::Param(0), Expr::ConstInt(0)),
        });
        let v2 = f.add_local("v2", Ty::Int);
        f.body.push(Stmt::Let {
            local: v2,
            value: Expr::load(Expr::Param(0), Expr::ConstInt(hdr - 1)),
        });
        let sid = lib.intern_string(format!("bad magic {magic}"));
        let mut bad_arm = vec![Stmt::Expr(Expr::Call {
            callee: "log_event".into(),
            args: vec![Expr::Str(sid), Expr::Local(v)],
        })];
        if self.rng.gen_bool(0.2) {
            bad_arm.push(Stmt::Abort);
        } else {
            bad_arm.push(Stmt::Return(Some(Expr::ConstInt(-2))));
        }
        f.body.push(Stmt::If {
            cond: Expr::cmp(CmpOp::Ne, Expr::Local(v), Expr::ConstInt(magic)),
            then_body: bad_arm,
            else_body: vec![],
        });
        f.body.push(Stmt::Return(Some(Expr::bin(
            BinOp::Or,
            Expr::bin(BinOp::Shl, Expr::Local(v), Expr::ConstInt(8)),
            Expr::Local(v2),
        ))));
        f
    }
}

/// Generate a deterministic corpus of `n` libraries named
/// `{prefix}{index}`, each with its own derived seed.
pub fn libraries(seed: u64, prefix: &str, n: usize, config: &GenConfig) -> Vec<Library> {
    (0..n)
        .map(|i| {
            let mut g = Generator::with_config(
                seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(i as u64),
                config.clone(),
            );
            g.library(&format!("{prefix}{i}"))
        })
        .collect()
}

#[allow(unused_mut)]
#[cfg(test)]
mod tests {
    use super::*;
    use crate::visit;

    #[test]
    fn generation_is_deterministic() {
        let a = Generator::new(42).library("libx");
        let b = Generator::new(42).library("libx");
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Generator::new(1).library("libx");
        let b = Generator::new(2).library("libx");
        assert_ne!(a, b);
    }

    #[test]
    fn library_respects_size_bounds() {
        let cfg = GenConfig { min_functions: 5, max_functions: 9, export_ratio: 1.0 };
        for seed in 0..20 {
            let lib = Generator::with_config(seed, cfg.clone()).library("lib");
            assert!(lib.functions.len() >= 5 && lib.functions.len() <= 9);
        }
    }

    #[test]
    fn every_function_has_reachable_return_or_abort() {
        // All templates end the main path with an explicit Return.
        let lib = Generator::new(7).library_sized("lib", 40);
        for f in &lib.functions {
            let last = f.body.last().expect("non-empty body");
            assert!(
                matches!(last, Stmt::Return(_)),
                "function {} must end with Return, got {last:?}",
                f.name
            );
        }
    }

    #[test]
    fn loops_have_positive_constant_steps() {
        let lib = Generator::new(11).library_sized("lib", 60);
        for f in &lib.functions {
            visit::walk_stmts(&f.body, &mut |s| {
                if let Stmt::For { step, .. } = s {
                    match step {
                        Expr::ConstInt(v) => assert!(*v > 0, "non-positive step in {}", f.name),
                        other => panic!("non-constant step {other:?} in {}", f.name),
                    }
                }
            });
        }
    }

    #[test]
    fn corpus_generation_is_deterministic_per_library() {
        let cfg = GenConfig::default();
        let a = libraries(99, "lib", 5, &cfg);
        let b = libraries(99, "lib", 5, &cfg);
        assert_eq!(a, b);
        // And libraries with different indices differ from each other.
        assert_ne!(a[0].functions, a[1].functions);
    }

    #[test]
    fn template_mix_is_diverse() {
        let lib = Generator::new(3).library_sized("lib", 80);
        let names: Vec<&str> = lib.functions.iter().map(|f| f.name.as_str()).collect();
        for t in ["scan", "transform", "reduce", "kernel"] {
            assert!(
                names.iter().any(|n| n.contains(t)),
                "expected at least one {t} function in an 80-function library"
            );
        }
    }

    #[test]
    fn wrappers_call_into_library() {
        // In a large library at least one wrapper should call a previously
        // generated sibling function (binary-defined call, dynamic feature 1).
        let lib = Generator::new(5).library_sized("lib", 80);
        let mut found = false;
        for f in &lib.functions {
            for callee in visit::callee_names(f) {
                if lib.function(&callee).is_some() {
                    found = true;
                }
            }
        }
        assert!(found, "expected at least one intra-library call");
    }
}
