//! Pseudo-C pretty printer for source functions, used by examples and
//! reports (the paper's Figure 6 shows vulnerable/patched source side by
//! side; our case-study example renders the same view).

use crate::ast::{BinOp, CmpOp, Expr, Function, Stmt};
use std::fmt::Write;

fn binop_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Mod => "%",
        BinOp::And => "&",
        BinOp::Or => "|",
        BinOp::Xor => "^",
        BinOp::Shl => "<<",
        BinOp::Shr => ">>",
    }
}

fn cmpop_str(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "==",
        CmpOp::Ne => "!=",
        CmpOp::Lt => "<",
        CmpOp::Le => "<=",
        CmpOp::Gt => ">",
        CmpOp::Ge => ">=",
    }
}

/// Render an expression.
pub fn expr(e: &Expr, f: &Function) -> String {
    match e {
        Expr::ConstInt(v) => {
            if *v >= 0x20 && *v < 0x7f && *v > 9 {
                format!("0x{v:x}")
            } else {
                format!("{v}")
            }
        }
        Expr::ConstFloat(v) => format!("{v:.3}"),
        Expr::Str(id) => format!("str_{id}"),
        Expr::Local(id) => f
            .locals
            .get(*id as usize)
            .map(|l| l.name.clone())
            .unwrap_or_else(|| format!("l{id}")),
        Expr::Param(id) => f
            .params
            .get(*id as usize)
            .map(|p| p.name.clone())
            .unwrap_or_else(|| format!("p{id}")),
        Expr::Global(id) => format!("g{id}"),
        Expr::Bin(op, a, b) => format!("({} {} {})", expr(a, f), binop_str(*op), expr(b, f)),
        Expr::FBin(op, a, b) => format!("({} {}f {})", expr(a, f), binop_str(*op), expr(b, f)),
        Expr::Cmp(op, a, b) => format!("({} {} {})", expr(a, f), cmpop_str(*op), expr(b, f)),
        Expr::Not(a) => format!("!{}", expr(a, f)),
        Expr::Neg(a) => format!("-{}", expr(a, f)),
        Expr::LoadByte { base, index } => format!("{}[{}]", expr(base, f), expr(index, f)),
        Expr::Call { callee, args } => {
            let a: Vec<String> = args.iter().map(|x| expr(x, f)).collect();
            format!("{callee}({})", a.join(", "))
        }
    }
}

fn stmts(body: &[Stmt], f: &Function, indent: usize, out: &mut String) {
    let pad = "    ".repeat(indent);
    for s in body {
        match s {
            Stmt::Let { local, value } => {
                let name = f
                    .locals
                    .get(*local as usize)
                    .map(|l| l.name.clone())
                    .unwrap_or_else(|| format!("l{local}"));
                let _ = writeln!(out, "{pad}{name} = {};", expr(value, f));
            }
            Stmt::SetGlobal { global, value } => {
                let _ = writeln!(out, "{pad}g{global} = {};", expr(value, f));
            }
            Stmt::StoreByte { base, index, value } => {
                let _ = writeln!(
                    out,
                    "{pad}{}[{}] = {};",
                    expr(base, f),
                    expr(index, f),
                    expr(value, f)
                );
            }
            Stmt::If { cond, then_body, else_body } => {
                let _ = writeln!(out, "{pad}if {} {{", expr(cond, f));
                stmts(then_body, f, indent + 1, out);
                if else_body.is_empty() {
                    let _ = writeln!(out, "{pad}}}");
                } else {
                    let _ = writeln!(out, "{pad}}} else {{");
                    stmts(else_body, f, indent + 1, out);
                    let _ = writeln!(out, "{pad}}}");
                }
            }
            Stmt::While { cond, body } => {
                let _ = writeln!(out, "{pad}while {} {{", expr(cond, f));
                stmts(body, f, indent + 1, out);
                let _ = writeln!(out, "{pad}}}");
            }
            Stmt::For { var, start, end, step, body } => {
                let v = f
                    .locals
                    .get(*var as usize)
                    .map(|l| l.name.clone())
                    .unwrap_or_else(|| format!("l{var}"));
                let _ = writeln!(
                    out,
                    "{pad}for ({v} = {}; {v} < {}; {v} += {}) {{",
                    expr(start, f),
                    expr(end, f),
                    expr(step, f)
                );
                stmts(body, f, indent + 1, out);
                let _ = writeln!(out, "{pad}}}");
            }
            Stmt::Expr(e) => {
                let _ = writeln!(out, "{pad}{};", expr(e, f));
            }
            Stmt::Return(Some(e)) => {
                let _ = writeln!(out, "{pad}return {};", expr(e, f));
            }
            Stmt::Return(None) => {
                let _ = writeln!(out, "{pad}return;");
            }
            Stmt::Break => {
                let _ = writeln!(out, "{pad}break;");
            }
            Stmt::Continue => {
                let _ = writeln!(out, "{pad}continue;");
            }
            Stmt::Syscall { num, args } => {
                let a: Vec<String> = args.iter().map(|x| expr(x, f)).collect();
                let _ = writeln!(out, "{pad}syscall_{num}({});", a.join(", "));
            }
            Stmt::Abort => {
                let _ = writeln!(out, "{pad}abort();");
            }
        }
    }
}

/// Render a whole function as pseudo-C.
pub fn function(f: &Function) -> String {
    let mut out = String::new();
    let params: Vec<String> = f
        .params
        .iter()
        .map(|p| format!("{} {}", match p.ty {
            crate::ast::Ty::Int => "int",
            crate::ast::Ty::Float => "float",
            crate::ast::Ty::Buf => "u8*",
        }, p.name))
        .collect();
    let ret = match f.ret {
        Some(crate::ast::Ty::Int) => "int",
        Some(crate::ast::Ty::Float) => "float",
        Some(crate::ast::Ty::Buf) => "u8*",
        None => "void",
    };
    let _ = writeln!(out, "{ret} {}({}) {{", f.name, params.join(", "));
    stmts(&f.body, f, 1, &mut out);
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Param, Ty};

    #[test]
    fn renders_function_with_loop_and_call() {
        let f = Function {
            name: "demo".into(),
            params: vec![
                Param { name: "data".into(), ty: Ty::Buf },
                Param { name: "len".into(), ty: Ty::Int },
            ],
            locals: vec![crate::ast::Local { name: "i".into(), ty: Ty::Int }],
            ret: Some(Ty::Int),
            body: vec![
                Stmt::For {
                    var: 0,
                    start: Expr::ConstInt(0),
                    end: Expr::Param(1),
                    step: Expr::ConstInt(1),
                    body: vec![Stmt::Expr(Expr::Call {
                        callee: "memmove".into(),
                        args: vec![Expr::Param(0), Expr::Param(0), Expr::Local(0)],
                    })],
                },
                Stmt::Return(Some(Expr::ConstInt(0))),
            ],
            exported: true,
        };
        let text = function(&f);
        assert!(text.contains("int demo(u8* data, int len)"));
        assert!(text.contains("for (i = 0; i < len; i += 1)"));
        assert!(text.contains("memmove(data, data, i);"));
        assert!(text.contains("return 0;"));
    }
}
