//! Abstract syntax tree for the synthetic firmware source language.
//!
//! The language is a small imperative language with the notion of functions
//! (the paper's only requirement on the source language: "a high-level
//! procedural programming language, i.e., a language that has the notion of
//! functions"). Programs are grouped into [`Library`] values mirroring the
//! shared libraries (`libstagefright.so`, ...) that PATCHECKO analyzes.
//!
//! Values are 64-bit integers, 64-bit floats, or byte-buffer pointers.
//! Buffers are passed as `(ptr, len)` argument pairs by convention, which is
//! what lets the dynamic-analysis fuzzer synthesize inputs for any exported
//! function.

use serde::{Deserialize, Serialize};

/// A scalar or pointer type in the source language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Ty {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE-754 float.
    Float,
    /// Pointer to a byte buffer (paired with an `Int` length parameter by
    /// convention).
    Buf,
}

/// Index of a function parameter.
pub type ParamId = u32;
/// Index of a function local variable.
pub type LocalId = u32;
/// Index into a library's global variable table.
pub type GlobalId = u32;
/// Index into a library's string constant table.
pub type StrId = u32;

/// A function parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    /// Parameter name (debug info only; stripped binaries never see it).
    pub name: String,
    /// Parameter type.
    pub ty: Ty,
}

/// A function local variable. Scalars only; buffers are always parameters or
/// heap allocations in this language.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Local {
    /// Local name (debug info only).
    pub name: String,
    /// Local type (`Ty::Buf` locals hold pointers produced by `malloc` or
    /// passed through from parameters).
    pub ty: Ty,
}

/// A library-level mutable global variable with an integer initial value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GlobalDef {
    /// Global name (debug info only).
    pub name: String,
    /// Initial value at image load time.
    pub init: i64,
}

/// Integer / bitwise binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Wrapping division (zero divisor faults at runtime).
    Div,
    /// Wrapping remainder (zero divisor faults at runtime).
    Mod,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift (amount masked to 0..63).
    Shl,
    /// Arithmetic right shift (amount masked to 0..63).
    Shr,
}

impl BinOp {
    /// All operators, for generator sampling.
    pub const ALL: [BinOp; 10] = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Mod,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Shl,
        BinOp::Shr,
    ];

    /// Operators that are safe for float arithmetic.
    pub const FLOAT: [BinOp; 4] = [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div];
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    /// All comparison operators, for generator sampling.
    pub const ALL: [CmpOp; 6] = [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge];

    /// The negated comparison (`!(a < b)` is `a >= b`).
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// The comparison with operands swapped (`a < b` is `b > a`).
    pub fn swap(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }
}

/// An expression. Expressions are pure except for [`Expr::Call`], whose
/// callee may have side effects.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[allow(missing_docs)] // field names are self-describing
pub enum Expr {
    /// Integer literal.
    ConstInt(i64),
    /// Float literal.
    ConstFloat(f64),
    /// Address of a string constant in the library's read-only data.
    Str(StrId),
    /// Read a local variable.
    Local(LocalId),
    /// Read a parameter.
    Param(ParamId),
    /// Read a library global.
    Global(GlobalId),
    /// Integer binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Float binary operation (operands are reinterpreted as floats).
    FBin(BinOp, Box<Expr>, Box<Expr>),
    /// Comparison producing 0 or 1.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Logical negation (`x == 0`).
    Not(Box<Expr>),
    /// Arithmetic negation.
    Neg(Box<Expr>),
    /// Load the byte at `base[index]`, zero-extended to an integer.
    LoadByte { base: Box<Expr>, index: Box<Expr> },
    /// Call a function by name (another function in the same library, or an
    /// imported library routine such as `memmove`), yielding its return
    /// value (0 for void callees).
    Call { callee: String, args: Vec<Expr> },
}

impl Expr {
    /// Convenience constructor for an integer binary operation.
    pub fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Bin(op, Box::new(a), Box::new(b))
    }

    /// Convenience constructor for a comparison.
    pub fn cmp(op: CmpOp, a: Expr, b: Expr) -> Expr {
        Expr::Cmp(op, Box::new(a), Box::new(b))
    }

    /// Convenience constructor for a byte load.
    pub fn load(base: Expr, index: Expr) -> Expr {
        Expr::LoadByte { base: Box::new(base), index: Box::new(index) }
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[allow(missing_docs)] // field names are self-describing
pub enum Stmt {
    /// Assign to a local variable.
    Let { local: LocalId, value: Expr },
    /// Assign to a library global.
    SetGlobal { global: GlobalId, value: Expr },
    /// Store the low byte of `value` at `base[index]`.
    StoreByte { base: Expr, index: Expr, value: Expr },
    /// Two-armed conditional.
    If { cond: Expr, then_body: Vec<Stmt>, else_body: Vec<Stmt> },
    /// Pre-tested loop.
    While { cond: Expr, body: Vec<Stmt> },
    /// Counted loop: `for var = start; var < end; var += step`.
    ///
    /// `step` must evaluate to a positive value for the loop to terminate;
    /// the generator only emits positive constant steps.
    For { var: LocalId, start: Expr, end: Expr, step: Expr, body: Vec<Stmt> },
    /// Evaluate an expression for its side effects (calls).
    Expr(Expr),
    /// Return from the function.
    Return(Option<Expr>),
    /// Break out of the innermost loop.
    Break,
    /// Continue the innermost loop.
    Continue,
    /// Invoke an operating-system service by number.
    Syscall { num: u32, args: Vec<Expr> },
    /// Abort execution (models `abort()` / unreachable traps); lowers to a
    /// no-return halt instruction.
    Abort,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Function {
    /// Function name. Present in debug builds' symbol tables; stripped from
    /// release firmware for non-exported functions.
    pub name: String,
    /// Parameters.
    pub params: Vec<Param>,
    /// Local variables.
    pub locals: Vec<Local>,
    /// Return type, or `None` for void.
    pub ret: Option<Ty>,
    /// Statement list.
    pub body: Vec<Stmt>,
    /// Whether the function appears in the export table (callable after
    /// `dlopen`/`dlsym`; the dynamic loader can run it directly).
    pub exported: bool,
}

impl Function {
    /// Index of the first `Buf` parameter together with the index of the
    /// conventionally paired length parameter, if the function takes a
    /// buffer.
    ///
    /// By language convention every `Buf` parameter at index `i` is
    /// immediately followed by an `Int` length parameter at `i + 1`.
    pub fn buffer_param(&self) -> Option<(ParamId, ParamId)> {
        self.params.iter().enumerate().find_map(|(i, p)| {
            if p.ty == Ty::Buf && self.params.get(i + 1).map(|l| l.ty) == Some(Ty::Int) {
                Some((i as ParamId, (i + 1) as ParamId))
            } else {
                None
            }
        })
    }

    /// Add a local variable, returning its id.
    pub fn add_local(&mut self, name: impl Into<String>, ty: Ty) -> LocalId {
        self.locals.push(Local { name: name.into(), ty });
        (self.locals.len() - 1) as LocalId
    }
}

/// A library: a named collection of functions plus their shared read-only
/// strings and mutable globals. This is the unit that gets compiled into one
/// FWB binary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Library {
    /// Library name, e.g. `libstagefright`.
    pub name: String,
    /// Function definitions.
    pub functions: Vec<Function>,
    /// String constant pool.
    pub strings: Vec<String>,
    /// Global variable definitions.
    pub globals: Vec<GlobalDef>,
}

impl Library {
    /// Create an empty library.
    pub fn new(name: impl Into<String>) -> Library {
        Library { name: name.into(), functions: Vec::new(), strings: Vec::new(), globals: Vec::new() }
    }

    /// Look up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Look up a function by name, mutably.
    pub fn function_mut(&mut self, name: &str) -> Option<&mut Function> {
        self.functions.iter_mut().find(|f| f.name == name)
    }

    /// Intern a string constant, returning its id.
    pub fn intern_string(&mut self, s: impl Into<String>) -> StrId {
        let s = s.into();
        if let Some(i) = self.strings.iter().position(|x| *x == s) {
            return i as StrId;
        }
        self.strings.push(s);
        (self.strings.len() - 1) as StrId
    }

    /// Add a global variable, returning its id.
    pub fn add_global(&mut self, name: impl Into<String>, init: i64) -> GlobalId {
        self.globals.push(GlobalDef { name: name.into(), init });
        (self.globals.len() - 1) as GlobalId
    }
}

/// The library routines every target platform provides (the analog of the
/// libc/bionic functions the paper's CVE functions call, e.g. `memmove` in
/// `ID3::removeUnsynchronization`). Calls to these resolve through the
/// import table and are executed natively by the dynamic-analysis VM.
pub const LIBRARY_ROUTINES: &[(&str, usize)] = &[
    // (name, arity)
    ("memmove", 3), // memmove(dst_ptr, src_ptr, n) within one buffer region
    ("memcpy", 3),
    ("memset", 3),  // memset(ptr, byte, n)
    ("memcmp", 3),
    ("strlen", 1),
    ("malloc", 1),
    ("free", 1),
    ("abs", 1),
    ("min", 2),
    ("max", 2),
    ("checksum", 2), // checksum(ptr, len): models a hash helper
    ("log_event", 2), // logging sink with a string argument
    ("abort", 0),
];

/// Whether `name` names an imported library routine (as opposed to a
/// function defined in the same library).
pub fn is_library_routine(name: &str) -> bool {
    LIBRARY_ROUTINES.iter().any(|(n, _)| *n == name)
}

/// Arity of a library routine, if `name` is one.
pub fn library_routine_arity(name: &str) -> Option<usize> {
    LIBRARY_ROUTINES.iter().find(|(n, _)| *n == name).map(|(_, a)| *a)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_negate_is_involution() {
        for op in CmpOp::ALL {
            assert_eq!(op.negate().negate(), op);
        }
    }

    #[test]
    fn cmp_swap_is_involution() {
        for op in CmpOp::ALL {
            assert_eq!(op.swap().swap(), op);
        }
    }

    #[test]
    fn buffer_param_finds_conventional_pair() {
        let f = Function {
            name: "f".into(),
            params: vec![
                Param { name: "x".into(), ty: Ty::Int },
                Param { name: "data".into(), ty: Ty::Buf },
                Param { name: "len".into(), ty: Ty::Int },
            ],
            locals: vec![],
            ret: None,
            body: vec![],
            exported: true,
        };
        assert_eq!(f.buffer_param(), Some((1, 2)));
    }

    #[test]
    fn buffer_param_absent_without_length() {
        let f = Function {
            name: "f".into(),
            params: vec![Param { name: "data".into(), ty: Ty::Buf }],
            locals: vec![],
            ret: None,
            body: vec![],
            exported: true,
        };
        assert_eq!(f.buffer_param(), None);
    }

    #[test]
    fn intern_string_deduplicates() {
        let mut lib = Library::new("libtest");
        let a = lib.intern_string("hello");
        let b = lib.intern_string("world");
        let c = lib.intern_string("hello");
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_eq!(lib.strings.len(), 2);
    }

    #[test]
    fn library_routines_are_known() {
        assert!(is_library_routine("memmove"));
        assert!(!is_library_routine("removeUnsynchronization"));
        assert_eq!(library_routine_arity("memset"), Some(3));
        assert_eq!(library_routine_arity("nope"), None);
    }
}
