//! Traversal utilities over the AST: expression/statement walkers and the
//! derived counters used by tests and by the patch model.

use crate::ast::{Expr, Function, Stmt};

/// Walk every expression in `stmts` (pre-order), including nested
/// sub-expressions, invoking `f` on each.
pub fn walk_exprs<'a>(stmts: &'a [Stmt], f: &mut impl FnMut(&'a Expr)) {
    for s in stmts {
        walk_stmt_exprs(s, f);
    }
}

fn walk_stmt_exprs<'a>(s: &'a Stmt, f: &mut impl FnMut(&'a Expr)) {
    match s {
        Stmt::Let { value, .. } => walk_expr(value, f),
        Stmt::SetGlobal { value, .. } => walk_expr(value, f),
        Stmt::StoreByte { base, index, value } => {
            walk_expr(base, f);
            walk_expr(index, f);
            walk_expr(value, f);
        }
        Stmt::If { cond, then_body, else_body } => {
            walk_expr(cond, f);
            walk_exprs(then_body, f);
            walk_exprs(else_body, f);
        }
        Stmt::While { cond, body } => {
            walk_expr(cond, f);
            walk_exprs(body, f);
        }
        Stmt::For { start, end, step, body, .. } => {
            walk_expr(start, f);
            walk_expr(end, f);
            walk_expr(step, f);
            walk_exprs(body, f);
        }
        Stmt::Expr(e) => walk_expr(e, f),
        Stmt::Return(Some(e)) => walk_expr(e, f),
        Stmt::Return(None) | Stmt::Break | Stmt::Continue | Stmt::Abort => {}
        Stmt::Syscall { args, .. } => {
            for a in args {
                walk_expr(a, f);
            }
        }
    }
}

/// Walk `e` and all sub-expressions (pre-order).
pub fn walk_expr<'a>(e: &'a Expr, f: &mut impl FnMut(&'a Expr)) {
    f(e);
    match e {
        Expr::Bin(_, a, b) | Expr::FBin(_, a, b) | Expr::Cmp(_, a, b) => {
            walk_expr(a, f);
            walk_expr(b, f);
        }
        Expr::Not(a) | Expr::Neg(a) => walk_expr(a, f),
        Expr::LoadByte { base, index } => {
            walk_expr(base, f);
            walk_expr(index, f);
        }
        Expr::Call { args, .. } => {
            for a in args {
                walk_expr(a, f);
            }
        }
        Expr::ConstInt(_)
        | Expr::ConstFloat(_)
        | Expr::Str(_)
        | Expr::Local(_)
        | Expr::Param(_)
        | Expr::Global(_) => {}
    }
}

/// Walk every statement in `stmts` (pre-order, descending into bodies).
pub fn walk_stmts<'a>(stmts: &'a [Stmt], f: &mut impl FnMut(&'a Stmt)) {
    for s in stmts {
        f(s);
        match s {
            Stmt::If { then_body, else_body, .. } => {
                walk_stmts(then_body, f);
                walk_stmts(else_body, f);
            }
            Stmt::While { body, .. } | Stmt::For { body, .. } => walk_stmts(body, f),
            _ => {}
        }
    }
}

/// Names of all callees (library routines and intra-library functions)
/// invoked anywhere in the function, in first-occurrence order, deduplicated.
pub fn callee_names(func: &Function) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    walk_exprs(&func.body, &mut |e| {
        if let Expr::Call { callee, .. } = e {
            if !out.iter().any(|c| c == callee) {
                out.push(callee.clone());
            }
        }
    });
    out
}

/// Count of statements in the function (recursively).
pub fn stmt_count(func: &Function) -> usize {
    let mut n = 0;
    walk_stmts(&func.body, &mut |_| n += 1);
    n
}

/// Count of loop statements (`While` + `For`) in the function.
pub fn loop_count(func: &Function) -> usize {
    let mut n = 0;
    walk_stmts(&func.body, &mut |s| {
        if matches!(s, Stmt::While { .. } | Stmt::For { .. }) {
            n += 1;
        }
    });
    n
}

/// All distinct integer constants appearing in the function.
pub fn int_constants(func: &Function) -> Vec<i64> {
    let mut out: Vec<i64> = Vec::new();
    walk_exprs(&func.body, &mut |e| {
        if let Expr::ConstInt(v) = e {
            if !out.contains(v) {
                out.push(*v);
            }
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::*;

    fn sample() -> Function {
        Function {
            name: "s".into(),
            params: vec![
                Param { name: "data".into(), ty: Ty::Buf },
                Param { name: "len".into(), ty: Ty::Int },
            ],
            locals: vec![Local { name: "i".into(), ty: Ty::Int }],
            ret: Some(Ty::Int),
            body: vec![
                Stmt::For {
                    var: 0,
                    start: Expr::ConstInt(0),
                    end: Expr::Param(1),
                    step: Expr::ConstInt(1),
                    body: vec![Stmt::If {
                        cond: Expr::cmp(
                            CmpOp::Eq,
                            Expr::load(Expr::Param(0), Expr::Local(0)),
                            Expr::ConstInt(0xff),
                        ),
                        then_body: vec![Stmt::Expr(Expr::Call {
                            callee: "memmove".into(),
                            args: vec![Expr::Param(0), Expr::Param(0), Expr::ConstInt(4)],
                        })],
                        else_body: vec![],
                    }],
                },
                Stmt::Return(Some(Expr::ConstInt(0))),
            ],
            exported: true,
        }
    }

    #[test]
    fn counts_callees_once() {
        let f = sample();
        assert_eq!(callee_names(&f), vec!["memmove".to_string()]);
    }

    #[test]
    fn counts_statements_recursively() {
        let f = sample();
        // For, If, Expr(call), Return
        assert_eq!(stmt_count(&f), 4);
        assert_eq!(loop_count(&f), 1);
    }

    #[test]
    fn collects_distinct_constants() {
        let f = sample();
        let consts = int_constants(&f);
        assert!(consts.contains(&0));
        assert!(consts.contains(&1));
        assert!(consts.contains(&0xff));
        assert!(consts.contains(&4));
    }
}
