//! Property tests for the program generator and patch model.

use fwlang::ast::{Expr, Stmt};
use fwlang::gen::{GenConfig, Generator};
use fwlang::patch::Patch;
use fwlang::visit;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Generation is a pure function of the seed.
    #[test]
    fn generation_deterministic(seed in any::<u64>()) {
        let a = Generator::new(seed).library("lib");
        let b = Generator::new(seed).library("lib");
        prop_assert_eq!(a, b);
    }

    /// Every generated function terminates structurally: all `For` steps
    /// are positive constants and all `While` loops contain an assignment
    /// to some local (progress) or a `Break`.
    #[test]
    fn loops_are_well_formed(seed in any::<u64>(), n in 1usize..30) {
        let lib = Generator::with_config(
            seed,
            GenConfig { min_functions: 1, max_functions: 1, export_ratio: 1.0 },
        )
        .library_sized("lib", n);
        for f in &lib.functions {
            visit::walk_stmts(&f.body, &mut |s| match s {
                Stmt::For { step, .. } => {
                    assert!(matches!(step, Expr::ConstInt(k) if *k > 0), "{}", f.name);
                }
                Stmt::While { body, .. } => {
                    let mut has_progress = false;
                    visit::walk_stmts(body, &mut |inner| {
                        if matches!(inner, Stmt::Let { .. } | Stmt::Break) {
                            has_progress = true;
                        }
                    });
                    assert!(has_progress, "while loop without progress in {}", f.name);
                }
                _ => {}
            });
        }
    }

    /// Callee references are always resolvable: a library routine or a
    /// sibling function of the same library.
    #[test]
    fn callees_resolve(seed in any::<u64>(), n in 1usize..25) {
        let lib = Generator::new(seed).library_sized("lib", n);
        for f in &lib.functions {
            for callee in visit::callee_names(f) {
                prop_assert!(
                    fwlang::ast::is_library_routine(&callee) || lib.function(&callee).is_some(),
                    "unresolvable callee {} in {}",
                    callee,
                    f.name
                );
            }
        }
    }

    /// String references always index into the library's string pool.
    #[test]
    fn string_refs_in_bounds(seed in any::<u64>()) {
        let lib = Generator::new(seed).library_sized("lib", 12);
        for f in &lib.functions {
            visit::walk_exprs(&f.body, &mut |e| {
                if let Expr::Str(sid) = e {
                    assert!((*sid as usize) < lib.strings.len());
                }
            });
        }
    }

    /// A bounds-guard patch is idempotent in effect: applying it twice
    /// yields a double guard but never changes the original statements'
    /// relative order.
    #[test]
    fn bounds_guard_preserves_core(seed in any::<u64>(), min_len in 1i64..32) {
        let mut lib = fwlang::Library::new("lib");
        let f = Generator::new(seed).any_function(&mut lib, "f");
        let patch = Patch::BoundsGuard { len_param: 1, min_len, reject: Some(-1) };
        let g = patch.apply(&f);
        prop_assert_eq!(g.body.len(), f.body.len() + 1);
        prop_assert_eq!(&g.body[1..], &f.body[..]);
    }

    /// ChangeConstant alters at most one constant occurrence and keeps the
    /// statement structure identical.
    #[test]
    fn change_constant_is_minimal(seed in any::<u64>(), occ in 0usize..8) {
        let mut lib = fwlang::Library::new("lib");
        let f = Generator::new(seed).any_function(&mut lib, "f");
        let patch = Patch::ChangeConstant { occurrence: occ, delta: 1 };
        let g = patch.apply(&f);
        prop_assert_eq!(visit::stmt_count(&f), visit::stmt_count(&g));
        // The sets of constants differ by at most one element.
        let cf = visit::int_constants(&f);
        let cg = visit::int_constants(&g);
        let diff = cf.iter().filter(|c| !cg.contains(c)).count();
        prop_assert!(diff <= 1);
    }
}
