//! Concurrency guarantees of the metrics registry and the span stack:
//! hammered from many threads, snapshot totals are exact (no lost
//! updates, no double counts), and span nesting accounts time such that
//! a child's recorded wall time never exceeds its parent's.

use scope::{MetricsRegistry, SpanGuard};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn registry_totals_are_exact_under_contention() {
    const THREADS: usize = 8;
    const INCREMENTS: u64 = 20_000;
    const COUNTERS: [&str; 4] = ["a.hits", "a.misses", "b.retries", "b.dispatches"];

    let reg = Arc::new(MetricsRegistry::new());
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let reg = Arc::clone(&reg);
        handles.push(std::thread::spawn(move || {
            for i in 0..INCREMENTS {
                // Resolve by name on some iterations to also contend on
                // the registration locks, not just the atomics.
                let name = COUNTERS[(t + i as usize) % COUNTERS.len()];
                if i % 64 == 0 {
                    reg.add(name, 1);
                } else {
                    reg.counter(name).inc();
                }
                if i % 1000 == 0 {
                    reg.record("t.work", Duration::from_nanos(i));
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let snap = reg.snapshot();
    let total: u64 = COUNTERS.iter().map(|c| snap.counter(c)).sum();
    assert_eq!(total, THREADS as u64 * INCREMENTS, "every increment lands exactly once");
    // Each thread touches each counter name equally often (INCREMENTS is
    // a multiple of the counter count), so per-counter totals are exact.
    for c in COUNTERS {
        assert_eq!(snap.counter(c), THREADS as u64 * INCREMENTS / COUNTERS.len() as u64);
    }
    let d = snap.duration("t.work").expect("histogram registered");
    assert_eq!(d.count, THREADS as u64 * (INCREMENTS / 1000));
    assert_eq!(d.count, d.buckets.iter().map(|(_, v)| v).sum::<u64>(), "buckets cover all records");
}

#[test]
fn snapshot_delta_is_consistent_mid_hammer() {
    let reg = Arc::new(MetricsRegistry::new());
    let writer = {
        let reg = Arc::clone(&reg);
        std::thread::spawn(move || {
            for _ in 0..50_000 {
                reg.counter("w").inc();
            }
        })
    };
    // Deltas taken while a writer runs are monotone and never underflow.
    let mut last = reg.snapshot();
    for _ in 0..100 {
        let now = reg.snapshot();
        let delta = now.since(&last);
        assert!(delta.counter("w") <= 50_000);
        assert!(now.counter("w") >= last.counter("w"));
        last = now;
    }
    writer.join().unwrap();
    assert_eq!(reg.snapshot().counter("w"), 50_000);
}

#[test]
fn child_span_time_is_bounded_by_parent_time() {
    // Spans record into a leaked private registry so parallel tests in
    // this binary cannot pollute the histograms under assertion.
    let reg: &'static MetricsRegistry = Box::leak(Box::new(MetricsRegistry::new()));
    for _ in 0..5 {
        let _parent = SpanGuard::enter_in(reg, "parent");
        std::thread::sleep(Duration::from_millis(1));
        for _ in 0..3 {
            let _child = SpanGuard::enter_in(reg, "child");
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    let snap = reg.snapshot();
    let parent = snap.duration("span.parent").unwrap();
    let child = snap.duration("span.child").unwrap();
    assert_eq!(parent.count, 5);
    assert_eq!(child.count, 15);
    assert!(
        child.total_ns <= parent.total_ns,
        "children run inside their parents: child {}ns > parent {}ns",
        child.total_ns,
        parent.total_ns
    );
    assert!(child.max_ns <= parent.max_ns, "a single child cannot outlast its parent");
}

#[test]
fn span_stacks_are_per_thread() {
    let reg: &'static MetricsRegistry = Box::leak(Box::new(MetricsRegistry::new()));
    let _outer = SpanGuard::enter_in(reg, "outer_thread_span");
    let depth_elsewhere = std::thread::spawn(scope::span::current_depth).join().unwrap();
    assert_eq!(depth_elsewhere, 0, "another thread's stack starts empty");
    assert_eq!(scope::span::current_depth(), 1);
}
