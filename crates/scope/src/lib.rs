//! # scope — always-on observability for the PATCHECKO pipeline
//!
//! The pipeline grew a cache (scanhub), tiled kernels behind a worker
//! pool (neural), and retry/degradation paths (faultline); this crate is
//! the window into all of it, built from three pieces:
//!
//! * [`registry`] — a lock-light [`MetricsRegistry`] of named atomic
//!   counters and log-bucketed duration histograms, with serializable
//!   [`TelemetrySnapshot`]s supporting `since` (saturating deltas) and
//!   `merged` (multi-registry reporting), mirroring the `CacheStats`
//!   conventions;
//! * [`span`] — hierarchical RAII tracing spans (`scope::span!("name")`)
//!   over a per-thread span stack, recording wall time into the registry
//!   as `span.<name>` histograms;
//! * [`trace`] — optional Chrome-trace capture: with capture enabled,
//!   every completed span becomes a `ph:"X"` event and
//!   [`trace::write_chrome_trace`] emits a JSON that loads directly in
//!   `chrome://tracing` or Perfetto.
//!
//! ## Registries: global and local
//!
//! Instrumentation embedded in library code (pipeline stages, the worker
//! pool, fault injectors) records into the process-global registry
//! ([`global`]). Components that need *exact, isolated* counts — the
//! artifact store's cache counters, the scheduler's retry counters — own
//! a registry handle instead (an `Arc<MetricsRegistry>`), which defaults
//! to a fresh private instance per store/hub so concurrent tests never
//! observe each other. The CLI passes [`global_shared`] down so a
//! command's whole run lands in one registry, then prints one
//! [`TelemetrySnapshot::to_table`].
//!
//! ## Naming convention
//!
//! Dot-separated lowercase paths, component first:
//! `cache.hits`, `sched.retries`, `pool.dispatches`, `fault.injected`,
//! `similarity.skipped_envs`; span histograms are `span.<stage>` with
//! stage names from the paper's pipeline (`static_scan`,
//! `dynamic_stage`, `differential`, `sched.job`, `audit`). Span names
//! are `&'static str` by design — context goes in the trace detail, not
//! the metric key.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod registry;
pub mod span;
pub mod trace;

pub use registry::{Counter, DurationStats, MetricsRegistry, ScopedRegistry, TelemetrySnapshot, Timer};
pub use span::SpanGuard;

use std::sync::{Arc, OnceLock};

fn global_cell() -> &'static Arc<MetricsRegistry> {
    static GLOBAL: OnceLock<Arc<MetricsRegistry>> = OnceLock::new();
    GLOBAL.get_or_init(|| Arc::new(MetricsRegistry::new()))
}

/// The process-global registry. Spans entered via [`span!`] and
/// library-level counters record here.
pub fn global() -> &'static MetricsRegistry {
    global_cell()
}

/// The process-global registry as a shareable handle, for components
/// that take an `Arc<MetricsRegistry>` (the CLI wires the scan hub to
/// this so one snapshot covers the whole command).
pub fn global_shared() -> Arc<MetricsRegistry> {
    Arc::clone(global_cell())
}

/// Add `n` to the global counter `name` (cold-path convenience).
pub fn add(name: &str, n: u64) {
    global().add(name, n);
}

/// Increment the global counter `name` by 1 (cold-path convenience).
pub fn inc(name: &str) {
    global().add(name, 1);
}

/// Snapshot the global registry.
pub fn snapshot() -> TelemetrySnapshot {
    global().snapshot()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_is_one_registry() {
        add("lib.test.counter", 2);
        inc("lib.test.counter");
        assert_eq!(snapshot().counter("lib.test.counter"), 3);
        assert!(Arc::ptr_eq(&global_shared(), &global_shared()));
    }

    #[test]
    fn span_macro_records_globally() {
        {
            let _g = span!("lib_test_span");
        }
        assert!(snapshot().duration("span.lib_test_span").unwrap().count >= 1);
    }
}
