//! Chrome-trace capture: when enabled, every completed span emits one
//! complete ("X") event, and [`write_chrome_trace`] renders the buffer as
//! a JSON document `chrome://tracing` / Perfetto loads directly.
//!
//! Capture is off by default — the production hot path pays one relaxed
//! atomic load per span to find that out. The CLI's `--trace-out` flag
//! turns it on for the duration of a command.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One completed span, in Chrome trace "complete event" terms.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Span name.
    pub name: &'static str,
    /// Optional free-form detail, rendered as the event's `args.detail`.
    pub detail: Option<String>,
    /// Microseconds since the process trace epoch.
    pub ts_us: u64,
    /// Span duration, microseconds.
    pub dur_us: u64,
    /// Stable per-thread id (dense, assigned on first span).
    pub tid: u64,
    /// Span-stack depth at entry (0 = top-level). Chrome nests by
    /// timestamps alone; the depth is kept for programmatic assertions.
    pub depth: usize,
}

static ENABLED: AtomicBool = AtomicBool::new(false);

fn events() -> &'static Mutex<Vec<TraceEvent>> {
    static EVENTS: OnceLock<Mutex<Vec<TraceEvent>>> = OnceLock::new();
    EVENTS.get_or_init(|| Mutex::new(Vec::new()))
}

/// The process-wide trace epoch: all event timestamps are relative to the
/// first call of this function.
pub fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Dense per-thread id for trace events.
pub fn thread_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// Whether span completion should emit trace events.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Start capturing trace events (also pins the epoch so the first span
/// does not land at timestamp 0 minus clock skew).
pub fn enable() {
    epoch();
    ENABLED.store(true, Ordering::Relaxed);
}

/// Stop capturing. Buffered events are kept until [`take_events`] or
/// [`write_chrome_trace`] drains them.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Append one event to the buffer (no-op when capture is disabled).
pub fn record(event: TraceEvent) {
    if is_enabled() {
        events().lock().expect("trace buffer lock").push(event);
    }
}

/// Drain and return every buffered event.
pub fn take_events() -> Vec<TraceEvent> {
    std::mem::take(&mut *events().lock().expect("trace buffer lock"))
}

/// Minimal JSON string escaping for event details (names are static
/// identifiers and never need it, but details may carry user paths).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render events as a Chrome trace document (the `traceEvents` array
/// format). Returns the JSON string; [`write_chrome_trace`] is the
/// file-writing wrapper.
pub fn to_chrome_json(events: &[TraceEvent]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"patchecko\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}",
            escape(e.name),
            e.ts_us,
            e.dur_us.max(1),
            e.tid
        ));
        match &e.detail {
            Some(d) => out.push_str(&format!(
                ",\"args\":{{\"detail\":\"{}\",\"depth\":{}}}}}",
                escape(d),
                e.depth
            )),
            None => out.push_str(&format!(",\"args\":{{\"depth\":{}}}}}", e.depth)),
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Drain the buffer and write it to `path` as a Chrome trace JSON.
/// Returns the number of events written.
///
/// # Errors
/// Propagates filesystem errors.
pub fn write_chrome_trace(path: &std::path::Path) -> std::io::Result<usize> {
    let events = take_events();
    std::fs::write(path, to_chrome_json(&events))?;
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chrome_json_shape_and_escaping() {
        let events = vec![
            TraceEvent { name: "static_scan", detail: None, ts_us: 10, dur_us: 5, tid: 1, depth: 0 },
            TraceEvent {
                name: "job",
                detail: Some("cve \"X\"\npath\\x".into()),
                ts_us: 12,
                dur_us: 0,
                tid: 2,
                depth: 1,
            },
        ];
        let json = to_chrome_json(&events);
        // Must parse as JSON with the Chrome trace envelope.
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let serde_json::Value::Seq(arr) = &v["traceEvents"] else {
            panic!("traceEvents must be an array");
        };
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0]["ph"].as_str(), Some("X"));
        assert_eq!(arr[0]["name"].as_str(), Some("static_scan"));
        assert_eq!(arr[1]["args"]["detail"].as_str(), Some("cve \"X\"\npath\\x"));
        // Zero-length spans are clamped to 1µs so viewers render them.
        assert_eq!(arr[1]["dur"].as_u64(), Some(1));
    }

    #[test]
    fn record_is_a_noop_when_disabled() {
        disable();
        record(TraceEvent { name: "x", detail: None, ts_us: 0, dur_us: 1, tid: 1, depth: 0 });
        assert!(take_events().is_empty());
    }

    #[test]
    fn thread_ids_are_stable_per_thread() {
        let a = thread_id();
        assert_eq!(a, thread_id());
        let b = std::thread::spawn(thread_id).join().unwrap();
        assert_ne!(a, b);
    }
}
