//! Hierarchical tracing spans: RAII guards over a per-thread span stack.
//!
//! Entering a span pushes its name onto the current thread's stack and
//! stamps the wall clock; dropping the guard pops the stack, records the
//! elapsed time into the owning registry's `span.<name>` histogram, and
//! — when trace capture is enabled — emits a Chrome-trace complete event.
//! Nesting is implicit: a span entered while another is open is its child
//! (same thread, enclosed time range), which is exactly how
//! `chrome://tracing` renders flame graphs from `ph:"X"` events.
//!
//! The hot path is cheap: a thread-local push/pop, one `Instant` pair,
//! and the histogram's four relaxed atomics. Span *names* must be
//! `&'static str` — a fixed vocabulary of stage names, not formatted
//! strings — which keeps entry allocation-free; per-instance context
//! (which CVE, which image) goes in the optional trace detail instead.

use crate::registry::MetricsRegistry;
use crate::trace::{self, TraceEvent};
use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Current span-nesting depth on this thread (0 = no open span).
pub fn current_depth() -> usize {
    SPAN_STACK.with(|s| s.borrow().len())
}

/// The names of the spans currently open on this thread, outermost first.
pub fn current_stack() -> Vec<&'static str> {
    SPAN_STACK.with(|s| s.borrow().clone())
}

/// An open span; ends (and records) on drop.
#[must_use = "a span measures nothing unless held; bind it to a `_guard`"]
pub struct SpanGuard {
    name: &'static str,
    detail: Option<String>,
    registry: &'static MetricsRegistry,
    started: Instant,
    depth: usize,
}

impl SpanGuard {
    /// Open a span recording into the process-global registry.
    pub fn enter(name: &'static str) -> SpanGuard {
        Self::enter_in(crate::global(), name)
    }

    /// Open a span recording into an explicit registry (tests isolate
    /// themselves by leaking a private registry).
    pub fn enter_in(registry: &'static MetricsRegistry, name: &'static str) -> SpanGuard {
        let depth = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            s.push(name);
            s.len() - 1
        });
        SpanGuard { name, detail: None, registry, started: Instant::now(), depth }
    }

    /// Attach free-form context (CVE id, image path) that rides along in
    /// the Chrome trace's `args.detail`; metrics keys stay static.
    pub fn with_detail(mut self, detail: impl Into<String>) -> SpanGuard {
        self.detail = Some(detail.into());
        self
    }

    /// This span's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// This span's depth at entry (0 = top-level).
    pub fn depth(&self) -> usize {
        self.depth
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let elapsed = self.started.elapsed();
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Guards drop in LIFO order within a thread, so the top of the
            // stack is this span; pop defensively anyway.
            if s.last() == Some(&self.name) {
                s.pop();
            } else if let Some(pos) = s.iter().rposition(|&n| n == self.name) {
                s.remove(pos);
            }
        });
        self.registry.timer_for_span(self.name).record(elapsed);
        if trace::is_enabled() {
            let ts_us = self
                .started
                .saturating_duration_since(trace::epoch())
                .as_micros()
                .min(u128::from(u64::MAX)) as u64;
            trace::record(TraceEvent {
                name: self.name,
                detail: self.detail.take(),
                ts_us,
                dur_us: elapsed.as_micros().min(u128::from(u64::MAX)) as u64,
                tid: trace::thread_id(),
                depth: self.depth,
            });
        }
    }
}

impl MetricsRegistry {
    /// The histogram a span named `name` records into (`span.<name>`).
    pub fn timer_for_span(&self, name: &str) -> crate::registry::Timer {
        self.timer(&format!("span.{name}"))
    }
}

/// Open a span in the process-global registry:
/// `let _guard = scope::span!("static_scan");`
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::SpanGuard::enter($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaked_registry() -> &'static MetricsRegistry {
        Box::leak(Box::new(MetricsRegistry::new()))
    }

    #[test]
    fn span_records_into_registry_and_tracks_depth() {
        let reg = leaked_registry();
        assert_eq!(current_depth(), 0);
        {
            let outer = SpanGuard::enter_in(reg, "outer");
            assert_eq!(outer.depth(), 0);
            assert_eq!(current_depth(), 1);
            {
                let inner = SpanGuard::enter_in(reg, "inner");
                assert_eq!(inner.depth(), 1);
                assert_eq!(current_stack(), vec!["outer", "inner"]);
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            assert_eq!(current_depth(), 1);
        }
        assert_eq!(current_depth(), 0);
        let snap = reg.snapshot();
        assert_eq!(snap.duration("span.outer").unwrap().count, 1);
        assert_eq!(snap.duration("span.inner").unwrap().count, 1);
        // Child wall time is bounded by parent wall time.
        assert!(
            snap.duration("span.inner").unwrap().total_ns
                <= snap.duration("span.outer").unwrap().total_ns
        );
    }

    #[test]
    fn out_of_order_drop_still_unwinds_the_stack() {
        let reg = leaked_registry();
        let a = SpanGuard::enter_in(reg, "a");
        let b = SpanGuard::enter_in(reg, "b");
        drop(a);
        assert_eq!(current_stack(), vec!["b"]);
        drop(b);
        assert_eq!(current_depth(), 0);
    }
}
