//! The metrics registry: named counters and log-bucketed duration
//! histograms behind atomic handles.
//!
//! The hot path is handle-based: a caller resolves a [`Counter`] or
//! [`Timer`] once (one short-lived registry lock) and every subsequent
//! increment or duration record is a handful of relaxed atomic operations
//! — no lock, no allocation, no formatting. Name-based convenience
//! methods ([`MetricsRegistry::add`], [`MetricsRegistry::record`]) exist
//! for cold paths where caching a handle is not worth the plumbing.
//!
//! Snapshots are the read side: [`MetricsRegistry::snapshot`] produces a
//! serializable [`TelemetrySnapshot`] with `delta` / `merge` mirroring
//! the `CacheStats` conventions upstream (deltas saturate — counters that
//! moved backwards across a reset never underflow).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

/// Number of log2 duration buckets: bucket `i` counts durations in
/// `[2^i, 2^(i+1))` nanoseconds; bucket 0 also absorbs sub-nanosecond
/// (i.e. zero) measurements and the last bucket absorbs everything above
/// `2^39` ns (~9.2 minutes).
pub const NUM_BUCKETS: usize = 40;

/// A handle to one named counter. Cloning is cheap (an `Arc` bump) and
/// every clone addresses the same underlying atomic.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A free-standing counter not attached to any registry (useful for
    /// tests and for callers that only want the atomics).
    pub fn standalone() -> Counter {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The atomic guts of one duration histogram.
#[derive(Debug)]
struct HistogramCore {
    count: AtomicU64,
    total_ns: AtomicU64,
    /// Running maximum, nanoseconds.
    max_ns: AtomicU64,
    buckets: [AtomicU64; NUM_BUCKETS],
}

impl HistogramCore {
    fn new() -> HistogramCore {
        HistogramCore {
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Log2 bucket index of a nanosecond duration.
#[inline]
fn bucket_of(ns: u64) -> usize {
    if ns == 0 {
        0
    } else {
        ((63 - ns.leading_zeros()) as usize).min(NUM_BUCKETS - 1)
    }
}

/// A handle to one named duration histogram. Recording is lock-free:
/// four relaxed atomic RMWs (count, total, max, bucket).
#[derive(Debug, Clone)]
pub struct Timer(Arc<HistogramCore>);

impl Timer {
    /// A free-standing histogram not attached to any registry.
    pub fn standalone() -> Timer {
        Timer(Arc::new(HistogramCore::new()))
    }

    /// Record one duration.
    #[inline]
    pub fn record(&self, d: Duration) {
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.record_ns(ns);
    }

    /// Record one duration given in nanoseconds.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        let core = &self.0;
        core.count.fetch_add(1, Ordering::Relaxed);
        core.total_ns.fetch_add(ns, Ordering::Relaxed);
        core.max_ns.fetch_max(ns, Ordering::Relaxed);
        core.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// Time a closure, recording its wall time.
    #[inline]
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        let started = std::time::Instant::now();
        let out = f();
        self.record(started.elapsed());
        out
    }

    fn stats(&self) -> DurationStats {
        let core = &self.0;
        let mut buckets = Vec::new();
        for (i, b) in core.buckets.iter().enumerate() {
            let v = b.load(Ordering::Relaxed);
            if v != 0 {
                buckets.push((i as u8, v));
            }
        }
        DurationStats {
            count: core.count.load(Ordering::Relaxed),
            total_ns: core.total_ns.load(Ordering::Relaxed),
            max_ns: core.max_ns.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Point-in-time summary of one duration histogram.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DurationStats {
    /// Durations recorded.
    pub count: u64,
    /// Sum of all recorded durations, nanoseconds.
    pub total_ns: u64,
    /// Largest recorded duration, nanoseconds.
    pub max_ns: u64,
    /// Sparse log2 buckets, ascending `(index, count)` pairs: bucket `i`
    /// counts durations in `[2^i, 2^(i+1))` ns. Empty buckets are omitted.
    #[serde(default)]
    pub buckets: Vec<(u8, u64)>,
}

impl DurationStats {
    /// Mean duration in nanoseconds (0 when nothing was recorded).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Total recorded time in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.total_ns as f64 / 1e9
    }

    /// The count recorded in log2 bucket `i` (0 when absent).
    pub fn bucket(&self, i: u8) -> u64 {
        self.buckets.iter().find(|(b, _)| *b == i).map(|(_, v)| *v).unwrap_or(0)
    }

    /// Movement since `earlier`. Counts and totals saturate at zero when
    /// a registry was reset between snapshots; `max_ns` keeps the later
    /// snapshot's value (a running maximum has no meaningful delta).
    pub fn since(&self, earlier: &DurationStats) -> DurationStats {
        let mut buckets = Vec::new();
        for &(i, v) in &self.buckets {
            let d = v.saturating_sub(earlier.bucket(i));
            if d != 0 {
                buckets.push((i, d));
            }
        }
        DurationStats {
            count: self.count.saturating_sub(earlier.count),
            total_ns: self.total_ns.saturating_sub(earlier.total_ns),
            max_ns: self.max_ns,
            buckets,
        }
    }

    /// Fold `other` into `self` (counts and totals add; max takes max).
    pub fn absorb(&mut self, other: &DurationStats) {
        self.count += other.count;
        self.total_ns += other.total_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
        for &(i, v) in &other.buckets {
            match self.buckets.iter_mut().find(|(b, _)| *b == i) {
                Some((_, have)) => *have += v,
                None => self.buckets.push((i, v)),
            }
        }
        self.buckets.sort_unstable_by_key(|&(b, _)| b);
    }
}

/// Serializable point-in-time view of a whole registry — the telemetry
/// payload reports carry and the `--metrics` table renders from.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// Counter name → value.
    #[serde(default)]
    pub counters: BTreeMap<String, u64>,
    /// Histogram name → duration summary. Span timings land here under
    /// `span.<name>` keys.
    #[serde(default)]
    pub durations: BTreeMap<String, DurationStats>,
}

impl TelemetrySnapshot {
    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.values().all(|&v| v == 0)
            && self.durations.values().all(|d| d.count == 0)
    }

    /// One counter's value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// One histogram's stats, when present.
    pub fn duration(&self, name: &str) -> Option<&DurationStats> {
        self.durations.get(name)
    }

    /// The slice of this snapshot living under `<prefix>.`, with the
    /// prefix stripped — the read-side complement of
    /// [`MetricsRegistry::scoped`]. A tenant's view of a shared registry:
    /// `snapshot.filtered("tenant.acme")` yields that tenant's `requests`,
    /// `completed`, `latency`, … and nothing else.
    pub fn filtered(&self, prefix: &str) -> TelemetrySnapshot {
        let dotted = format!("{prefix}.");
        TelemetrySnapshot {
            counters: self
                .counters
                .iter()
                .filter_map(|(k, &v)| Some((k.strip_prefix(&dotted)?.to_string(), v)))
                .collect(),
            durations: self
                .durations
                .iter()
                .filter_map(|(k, d)| Some((k.strip_prefix(&dotted)?.to_string(), d.clone())))
                .collect(),
        }
    }

    /// Every distinct sub-prefix directly under `<prefix>.` — with the
    /// daemon's `tenant.<name>.<counter>` convention,
    /// `names_under("tenant")` is the set of tenants that recorded
    /// anything.
    pub fn names_under(&self, prefix: &str) -> Vec<String> {
        let dotted = format!("{prefix}.");
        let mut names: Vec<String> = self
            .counters
            .keys()
            .chain(self.durations.keys())
            .filter_map(|k| k.strip_prefix(&dotted))
            .filter_map(|rest| rest.split('.').next())
            .map(str::to_string)
            .collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    /// Movement since an earlier snapshot. Counters saturate at zero (a
    /// snapshot pair straddling a reset yields 0, never a wrap), mirroring
    /// `CacheStats::since` upstream.
    pub fn since(&self, earlier: &TelemetrySnapshot) -> TelemetrySnapshot {
        let mut counters = BTreeMap::new();
        for (name, &v) in &self.counters {
            let d = v.saturating_sub(earlier.counter(name));
            if d != 0 {
                counters.insert(name.clone(), d);
            }
        }
        let mut durations = BTreeMap::new();
        for (name, d) in &self.durations {
            let delta = match earlier.durations.get(name) {
                Some(e) => d.since(e),
                None => d.clone(),
            };
            if delta.count != 0 {
                durations.insert(name.clone(), delta);
            }
        }
        TelemetrySnapshot { counters, durations }
    }

    /// Fold another snapshot into this one: counters and histogram counts
    /// add. Used to combine a per-hub registry with the process-global
    /// one into a single reporting view.
    pub fn merged(mut self, other: &TelemetrySnapshot) -> TelemetrySnapshot {
        for (name, &v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, d) in &other.durations {
            self.durations.entry(name.clone()).or_default().absorb(d);
        }
        self
    }

    /// Render a human-readable two-section table: stage/span timings
    /// first, then counters. This is the `--metrics` output.
    pub fn to_table(&self) -> String {
        fn fmt_ns(ns: u64) -> String {
            if ns >= 1_000_000_000 {
                format!("{:.2}s", ns as f64 / 1e9)
            } else if ns >= 1_000_000 {
                format!("{:.2}ms", ns as f64 / 1e6)
            } else if ns >= 1_000 {
                format!("{:.1}µs", ns as f64 / 1e3)
            } else {
                format!("{ns}ns")
            }
        }
        let mut out = String::new();
        let timed: Vec<_> = self.durations.iter().filter(|(_, d)| d.count > 0).collect();
        if !timed.is_empty() {
            out.push_str(&format!(
                "{:<32} {:>8} {:>12} {:>12} {:>12}\n",
                "timing", "count", "total", "mean", "max"
            ));
            for (name, d) in timed {
                out.push_str(&format!(
                    "{:<32} {:>8} {:>12} {:>12} {:>12}\n",
                    name,
                    d.count,
                    fmt_ns(d.total_ns),
                    fmt_ns(d.mean_ns()),
                    fmt_ns(d.max_ns)
                ));
            }
        }
        let counted: Vec<_> = self.counters.iter().filter(|(_, &v)| v > 0).collect();
        if !counted.is_empty() {
            if !out.is_empty() {
                out.push('\n');
            }
            out.push_str(&format!("{:<32} {:>8}\n", "counter", "value"));
            for (name, v) in counted {
                out.push_str(&format!("{:<32} {:>8}\n", name, v));
            }
        }
        if out.is_empty() {
            out.push_str("(no telemetry recorded)\n");
        }
        out
    }
}

/// A registry of named counters and duration histograms.
///
/// Registration (first use of a name) takes a write lock; resolving an
/// existing name takes a read lock; the returned handles never lock.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Counter>>,
    timers: RwLock<BTreeMap<String, Timer>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Resolve (registering on first use) the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        if let Some(c) = self.counters.read().expect("registry lock").get(name) {
            return c.clone();
        }
        self.counters
            .write()
            .expect("registry lock")
            .entry(name.to_string())
            .or_insert_with(Counter::standalone)
            .clone()
    }

    /// Resolve (registering on first use) the duration histogram `name`.
    pub fn timer(&self, name: &str) -> Timer {
        if let Some(t) = self.timers.read().expect("registry lock").get(name) {
            return t.clone();
        }
        self.timers
            .write()
            .expect("registry lock")
            .entry(name.to_string())
            .or_insert_with(Timer::standalone)
            .clone()
    }

    /// Name-based increment (cold-path convenience; hot paths should cache
    /// the [`Counter`] handle).
    pub fn add(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    /// Name-based duration record (cold-path convenience).
    pub fn record(&self, name: &str, d: Duration) {
        self.timer(name).record(d);
    }

    /// A prefixed view of this registry: every counter and timer resolved
    /// through the view lands under `<prefix>.<name>`. This is how the
    /// scan daemon keeps per-tenant counters in the one registry its
    /// `stats` endpoint snapshots — tenant `acme`'s request counter is
    /// `tenant.acme.requests`, carved back out with
    /// [`TelemetrySnapshot::filtered`].
    pub fn scoped(self: &Arc<MetricsRegistry>, prefix: &str) -> ScopedRegistry {
        ScopedRegistry { registry: Arc::clone(self), prefix: prefix.to_string() }
    }

    /// Point-in-time snapshot of every counter and histogram.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let counters = self
            .counters
            .read()
            .expect("registry lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let durations = self
            .timers
            .read()
            .expect("registry lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.stats()))
            .collect();
        TelemetrySnapshot { counters, durations }
    }
}

/// A name-prefixing view over a shared [`MetricsRegistry`] (see
/// [`MetricsRegistry::scoped`]). Handles resolved through the view are
/// ordinary [`Counter`]s/[`Timer`]s — the prefix is paid once at
/// resolution, never on the hot path.
#[derive(Debug, Clone)]
pub struct ScopedRegistry {
    registry: Arc<MetricsRegistry>,
    prefix: String,
}

impl ScopedRegistry {
    /// The view's prefix.
    pub fn prefix(&self) -> &str {
        &self.prefix
    }

    /// The underlying registry.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    fn qualify(&self, name: &str) -> String {
        format!("{}.{name}", self.prefix)
    }

    /// Resolve the counter `<prefix>.<name>`.
    pub fn counter(&self, name: &str) -> Counter {
        self.registry.counter(&self.qualify(name))
    }

    /// Resolve the duration histogram `<prefix>.<name>`.
    pub fn timer(&self, name: &str) -> Timer {
        self.registry.timer(&self.qualify(name))
    }

    /// Name-based increment of `<prefix>.<name>` (cold-path convenience).
    pub fn add(&self, name: &str, n: u64) {
        self.registry.add(&self.qualify(name), n);
    }

    /// Name-based duration record into `<prefix>.<name>`.
    pub fn record(&self, name: &str, d: Duration) {
        self.registry.record(&self.qualify(name), d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_the_underlying_atomic() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(4);
        assert_eq!(reg.counter("x").get(), 5);
        assert_eq!(reg.snapshot().counter("x"), 5);
    }

    #[test]
    fn bucket_indices_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn timer_records_count_total_max() {
        let reg = MetricsRegistry::new();
        let t = reg.timer("t");
        t.record(Duration::from_micros(10));
        t.record(Duration::from_micros(30));
        let snap = reg.snapshot();
        let d = snap.duration("t").unwrap();
        assert_eq!(d.count, 2);
        assert_eq!(d.total_ns, 40_000);
        assert_eq!(d.max_ns, 30_000);
        assert_eq!(d.mean_ns(), 20_000);
        assert_eq!(d.buckets.iter().map(|(_, v)| v).sum::<u64>(), 2);
    }

    #[test]
    fn snapshot_delta_saturates() {
        let mut later = TelemetrySnapshot::default();
        later.counters.insert("c".into(), 3);
        let mut earlier = TelemetrySnapshot::default();
        earlier.counters.insert("c".into(), 10);
        // A reset between snapshots must never underflow.
        assert_eq!(later.since(&earlier).counter("c"), 0);
        assert_eq!(earlier.since(&later).counter("c"), 7);
    }

    #[test]
    fn snapshot_merge_adds() {
        let reg_a = MetricsRegistry::new();
        reg_a.add("c", 2);
        reg_a.record("t", Duration::from_nanos(100));
        let reg_b = MetricsRegistry::new();
        reg_b.add("c", 3);
        reg_b.record("t", Duration::from_nanos(300));
        let merged = reg_a.snapshot().merged(&reg_b.snapshot());
        assert_eq!(merged.counter("c"), 5);
        let d = merged.duration("t").unwrap();
        assert_eq!(d.count, 2);
        assert_eq!(d.total_ns, 400);
        assert_eq!(d.max_ns, 300);
    }

    #[test]
    fn snapshot_serde_roundtrips() {
        let reg = MetricsRegistry::new();
        reg.add("cache.hits", 7);
        reg.record("span.static_scan", Duration::from_millis(2));
        let snap = reg.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: TelemetrySnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn table_renders_both_sections() {
        let reg = MetricsRegistry::new();
        reg.add("cache.hits", 12);
        reg.record("span.static_scan", Duration::from_millis(3));
        let table = reg.snapshot().to_table();
        assert!(table.contains("span.static_scan"));
        assert!(table.contains("cache.hits"));
        assert!(table.contains("timing"));
        assert!(table.contains("counter"));
        assert!(TelemetrySnapshot::default().to_table().contains("no telemetry"));
    }

    #[test]
    fn scoped_view_prefixes_and_filtered_strips() {
        let reg = Arc::new(MetricsRegistry::new());
        let acme = reg.scoped("tenant.acme");
        let rival = reg.scoped("tenant.rival");
        acme.add("requests", 3);
        acme.record("latency", Duration::from_micros(40));
        rival.add("requests", 1);
        reg.add("queue.depth", 9);

        // Writes through the view land fully qualified in the shared registry.
        let snap = reg.snapshot();
        assert_eq!(snap.counter("tenant.acme.requests"), 3);
        assert_eq!(snap.counter("tenant.rival.requests"), 1);
        assert!(snap.duration("tenant.acme.latency").is_some());

        // filtered() carves one tenant back out, prefix stripped.
        let mine = snap.filtered("tenant.acme");
        assert_eq!(mine.counter("requests"), 3);
        assert_eq!(mine.duration("latency").unwrap().count, 1);
        assert_eq!(mine.counter("queue.depth"), 0, "unrelated names excluded");
        assert!(snap.filtered("tenant.rival").duration("latency").is_none());
        assert!(snap.filtered("tenant.ghost").counters.is_empty());
    }

    #[test]
    fn names_under_enumerates_tenants() {
        let reg = Arc::new(MetricsRegistry::new());
        reg.scoped("tenant.acme").add("requests", 1);
        reg.scoped("tenant.rival").record("latency", Duration::from_micros(5));
        reg.add("tenant.acme.completed", 2);
        reg.add("queue.depth", 1);
        assert_eq!(reg.snapshot().names_under("tenant"), vec!["acme", "rival"]);
        assert!(reg.snapshot().names_under("absent").is_empty());
    }

    #[test]
    fn scoped_handles_are_the_shared_atomics() {
        let reg = Arc::new(MetricsRegistry::new());
        let view = reg.scoped("tenant.t0");
        let c = view.counter("requests");
        c.add(2);
        reg.add("tenant.t0.requests", 1);
        assert_eq!(view.counter("requests").get(), 3);
        assert_eq!(view.prefix(), "tenant.t0");
        assert!(Arc::ptr_eq(view.registry(), &reg));
    }
}
