//! Property tests for the instruction codec: any legal instruction stream
//! roundtrips bit-exactly through every architecture's encoding.

use fwbin::encode::{decode, decode_with_sizes, encode};
use fwbin::isa::{Arch, BinOp, Cond, Inst, Reg, Sym};
use proptest::prelude::*;

fn reg_strategy() -> impl Strategy<Value = Reg> {
    // Physical registers only (encoded code is post-allocation).
    (0u16..32).prop_map(Reg::phys)
}

fn binop_strategy() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Mod),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Xor),
        Just(BinOp::Shl),
        Just(BinOp::Shr),
    ]
}

fn cond_strategy() -> impl Strategy<Value = Cond> {
    prop_oneof![
        Just(Cond::Eq),
        Just(Cond::Ne),
        Just(Cond::Lt),
        Just(Cond::Le),
        Just(Cond::Gt),
        Just(Cond::Ge),
    ]
}

fn sym_strategy() -> impl Strategy<Value = Sym> {
    prop_oneof![
        (0u32..1000).prop_map(Sym::local),
        (0u32..64).prop_map(Sym::import),
    ]
}

fn inst_strategy() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (reg_strategy(), any::<i64>()).prop_map(|(rd, imm)| Inst::MovImm { rd, imm }),
        (reg_strategy(), any::<f64>()).prop_map(|(rd, imm)| Inst::FMovImm { rd, imm }),
        (reg_strategy(), reg_strategy()).prop_map(|(rd, rs)| Inst::Mov { rd, rs }),
        (reg_strategy(), 0u32..10000).prop_map(|(rd, sid)| Inst::LoadStr { rd, sid }),
        (reg_strategy(), 0u32..10000).prop_map(|(rd, gid)| Inst::LoadGlobal { rd, gid }),
        (0u32..10000, reg_strategy()).prop_map(|(gid, rs)| Inst::StoreGlobal { gid, rs }),
        (binop_strategy(), reg_strategy(), reg_strategy(), reg_strategy())
            .prop_map(|(op, rd, rs1, rs2)| Inst::Bin { op, rd, rs1, rs2 }),
        (binop_strategy(), reg_strategy(), reg_strategy(), any::<i64>())
            .prop_map(|(op, rd, rs, imm)| Inst::BinImm { op, rd, rs, imm }),
        (binop_strategy(), reg_strategy(), reg_strategy(), reg_strategy())
            .prop_map(|(op, rd, rs1, rs2)| Inst::FBin { op, rd, rs1, rs2 }),
        (reg_strategy(), reg_strategy(), reg_strategy(), reg_strategy())
            .prop_map(|(rd, rs1, rs2, rs3)| Inst::FMulAdd { rd, rs1, rs2, rs3 }),
        (reg_strategy(), reg_strategy()).prop_map(|(rd, rs)| Inst::Neg { rd, rs }),
        (reg_strategy(), reg_strategy()).prop_map(|(rd, rs)| Inst::Not { rd, rs }),
        (reg_strategy(), reg_strategy()).prop_map(|(rs1, rs2)| Inst::Cmp { rs1, rs2 }),
        (cond_strategy(), reg_strategy()).prop_map(|(cond, rd)| Inst::SetCc { cond, rd }),
        (cond_strategy(), reg_strategy(), reg_strategy(), reg_strategy())
            .prop_map(|(cond, rd, rs1, rs2)| Inst::CmpSet { cond, rd, rs1, rs2 }),
        (reg_strategy(), reg_strategy(), reg_strategy())
            .prop_map(|(rd, base, idx)| Inst::LoadB { rd, base, idx }),
        (reg_strategy(), reg_strategy(), reg_strategy())
            .prop_map(|(rs, base, idx)| Inst::StoreB { rs, base, idx }),
        (reg_strategy(), 0u32..100000).prop_map(|(rd, slot)| Inst::LoadSlot { rd, slot }),
        (reg_strategy(), 0u32..100000).prop_map(|(rs, slot)| Inst::StoreSlot { rs, slot }),
        (0u32..1000000).prop_map(|target| Inst::Jmp { target }),
        (cond_strategy(), 0u32..1000000).prop_map(|(cond, target)| Inst::JCc { cond, target }),
        (cond_strategy(), reg_strategy(), reg_strategy(), 0u32..1000000)
            .prop_map(|(cond, rs1, rs2, target)| Inst::CBr { cond, rs1, rs2, target }),
        reg_strategy().prop_map(|rs| Inst::JmpInd { rs }),
        (any::<u8>(), reg_strategy()).prop_map(|(idx, rs)| Inst::SetArg { idx, rs }),
        (reg_strategy(), any::<u8>()).prop_map(|(rd, idx)| Inst::LoadArg { rd, idx }),
        sym_strategy().prop_map(|sym| Inst::Call { sym }),
        reg_strategy().prop_map(|rd| Inst::GetRet { rd }),
        reg_strategy().prop_map(|rs| Inst::SetRet { rs }),
        Just(Inst::Ret),
        reg_strategy().prop_map(|rs| Inst::Push { rs }),
        reg_strategy().prop_map(|rd| Inst::Pop { rd }),
        (0u32..10000).prop_map(|num| Inst::Syscall { num }),
        Just(Inst::Halt),
        Just(Inst::Nop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Encode/decode is the identity on every architecture, including NaN
    /// float immediates (bit-pattern preserved).
    #[test]
    fn roundtrip_all_archs(code in proptest::collection::vec(inst_strategy(), 0..80)) {
        for arch in Arch::ALL {
            let bytes = encode(&code, arch);
            let back = decode(&bytes, arch).unwrap();
            prop_assert_eq!(back.len(), code.len());
            for (a, b) in code.iter().zip(&back) {
                // Compare through a bit-faithful debug encoding so that
                // NaN != NaN doesn't fail the float-immediate cases.
                match (a, b) {
                    (Inst::FMovImm { rd: r1, imm: i1 }, Inst::FMovImm { rd: r2, imm: i2 }) => {
                        prop_assert_eq!(r1, r2);
                        prop_assert_eq!(i1.to_bits(), i2.to_bits());
                    }
                    _ => prop_assert_eq!(a, b),
                }
            }
        }
    }

    /// Decoded sizes always sum to the stream length, and fixed-width
    /// architectures produce 4-byte-aligned headers.
    #[test]
    fn sizes_partition_the_stream(code in proptest::collection::vec(inst_strategy(), 1..60)) {
        for arch in Arch::ALL {
            let bytes = encode(&code, arch);
            let sized = decode_with_sizes(&bytes, arch).unwrap();
            let total: u32 = sized.iter().map(|(_, s)| *s).sum();
            prop_assert_eq!(total as usize, bytes.len());
            if arch.fixed_width() {
                for (_, s) in &sized {
                    prop_assert_eq!(s % 4, 0, "fixed-width sizes are 4-byte multiples");
                }
            }
        }
    }

    /// Truncating an encoded stream never panics — it reports an error
    /// (or yields a shorter valid prefix for clean cut points).
    #[test]
    fn truncation_is_safe(
        code in proptest::collection::vec(inst_strategy(), 1..20),
        cut in any::<prop::sample::Index>(),
    ) {
        for arch in Arch::ALL {
            let bytes = encode(&code, arch);
            let cut = cut.index(bytes.len());
            let _ = decode(&bytes[..cut], arch); // must not panic
        }
    }

    /// Garbage bytes never panic the decoder.
    #[test]
    fn garbage_is_safe(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        for arch in Arch::ALL {
            let _ = decode(&bytes, arch);
        }
    }
}
