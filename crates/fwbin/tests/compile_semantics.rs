//! End-to-end compiler semantics tests: hand-written programs with known
//! results, compiled at every optimization level, checked instruction-level
//! properties (what each pass is supposed to do to the generated code).

use fwbin::isa::{Arch, Inst, OptLevel};
use fwlang::ast::{BinOp, CmpOp, Expr, Function, Library, Local, Param, Stmt, Ty};

fn lib_with(f: Function) -> Library {
    let mut lib = Library::new("libsem");
    lib.functions.push(f);
    lib
}

fn decode_all(lib: &Library, arch: Arch, opt: OptLevel) -> Vec<Inst> {
    let bin = fwbin::compile_library(lib, arch, opt).unwrap();
    bin.decode_function(0).unwrap()
}

#[test]
fn constant_folding_removes_arithmetic() {
    // return (2 + 3) * 4  ->  O1+ folds to a single constant 20.
    let f = Function {
        name: "k".into(),
        params: vec![],
        locals: vec![],
        ret: Some(Ty::Int),
        body: vec![Stmt::Return(Some(Expr::bin(
            BinOp::Mul,
            Expr::bin(BinOp::Add, Expr::ConstInt(2), Expr::ConstInt(3)),
            Expr::ConstInt(4),
        )))],
        exported: true,
    };
    let lib = lib_with(f);
    let o0 = decode_all(&lib, Arch::Arm64, OptLevel::O0);
    let o1 = decode_all(&lib, Arch::Arm64, OptLevel::O1);
    assert!(o0.iter().any(|i| i.is_arith()), "O0 keeps the arithmetic");
    assert!(!o1.iter().any(|i| i.is_arith()), "O1 folds it away");
    assert!(o1.iter().any(|i| matches!(i, Inst::MovImm { imm: 20, .. })));
}

#[test]
fn dead_branch_eliminated_at_o1() {
    // if (1 < 2) return 10; else return 20;  -> O1 keeps only `return 10`.
    let f = Function {
        name: "d".into(),
        params: vec![],
        locals: vec![],
        ret: Some(Ty::Int),
        body: vec![Stmt::If {
            cond: Expr::cmp(CmpOp::Lt, Expr::ConstInt(1), Expr::ConstInt(2)),
            then_body: vec![Stmt::Return(Some(Expr::ConstInt(10)))],
            else_body: vec![Stmt::Return(Some(Expr::ConstInt(20)))],
        }],
        exported: true,
    };
    let lib = lib_with(f);
    let o1 = decode_all(&lib, Arch::Arm64, OptLevel::O1);
    assert!(!o1.iter().any(|i| matches!(i, Inst::MovImm { imm: 20, .. })), "dead arm gone");
    assert!(!o1.iter().any(|i| i.is_cond_branch()), "no branch remains");
}

#[test]
fn oz_merges_returns() {
    // Two return paths: Oz leaves exactly one Ret.
    let f = Function {
        name: "m".into(),
        params: vec![Param { name: "x".into(), ty: Ty::Int }],
        locals: vec![],
        ret: Some(Ty::Int),
        body: vec![
            Stmt::If {
                cond: Expr::cmp(CmpOp::Gt, Expr::Param(0), Expr::ConstInt(0)),
                then_body: vec![Stmt::Return(Some(Expr::ConstInt(1)))],
                else_body: vec![],
            },
            Stmt::Return(Some(Expr::ConstInt(2))),
        ],
        exported: true,
    };
    let lib = lib_with(f);
    let o2 = decode_all(&lib, Arch::Amd64, OptLevel::O2);
    let oz = decode_all(&lib, Arch::Amd64, OptLevel::Oz);
    let rets = |c: &[Inst]| c.iter().filter(|i| matches!(i, Inst::Ret)).count();
    assert!(rets(&o2) >= 2, "O2 keeps both returns");
    assert_eq!(rets(&oz), 1, "Oz merges to a single return");
}

#[test]
fn unrolling_duplicates_loop_body_at_o3() {
    // A counted loop whose body has a distinctive marker (xor with 0x5a).
    let f = Function {
        name: "u".into(),
        params: vec![Param { name: "n".into(), ty: Ty::Int }],
        locals: vec![
            Local { name: "i".into(), ty: Ty::Int },
            Local { name: "acc".into(), ty: Ty::Int },
        ],
        ret: Some(Ty::Int),
        body: vec![
            Stmt::For {
                var: 0,
                start: Expr::ConstInt(0),
                end: Expr::Param(0),
                step: Expr::ConstInt(1),
                body: vec![Stmt::Let {
                    local: 1,
                    value: Expr::bin(BinOp::Xor, Expr::Local(1), Expr::ConstInt(0x5a)),
                }],
            },
            Stmt::Return(Some(Expr::Local(1))),
        ],
        exported: true,
    };
    let lib = lib_with(f);
    let count_marker = |c: &[Inst]| {
        c.iter()
            .filter(|i| matches!(i, Inst::BinImm { op: BinOp::Xor, imm: 0x5a, .. }))
            .count()
    };
    let o2 = decode_all(&lib, Arch::Arm64, OptLevel::O2);
    let o3 = decode_all(&lib, Arch::Arm64, OptLevel::O3);
    assert_eq!(count_marker(&o2), 1, "O2 keeps one body copy");
    assert!(count_marker(&o3) >= 3, "O3 unrolls (2 copies + remainder), got {}", count_marker(&o3));
}

#[test]
fn syscall_and_abort_lower_directly() {
    let f = Function {
        name: "s".into(),
        params: vec![Param { name: "x".into(), ty: Ty::Int }],
        locals: vec![],
        ret: None,
        body: vec![
            Stmt::Syscall { num: 7, args: vec![Expr::Param(0)] },
            Stmt::Abort,
        ],
        exported: true,
    };
    let lib = lib_with(f);
    for arch in Arch::ALL {
        let code = decode_all(&lib, arch, OptLevel::O2);
        assert!(code.iter().any(|i| matches!(i, Inst::Syscall { num: 7 })), "{arch}");
        assert!(code.iter().any(|i| matches!(i, Inst::Halt)), "{arch}");
        assert!(code.iter().any(|i| matches!(i, Inst::SetArg { idx: 0, .. })), "{arch}");
    }
}

#[test]
fn globals_and_strings_reference_tables() {
    let mut lib = Library::new("libsem");
    let g = lib.add_global("counter", 5);
    let sid = lib.intern_string("marker");
    lib.functions.push(Function {
        name: "g".into(),
        params: vec![],
        locals: vec![],
        ret: Some(Ty::Int),
        body: vec![
            Stmt::SetGlobal {
                global: g,
                value: Expr::bin(BinOp::Add, Expr::Global(g), Expr::ConstInt(1)),
            },
            Stmt::Expr(Expr::Call {
                callee: "log_event".into(),
                args: vec![Expr::Str(sid), Expr::Global(g)],
            }),
            Stmt::Return(Some(Expr::Global(g))),
        ],
        exported: true,
    });
    let bin = fwbin::compile_library(&lib, Arch::X86, OptLevel::O1).unwrap();
    assert_eq!(bin.globals, vec![5]);
    assert_eq!(bin.strings, vec!["marker".to_string()]);
    assert!(bin.imports.contains(&"log_event".to_string()));
    let code = bin.decode_function(0).unwrap();
    assert!(code.iter().any(|i| matches!(i, Inst::LoadGlobal { gid: 0, .. })));
    assert!(code.iter().any(|i| matches!(i, Inst::StoreGlobal { gid: 0, .. })));
    assert!(code.iter().any(|i| matches!(i, Inst::LoadStr { sid: 0, .. })));
}

#[test]
fn o0_frame_slots_match_local_count() {
    let f = Function {
        name: "l".into(),
        params: vec![],
        locals: vec![
            Local { name: "a".into(), ty: Ty::Int },
            Local { name: "b".into(), ty: Ty::Int },
            Local { name: "c".into(), ty: Ty::Float },
        ],
        ret: Some(Ty::Int),
        body: vec![
            Stmt::Let { local: 0, value: Expr::ConstInt(1) },
            Stmt::Let { local: 1, value: Expr::ConstInt(2) },
            Stmt::Let { local: 2, value: Expr::ConstFloat(3.0) },
            Stmt::Return(Some(Expr::bin(BinOp::Add, Expr::Local(0), Expr::Local(1)))),
        ],
        exported: true,
    };
    let lib = lib_with(f);
    let bin = fwbin::compile_library(&lib, Arch::Arm64, OptLevel::O0).unwrap();
    assert!(bin.functions[0].frame_slots >= 3, "each local gets a slot at O0");
    let bin1 = fwbin::compile_library(&lib, Arch::Arm64, OptLevel::O1).unwrap();
    assert_eq!(bin1.functions[0].frame_slots, 0, "O1 keeps locals in registers");
}

#[test]
fn inlining_removes_call_at_o3() {
    let mut lib = Library::new("libsem");
    lib.functions.push(Function {
        name: "helper".into(),
        params: vec![Param { name: "a".into(), ty: Ty::Int }],
        locals: vec![],
        ret: Some(Ty::Int),
        body: vec![Stmt::Return(Some(Expr::bin(BinOp::Mul, Expr::Param(0), Expr::ConstInt(3))))],
        exported: false,
    });
    lib.functions.push(Function {
        name: "caller".into(),
        params: vec![Param { name: "x".into(), ty: Ty::Int }],
        locals: vec![Local { name: "r".into(), ty: Ty::Int }],
        ret: Some(Ty::Int),
        body: vec![
            Stmt::Let {
                local: 0,
                value: Expr::Call { callee: "helper".into(), args: vec![Expr::Param(0)] },
            },
            Stmt::Return(Some(Expr::Local(0))),
        ],
        exported: true,
    });
    let o2 = fwbin::compile_library(&lib, Arch::Arm64, OptLevel::O2).unwrap();
    let o3 = fwbin::compile_library(&lib, Arch::Arm64, OptLevel::O3).unwrap();
    let calls = |b: &fwbin::Binary| {
        b.decode_function(1)
            .unwrap()
            .iter()
            .filter(|i| matches!(i, Inst::Call { .. }))
            .count()
    };
    assert_eq!(calls(&o2), 1, "O2 keeps the call");
    assert_eq!(calls(&o3), 0, "O3 inlines the small helper");
}

#[test]
fn two_operand_invariant_on_cisc_archs() {
    // Every compiled generated function respects rd == rs1 on x86/amd64.
    let lib = fwlang::gen::Generator::new(88).library_sized("libsem", 10);
    for arch in [Arch::X86, Arch::Amd64] {
        let bin = fwbin::compile_library(&lib, arch, OptLevel::O2).unwrap();
        for i in 0..bin.function_count() {
            for inst in bin.decode_function(i).unwrap() {
                if let Inst::Bin { rd, rs1, .. } = inst {
                    assert_eq!(rd, rs1, "{arch} fn {i}");
                }
                if let Inst::CBr { .. } | Inst::CmpSet { .. } = inst {
                    panic!("{arch} must not contain fused compare forms");
                }
            }
        }
    }
}

#[test]
fn float_pipeline_produces_fp_instructions() {
    let f = Function {
        name: "fp".into(),
        params: vec![],
        locals: vec![Local { name: "x".into(), ty: Ty::Float }],
        ret: Some(Ty::Float),
        body: vec![
            Stmt::Let {
                local: 0,
                value: Expr::FBin(
                    BinOp::Div,
                    Box::new(Expr::ConstFloat(10.0)),
                    Box::new(Expr::ConstFloat(4.0)),
                ),
            },
            Stmt::Return(Some(Expr::Local(0))),
        ],
        exported: true,
    };
    let lib = lib_with(f);
    // O0 keeps the FBin; O1 folds float constants.
    let o0 = decode_all(&lib, Arch::Arm32, OptLevel::O0);
    assert!(o0.iter().any(|i| i.is_arith_fp()));
    let o1 = decode_all(&lib, Arch::Arm32, OptLevel::O1);
    assert!(o1.iter().any(|i| matches!(i, Inst::FMovImm { imm, .. } if (imm - 2.5).abs() < 1e-12)));
}
