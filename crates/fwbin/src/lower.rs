//! Lowering from the `fwlang` AST to the linear instruction IR.
//!
//! Lowering produces virtual-register code with `Label` pseudo-instructions;
//! [`resolve_labels`] then rewrites branch targets to instruction indices.
//! At `O0` locals live in stack slots (every read is a `LoadSlot`, every
//! write a `StoreSlot`), reproducing the bloated unoptimized code real
//! compilers emit; at `O1+` locals live in dedicated virtual registers and
//! the register allocator decides what spills.

use crate::astopt;
use crate::isa::{Cond, Inst, OptLevel, Reg, Sym};
use fwlang::ast::{is_library_routine, Expr, Function, Library, Stmt};
use std::collections::HashMap;

/// Metadata produced alongside the lowered code.
#[derive(Debug, Clone)]
pub struct LowerOutput {
    /// Lowered instructions (virtual registers, labels resolved).
    pub code: Vec<Inst>,
    /// Number of 8-byte stack slots the frame needs (locals at `O0` plus
    /// any spills added later by register allocation).
    pub frame_slots: u32,
    /// Number of virtual registers used.
    pub vreg_count: u16,
}

/// Storage assigned to a source local.
#[derive(Debug, Clone, Copy)]
enum LocalPlace {
    Slot(u32),
    Vreg(Reg),
}

struct Lowerer<'a> {
    lib: &'a Library,
    opt: OptLevel,
    imports: &'a mut Vec<String>,
    fn_index: &'a HashMap<String, u32>,
    code: Vec<Inst>,
    next_vreg: u16,
    next_label: u32,
    locals: Vec<LocalPlace>,
    params: Vec<Reg>,
    frame_slots: u32,
    /// (continue_label, break_label) stack.
    loops: Vec<(u32, u32)>,
}

impl<'a> Lowerer<'a> {
    fn vreg(&mut self) -> Reg {
        let r = Reg::virt(self.next_vreg);
        self.next_vreg += 1;
        r
    }

    fn label(&mut self) -> u32 {
        let l = self.next_label;
        self.next_label += 1;
        l
    }

    fn emit(&mut self, i: Inst) {
        self.code.push(i);
    }

    fn sym_for(&mut self, callee: &str) -> Sym {
        if let Some(&idx) = self.fn_index.get(callee) {
            return Sym::local(idx);
        }
        debug_assert!(
            is_library_routine(callee),
            "unknown callee {callee}: not in library and not a library routine"
        );
        if let Some(i) = self.imports.iter().position(|n| n == callee) {
            Sym::import(i as u32)
        } else {
            self.imports.push(callee.to_string());
            Sym::import((self.imports.len() - 1) as u32)
        }
    }

    // ---- expressions ----------------------------------------------------

    fn lower_expr(&mut self, e: &Expr) -> Reg {
        match e {
            Expr::ConstInt(v) => {
                let rd = self.vreg();
                self.emit(Inst::MovImm { rd, imm: *v });
                rd
            }
            Expr::ConstFloat(v) => {
                let rd = self.vreg();
                self.emit(Inst::FMovImm { rd, imm: *v });
                rd
            }
            Expr::Str(sid) => {
                let rd = self.vreg();
                self.emit(Inst::LoadStr { rd, sid: *sid });
                rd
            }
            Expr::Local(l) => match self.locals[*l as usize] {
                LocalPlace::Slot(slot) => {
                    let rd = self.vreg();
                    self.emit(Inst::LoadSlot { rd, slot });
                    rd
                }
                LocalPlace::Vreg(r) => r,
            },
            Expr::Param(p) => self.params[*p as usize],
            Expr::Global(g) => {
                let rd = self.vreg();
                self.emit(Inst::LoadGlobal { rd, gid: *g });
                rd
            }
            Expr::Bin(op, a, b) => {
                // Immediate-form when the rhs is a constant (cheaper
                // encodings; the peephole pass also creates these at O2).
                if let Expr::ConstInt(imm) = b.as_ref() {
                    let rs = self.lower_expr(a);
                    let rd = self.vreg();
                    self.emit(Inst::BinImm { op: *op, rd, rs, imm: *imm });
                    return rd;
                }
                let rs1 = self.lower_expr(a);
                let rs2 = self.lower_expr(b);
                let rd = self.vreg();
                self.emit(Inst::Bin { op: *op, rd, rs1, rs2 });
                rd
            }
            Expr::FBin(..) => self.lower_float(e),
            Expr::Cmp(op, a, b) => {
                let rs1 = self.lower_expr(a);
                let rs2 = self.lower_expr(b);
                let rd = self.vreg();
                self.emit(Inst::CmpSet { cond: Cond::from(*op), rd, rs1, rs2 });
                rd
            }
            Expr::Not(a) => {
                let rs = self.lower_expr(a);
                let rd = self.vreg();
                self.emit(Inst::Not { rd, rs });
                rd
            }
            Expr::Neg(a) => {
                let rs = self.lower_expr(a);
                let rd = self.vreg();
                self.emit(Inst::Neg { rd, rs });
                rd
            }
            Expr::LoadByte { base, index } => {
                let b = self.lower_expr(base);
                let i = self.lower_expr(index);
                let rd = self.vreg();
                self.emit(Inst::LoadB { rd, base: b, idx: i });
                rd
            }
            Expr::Call { callee, args } => {
                let mut arg_regs = Vec::with_capacity(args.len());
                for a in args {
                    arg_regs.push(self.lower_expr(a));
                }
                for (i, r) in arg_regs.into_iter().enumerate() {
                    self.emit(Inst::SetArg { idx: i as u8, rs: r });
                }
                let sym = self.sym_for(callee);
                self.emit(Inst::Call { sym });
                let rd = self.vreg();
                self.emit(Inst::GetRet { rd });
                rd
            }
        }
    }

    fn lower_float(&mut self, e: &Expr) -> Reg {
        // Ofast: contract (a *f b) +f c into a fused multiply-add.
        if self.opt == OptLevel::Ofast {
            if let Some((a, b, c)) = astopt::has_fmuladd_shape(e) {
                let ra = self.lower_expr(a);
                let rb = self.lower_expr(b);
                let rc = self.lower_expr(c);
                let rd = self.vreg();
                self.emit(Inst::FMulAdd { rd, rs1: ra, rs2: rb, rs3: rc });
                return rd;
            }
        }
        match e {
            Expr::FBin(op, a, b) => {
                let rs1 = self.lower_expr(a);
                let rs2 = self.lower_expr(b);
                let rd = self.vreg();
                self.emit(Inst::FBin { op: *op, rd, rs1, rs2 });
                rd
            }
            _ => unreachable!("lower_float called on non-float expr"),
        }
    }

    /// Branch to `target` when `cond` evaluates truthy (`branch_if=true`)
    /// or falsy (`branch_if=false`). Emits fused `CBr`; the legalizer
    /// splits it into `Cmp`+`JCc` on flag architectures.
    fn lower_cond_branch(&mut self, cond: &Expr, target: u32, branch_if: bool) {
        if let Expr::Cmp(op, a, b) = cond {
            let rs1 = self.lower_expr(a);
            let rs2 = self.lower_expr(b);
            let mut c = Cond::from(*op);
            if !branch_if {
                c = c.negate();
            }
            self.emit(Inst::CBr { cond: c, rs1, rs2, target });
            return;
        }
        let v = self.lower_expr(cond);
        let z = self.vreg();
        self.emit(Inst::MovImm { rd: z, imm: 0 });
        let c = if branch_if { Cond::Ne } else { Cond::Eq };
        self.emit(Inst::CBr { cond: c, rs1: v, rs2: z, target });
    }

    fn write_local(&mut self, local: u32, value: Reg) {
        match self.locals[local as usize] {
            LocalPlace::Slot(slot) => self.emit(Inst::StoreSlot { rs: value, slot }),
            LocalPlace::Vreg(r) => {
                if r != value {
                    self.emit(Inst::Mov { rd: r, rs: value });
                }
            }
        }
    }

    // ---- statements ------------------------------------------------------

    fn lower_stmts(&mut self, stmts: &[Stmt]) {
        for s in stmts {
            self.lower_stmt(s);
        }
    }

    fn lower_stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Let { local, value } => {
                let v = self.lower_expr(value);
                self.write_local(*local, v);
            }
            Stmt::SetGlobal { global, value } => {
                let v = self.lower_expr(value);
                self.emit(Inst::StoreGlobal { gid: *global, rs: v });
            }
            Stmt::StoreByte { base, index, value } => {
                let b = self.lower_expr(base);
                let i = self.lower_expr(index);
                let v = self.lower_expr(value);
                self.emit(Inst::StoreB { rs: v, base: b, idx: i });
            }
            Stmt::If { cond, then_body, else_body } => {
                if else_body.is_empty() {
                    let end = self.label();
                    self.lower_cond_branch(cond, end, false);
                    self.lower_stmts(then_body);
                    self.emit(Inst::Label(end));
                } else {
                    let els = self.label();
                    let end = self.label();
                    self.lower_cond_branch(cond, els, false);
                    self.lower_stmts(then_body);
                    self.emit(Inst::Jmp { target: end });
                    self.emit(Inst::Label(els));
                    self.lower_stmts(else_body);
                    self.emit(Inst::Label(end));
                }
            }
            Stmt::While { cond, body } => {
                let head = self.label();
                let exit = self.label();
                self.emit(Inst::Label(head));
                self.lower_cond_branch(cond, exit, false);
                self.loops.push((head, exit));
                self.lower_stmts(body);
                self.loops.pop();
                self.emit(Inst::Jmp { target: head });
                self.emit(Inst::Label(exit));
            }
            Stmt::For { var, start, end, step, body } => {
                let head = self.label();
                let inc = self.label();
                let exit = self.label();
                let sv = self.lower_expr(start);
                self.write_local(*var, sv);
                self.emit(Inst::Label(head));
                let cond = Expr::Cmp(
                    fwlang::ast::CmpOp::Lt,
                    Box::new(Expr::Local(*var)),
                    Box::new(end.clone()),
                );
                self.lower_cond_branch(&cond, exit, false);
                self.loops.push((inc, exit));
                self.lower_stmts(body);
                self.loops.pop();
                self.emit(Inst::Label(inc));
                let bumped = Expr::Bin(
                    fwlang::ast::BinOp::Add,
                    Box::new(Expr::Local(*var)),
                    Box::new(step.clone()),
                );
                let v = self.lower_expr(&bumped);
                self.write_local(*var, v);
                self.emit(Inst::Jmp { target: head });
                self.emit(Inst::Label(exit));
            }
            Stmt::Expr(e) => {
                let _ = self.lower_expr(e);
            }
            Stmt::Return(v) => {
                if let Some(e) = v {
                    let r = self.lower_expr(e);
                    self.emit(Inst::SetRet { rs: r });
                }
                self.emit(Inst::Ret);
            }
            Stmt::Break => {
                let (_, exit) = *self.loops.last().expect("break outside loop");
                self.emit(Inst::Jmp { target: exit });
            }
            Stmt::Continue => {
                let (cont, _) = *self.loops.last().expect("continue outside loop");
                self.emit(Inst::Jmp { target: cont });
            }
            Stmt::Syscall { num, args } => {
                let mut arg_regs = Vec::with_capacity(args.len());
                for a in args {
                    arg_regs.push(self.lower_expr(a));
                }
                for (i, r) in arg_regs.into_iter().enumerate() {
                    self.emit(Inst::SetArg { idx: i as u8, rs: r });
                }
                self.emit(Inst::Syscall { num: *num });
            }
            Stmt::Abort => self.emit(Inst::Halt),
        }
    }
}

/// Lower one function of `lib` to labeled virtual-register IR, appending any
/// newly referenced library routines to `imports`. `fn_index` maps function
/// names of the containing binary to their function-table indices.
pub fn lower_function(
    lib: &Library,
    func: &Function,
    opt: OptLevel,
    imports: &mut Vec<String>,
    fn_index: &HashMap<String, u32>,
) -> LowerOutput {
    let locals_in_slots = opt == OptLevel::O0;
    let mut l = Lowerer {
        lib,
        opt,
        imports,
        fn_index,
        code: Vec::new(),
        next_vreg: 0,
        next_label: 0,
        locals: Vec::new(),
        params: Vec::new(),
        frame_slots: 0,
        loops: Vec::new(),
    };
    let _ = l.lib;

    // Prologue: materialize parameters into virtual registers.
    for (i, _) in func.params.iter().enumerate() {
        let r = l.vreg();
        l.code.push(Inst::LoadArg { rd: r, idx: i as u8 });
        l.params.push(r);
    }
    // Assign storage for locals.
    for _ in &func.locals {
        if locals_in_slots {
            let slot = l.frame_slots;
            l.frame_slots += 1;
            l.locals.push(LocalPlace::Slot(slot));
        } else {
            let r = l.vreg();
            // Initialize to zero so reads before writes are defined.
            l.code.push(Inst::MovImm { rd: r, imm: 0 });
            l.locals.push(LocalPlace::Vreg(r));
        }
    }
    if locals_in_slots {
        // Zero-initialize slots.
        let z = l.vreg();
        l.code.push(Inst::MovImm { rd: z, imm: 0 });
        for slot in 0..l.frame_slots {
            l.code.push(Inst::StoreSlot { rs: z, slot });
        }
    }

    l.lower_stmts(&func.body);
    // Guarantee the function cannot fall off the end and that trailing
    // labels have a landing instruction.
    l.emit(Inst::Ret);

    let code = resolve_labels(l.code);
    LowerOutput { code, frame_slots: l.frame_slots, vreg_count: l.next_vreg }
}

/// Remove `Label` pseudo-instructions, rewriting branch targets from label
/// ids to instruction indices.
///
/// # Panics
/// Panics if a branch references an undefined label.
pub fn resolve_labels(code: Vec<Inst>) -> Vec<Inst> {
    let mut positions: HashMap<u32, u32> = HashMap::new();
    let mut idx = 0u32;
    for inst in &code {
        if let Inst::Label(l) = inst {
            positions.insert(*l, idx);
        } else {
            idx += 1;
        }
    }
    let mut out = Vec::with_capacity(idx as usize);
    for mut inst in code {
        if matches!(inst, Inst::Label(_)) {
            continue;
        }
        if let Some(t) = inst.target() {
            let pos = *positions.get(&t).expect("branch to undefined label");
            inst.set_target(pos);
        }
        out.push(inst);
    }
    debug_assert!(
        out.iter().all(|i| i.target().map(|t| (t as usize) < out.len()).unwrap_or(true)),
        "branch target out of range after label resolution"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fwlang::ast::{CmpOp, Local, Param, Ty};
    use fwlang::gen::Generator;

    fn lower_simple(func: &Function, opt: OptLevel) -> LowerOutput {
        let lib = Library::new("lib");
        let mut imports = Vec::new();
        let fn_index = HashMap::new();
        lower_function(&lib, func, opt, &mut imports, &fn_index)
    }

    fn demo_fn() -> Function {
        Function {
            name: "demo".into(),
            params: vec![
                Param { name: "data".into(), ty: Ty::Buf },
                Param { name: "len".into(), ty: Ty::Int },
            ],
            locals: vec![
                Local { name: "i".into(), ty: Ty::Int },
                Local { name: "acc".into(), ty: Ty::Int },
            ],
            ret: Some(Ty::Int),
            body: vec![
                Stmt::For {
                    var: 0,
                    start: Expr::ConstInt(0),
                    end: Expr::Param(1),
                    step: Expr::ConstInt(1),
                    body: vec![Stmt::Let {
                        local: 1,
                        value: Expr::bin(
                            fwlang::ast::BinOp::Add,
                            Expr::Local(1),
                            Expr::load(Expr::Param(0), Expr::Local(0)),
                        ),
                    }],
                },
                Stmt::Return(Some(Expr::Local(1))),
            ],
            exported: true,
        }
    }

    #[test]
    fn lowering_ends_with_ret_and_no_labels() {
        let out = lower_simple(&demo_fn(), OptLevel::O1);
        assert!(matches!(out.code.last(), Some(Inst::Ret)));
        assert!(!out.code.iter().any(|i| matches!(i, Inst::Label(_))));
    }

    #[test]
    fn branch_targets_in_range() {
        let out = lower_simple(&demo_fn(), OptLevel::O1);
        for i in &out.code {
            if let Some(t) = i.target() {
                assert!((t as usize) < out.code.len());
            }
        }
    }

    #[test]
    fn o0_uses_slots_o1_uses_vregs() {
        let o0 = lower_simple(&demo_fn(), OptLevel::O0);
        let o1 = lower_simple(&demo_fn(), OptLevel::O1);
        assert!(o0.frame_slots >= 2, "O0 places both locals in slots");
        assert_eq!(o1.frame_slots, 0, "O1 keeps locals in registers");
        assert!(o0.code.iter().any(|i| matches!(i, Inst::LoadSlot { .. })));
        assert!(!o1.code.iter().any(|i| matches!(i, Inst::LoadSlot { .. })));
        assert!(o0.code.len() > o1.code.len(), "O0 code is bulkier");
    }

    #[test]
    fn call_lowers_to_setarg_call_getret() {
        let f = Function {
            name: "caller".into(),
            params: vec![
                Param { name: "data".into(), ty: Ty::Buf },
                Param { name: "len".into(), ty: Ty::Int },
            ],
            locals: vec![Local { name: "r".into(), ty: Ty::Int }],
            ret: Some(Ty::Int),
            body: vec![
                Stmt::Let {
                    local: 0,
                    value: Expr::Call {
                        callee: "checksum".into(),
                        args: vec![Expr::Param(0), Expr::Param(1)],
                    },
                },
                Stmt::Return(Some(Expr::Local(0))),
            ],
            exported: true,
        };
        let lib = Library::new("lib");
        let mut imports = Vec::new();
        let out = lower_function(&lib, &f, OptLevel::O1, &mut imports, &HashMap::new());
        assert_eq!(imports, vec!["checksum".to_string()]);
        let setargs = out.code.iter().filter(|i| matches!(i, Inst::SetArg { .. })).count();
        assert_eq!(setargs, 2);
        assert!(out.code.iter().any(|i| matches!(i, Inst::Call { sym } if sym.is_import())));
        assert!(out.code.iter().any(|i| matches!(i, Inst::GetRet { .. })));
    }

    #[test]
    fn local_calls_resolve_to_function_index() {
        let mut fn_index = HashMap::new();
        fn_index.insert("target".to_string(), 5u32);
        let f = Function {
            name: "caller".into(),
            params: vec![],
            locals: vec![],
            ret: None,
            body: vec![Stmt::Expr(Expr::Call { callee: "target".into(), args: vec![] })],
            exported: true,
        };
        let lib = Library::new("lib");
        let mut imports = Vec::new();
        let out = lower_function(&lib, &f, OptLevel::O1, &mut imports, &fn_index);
        assert!(imports.is_empty());
        assert!(out
            .code
            .iter()
            .any(|i| matches!(i, Inst::Call { sym } if !sym.is_import() && sym.index() == 5)));
    }

    #[test]
    fn break_and_continue_lower_to_jumps() {
        let f = Function {
            name: "f".into(),
            params: vec![Param { name: "n".into(), ty: Ty::Int }],
            locals: vec![Local { name: "i".into(), ty: Ty::Int }],
            ret: None,
            body: vec![Stmt::For {
                var: 0,
                start: Expr::ConstInt(0),
                end: Expr::Param(0),
                step: Expr::ConstInt(1),
                body: vec![Stmt::If {
                    cond: Expr::cmp(CmpOp::Gt, Expr::Local(0), Expr::ConstInt(3)),
                    then_body: vec![Stmt::Break],
                    else_body: vec![Stmt::Continue],
                }],
            }],
            exported: true,
        };
        let out = lower_simple(&f, OptLevel::O1);
        let jumps = out.code.iter().filter(|i| matches!(i, Inst::Jmp { .. })).count();
        assert!(jumps >= 3, "loop backedge + break + continue, got {jumps}");
    }

    #[test]
    fn generated_corpus_lowers_cleanly() {
        let lib = Generator::new(123).library_sized("lib", 30);
        let mut fn_index = HashMap::new();
        for (i, f) in lib.functions.iter().enumerate() {
            fn_index.insert(f.name.clone(), i as u32);
        }
        let mut imports = Vec::new();
        for f in &lib.functions {
            for opt in OptLevel::ALL {
                let out = lower_function(&lib, f, opt, &mut imports, &fn_index);
                assert!(!out.code.is_empty());
                assert!(matches!(out.code.last(), Some(Inst::Ret)));
            }
        }
    }

    #[test]
    fn ofast_emits_fused_multiply_add() {
        let f = Function {
            name: "fma".into(),
            params: vec![],
            locals: vec![Local { name: "x".into(), ty: Ty::Float }],
            ret: Some(Ty::Float),
            body: vec![
                Stmt::Let {
                    local: 0,
                    value: Expr::FBin(
                        fwlang::ast::BinOp::Add,
                        Box::new(Expr::FBin(
                            fwlang::ast::BinOp::Mul,
                            Box::new(Expr::ConstFloat(2.0)),
                            Box::new(Expr::ConstFloat(3.0)),
                        )),
                        Box::new(Expr::ConstFloat(4.0)),
                    ),
                },
                Stmt::Return(Some(Expr::Local(0))),
            ],
            exported: true,
        };
        let fast = lower_simple(&f, OptLevel::Ofast);
        assert!(fast.code.iter().any(|i| matches!(i, Inst::FMulAdd { .. })));
        let o3 = lower_simple(&f, OptLevel::O3);
        assert!(!o3.code.iter().any(|i| matches!(i, Inst::FMulAdd { .. })));
    }
}
