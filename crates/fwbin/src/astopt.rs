//! AST-level optimization passes: constant folding, inlining of small
//! callees, and loop unrolling. These run before lowering, so higher
//! optimization levels produce genuinely different instruction streams for
//! the same source — the cross-platform variation PATCHECKO's deep-learning
//! stage must be robust to.

use fwlang::ast::{BinOp, CmpOp, Expr, Function, Library, LocalId, Stmt};
use fwlang::visit;

/// Wrapping integer semantics shared with the VM: these MUST match
/// `vm::exec` so that optimization is behaviour-preserving.
pub fn eval_int_binop(op: BinOp, a: i64, b: i64) -> Option<i64> {
    Some(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                return None; // would fault; leave to runtime
            }
            a.wrapping_div(b)
        }
        BinOp::Mod => {
            if b == 0 {
                return None;
            }
            a.wrapping_rem(b)
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl((b & 63) as u32),
        BinOp::Shr => a.wrapping_shr((b & 63) as u32),
    })
}

/// Comparison semantics shared with the VM.
pub fn eval_cmp(op: CmpOp, a: i64, b: i64) -> i64 {
    let r = match op {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
    };
    r as i64
}

/// Float binary-op semantics shared with the VM.
pub fn eval_float_binop(op: BinOp, a: f64, b: f64) -> Option<f64> {
    Some(match op {
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::Mul => a * b,
        BinOp::Div => a / b,
        _ => return None,
    })
}

/// Fold constant sub-expressions in place. Returns the folded expression.
pub fn fold_expr(e: &Expr) -> Expr {
    match e {
        Expr::Bin(op, a, b) => {
            let fa = fold_expr(a);
            let fb = fold_expr(b);
            if let (Expr::ConstInt(x), Expr::ConstInt(y)) = (&fa, &fb) {
                if let Some(v) = eval_int_binop(*op, *x, *y) {
                    return Expr::ConstInt(v);
                }
            }
            // Algebraic identities: x+0, x-0, x*1, x*0, x|0, x^0, x<<0.
            if let Expr::ConstInt(y) = fb {
                match (op, y) {
                    (BinOp::Add | BinOp::Sub | BinOp::Or | BinOp::Xor | BinOp::Shl | BinOp::Shr, 0) => {
                        return fa
                    }
                    (BinOp::Mul | BinOp::Div, 1) => return fa,
                    (BinOp::Mul | BinOp::And, 0) => return Expr::ConstInt(0),
                    _ => {}
                }
            }
            Expr::Bin(*op, Box::new(fa), Box::new(fb))
        }
        Expr::FBin(op, a, b) => {
            let fa = fold_expr(a);
            let fb = fold_expr(b);
            if let (Expr::ConstFloat(x), Expr::ConstFloat(y)) = (&fa, &fb) {
                if let Some(v) = eval_float_binop(*op, *x, *y) {
                    return Expr::ConstFloat(v);
                }
            }
            Expr::FBin(*op, Box::new(fa), Box::new(fb))
        }
        Expr::Cmp(op, a, b) => {
            let fa = fold_expr(a);
            let fb = fold_expr(b);
            if let (Expr::ConstInt(x), Expr::ConstInt(y)) = (&fa, &fb) {
                return Expr::ConstInt(eval_cmp(*op, *x, *y));
            }
            Expr::Cmp(*op, Box::new(fa), Box::new(fb))
        }
        Expr::Not(a) => {
            let fa = fold_expr(a);
            if let Expr::ConstInt(x) = fa {
                return Expr::ConstInt((x == 0) as i64);
            }
            Expr::Not(Box::new(fa))
        }
        Expr::Neg(a) => {
            let fa = fold_expr(a);
            if let Expr::ConstInt(x) = fa {
                return Expr::ConstInt(x.wrapping_neg());
            }
            Expr::Neg(Box::new(fa))
        }
        Expr::LoadByte { base, index } => Expr::LoadByte {
            base: Box::new(fold_expr(base)),
            index: Box::new(fold_expr(index)),
        },
        Expr::Call { callee, args } => Expr::Call {
            callee: callee.clone(),
            args: args.iter().map(fold_expr).collect(),
        },
        other => other.clone(),
    }
}

fn fold_stmts(stmts: &[Stmt]) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(stmts.len());
    for s in stmts {
        match s {
            Stmt::Let { local, value } => {
                out.push(Stmt::Let { local: *local, value: fold_expr(value) })
            }
            Stmt::SetGlobal { global, value } => {
                out.push(Stmt::SetGlobal { global: *global, value: fold_expr(value) })
            }
            Stmt::StoreByte { base, index, value } => out.push(Stmt::StoreByte {
                base: fold_expr(base),
                index: fold_expr(index),
                value: fold_expr(value),
            }),
            Stmt::If { cond, then_body, else_body } => {
                let fc = fold_expr(cond);
                // Statically decided conditionals become one arm.
                if let Expr::ConstInt(v) = fc {
                    let arm = if v != 0 { then_body } else { else_body };
                    out.extend(fold_stmts(arm));
                } else {
                    out.push(Stmt::If {
                        cond: fc,
                        then_body: fold_stmts(then_body),
                        else_body: fold_stmts(else_body),
                    });
                }
            }
            Stmt::While { cond, body } => {
                let fc = fold_expr(cond);
                if matches!(fc, Expr::ConstInt(0)) {
                    continue; // dead loop
                }
                out.push(Stmt::While { cond: fc, body: fold_stmts(body) });
            }
            Stmt::For { var, start, end, step, body } => out.push(Stmt::For {
                var: *var,
                start: fold_expr(start),
                end: fold_expr(end),
                step: fold_expr(step),
                body: fold_stmts(body),
            }),
            Stmt::Expr(e) => out.push(Stmt::Expr(fold_expr(e))),
            Stmt::Return(Some(e)) => out.push(Stmt::Return(Some(fold_expr(e)))),
            Stmt::Syscall { num, args } => out.push(Stmt::Syscall {
                num: *num,
                args: args.iter().map(fold_expr).collect(),
            }),
            other => out.push(other.clone()),
        }
    }
    out
}

/// Constant-fold a whole function.
pub fn constant_fold(func: &Function) -> Function {
    let mut out = func.clone();
    out.body = fold_stmts(&func.body);
    out
}

// ---------------------------------------------------------------------------
// Inlining
// ---------------------------------------------------------------------------

/// Maximum statement count for an inlinable callee.
const INLINE_STMT_LIMIT: usize = 6;

/// Whether `callee` is simple enough to inline: small, loop-free, and with a
/// single trailing `Return` (no early exits, so splicing is a pure
/// substitution).
fn inlinable(callee: &Function) -> bool {
    if visit::stmt_count(callee) > INLINE_STMT_LIMIT || visit::loop_count(callee) > 0 {
        return false;
    }
    let mut returns = 0usize;
    visit::walk_stmts(&callee.body, &mut |s| {
        if matches!(s, Stmt::Return(_)) {
            returns += 1;
        }
    });
    returns == 1 && matches!(callee.body.last(), Some(Stmt::Return(_)))
}

fn substitute_expr(e: &Expr, param_map: &[Expr], local_off: LocalId) -> Expr {
    match e {
        Expr::Param(p) => param_map.get(*p as usize).cloned().unwrap_or(Expr::ConstInt(0)),
        Expr::Local(l) => Expr::Local(l + local_off),
        Expr::Bin(op, a, b) => Expr::Bin(
            *op,
            Box::new(substitute_expr(a, param_map, local_off)),
            Box::new(substitute_expr(b, param_map, local_off)),
        ),
        Expr::FBin(op, a, b) => Expr::FBin(
            *op,
            Box::new(substitute_expr(a, param_map, local_off)),
            Box::new(substitute_expr(b, param_map, local_off)),
        ),
        Expr::Cmp(op, a, b) => Expr::Cmp(
            *op,
            Box::new(substitute_expr(a, param_map, local_off)),
            Box::new(substitute_expr(b, param_map, local_off)),
        ),
        Expr::Not(a) => Expr::Not(Box::new(substitute_expr(a, param_map, local_off))),
        Expr::Neg(a) => Expr::Neg(Box::new(substitute_expr(a, param_map, local_off))),
        Expr::LoadByte { base, index } => Expr::LoadByte {
            base: Box::new(substitute_expr(base, param_map, local_off)),
            index: Box::new(substitute_expr(index, param_map, local_off)),
        },
        Expr::Call { callee, args } => Expr::Call {
            callee: callee.clone(),
            args: args.iter().map(|a| substitute_expr(a, param_map, local_off)).collect(),
        },
        other => other.clone(),
    }
}

fn substitute_stmts(
    stmts: &[Stmt],
    param_map: &[Expr],
    local_off: LocalId,
    ret_local: Option<LocalId>,
) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(stmts.len());
    for s in stmts {
        match s {
            Stmt::Let { local, value } => out.push(Stmt::Let {
                local: local + local_off,
                value: substitute_expr(value, param_map, local_off),
            }),
            Stmt::SetGlobal { global, value } => out.push(Stmt::SetGlobal {
                global: *global,
                value: substitute_expr(value, param_map, local_off),
            }),
            Stmt::StoreByte { base, index, value } => out.push(Stmt::StoreByte {
                base: substitute_expr(base, param_map, local_off),
                index: substitute_expr(index, param_map, local_off),
                value: substitute_expr(value, param_map, local_off),
            }),
            Stmt::If { cond, then_body, else_body } => out.push(Stmt::If {
                cond: substitute_expr(cond, param_map, local_off),
                then_body: substitute_stmts(then_body, param_map, local_off, ret_local),
                else_body: substitute_stmts(else_body, param_map, local_off, ret_local),
            }),
            Stmt::Expr(e) => out.push(Stmt::Expr(substitute_expr(e, param_map, local_off))),
            Stmt::Return(v) => {
                // Only reachable as the trailing return of an inlinable
                // callee (checked by `inlinable`).
                if let (Some(rl), Some(e)) = (ret_local, v.as_ref()) {
                    out.push(Stmt::Let {
                        local: rl,
                        value: substitute_expr(e, param_map, local_off),
                    });
                }
            }
            Stmt::Syscall { num, args } => out.push(Stmt::Syscall {
                num: *num,
                args: args.iter().map(|a| substitute_expr(a, param_map, local_off)).collect(),
            }),
            other => out.push(other.clone()),
        }
    }
    out
}

/// Inline small intra-library callees at statement-level call sites
/// (`x = callee(...)` and bare `callee(...);`). One inlining round only —
/// enough to change the O3 instruction stream substantially without risking
/// growth blowups.
pub fn inline_small_calls(lib: &Library, func: &Function) -> Function {
    let mut out = func.clone();
    let mut new_body = Vec::with_capacity(out.body.len());
    for s in out.body.iter() {
        match s {
            Stmt::Let { local, value: Expr::Call { callee, args } } => {
                if let Some(target) = lib.function(callee).filter(|t| inlinable(t)) {
                    let local_off = out.locals.len() as LocalId;
                    let mut tmp = out.clone();
                    for l in &target.locals {
                        tmp.locals.push(l.clone());
                    }
                    out.locals = tmp.locals;
                    let body = substitute_stmts(&target.body, args, local_off, Some(*local));
                    new_body.extend(body);
                    continue;
                }
                new_body.push(s.clone());
            }
            Stmt::Expr(Expr::Call { callee, args }) => {
                if let Some(target) = lib.function(callee).filter(|t| inlinable(t)) {
                    let local_off = out.locals.len() as LocalId;
                    let mut tmp = out.clone();
                    for l in &target.locals {
                        tmp.locals.push(l.clone());
                    }
                    out.locals = tmp.locals;
                    let body = substitute_stmts(&target.body, args, local_off, None);
                    new_body.extend(body);
                    continue;
                }
                new_body.push(s.clone());
            }
            other => new_body.push(other.clone()),
        }
    }
    out.body = new_body;
    out
}

// ---------------------------------------------------------------------------
// Loop unrolling
// ---------------------------------------------------------------------------

fn body_safe_to_unroll(body: &[Stmt], var: LocalId) -> bool {
    let mut ok = true;
    visit::walk_stmts(body, &mut |s| match s {
        Stmt::Break | Stmt::Continue | Stmt::Return(_) | Stmt::Abort => ok = false,
        Stmt::Let { local, .. } if *local == var => ok = false,
        _ => {}
    });
    ok
}

/// Unroll `For` loops by a factor of 2 (body duplicated with an explicit
/// induction step between the copies, plus a remainder loop). Only loops
/// whose bodies neither exit early nor write the induction variable are
/// unrolled.
pub fn unroll_loops(func: &Function) -> Function {
    let mut out = func.clone();
    out.body = unroll_stmts(&out.body);
    out
}

fn unroll_stmts(stmts: &[Stmt]) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(stmts.len());
    for s in stmts {
        match s {
            Stmt::For { var, start, end, step, body }
                if matches!(step, Expr::ConstInt(k) if *k > 0)
                    && body_safe_to_unroll(body, *var) =>
            {
                let k = match step {
                    Expr::ConstInt(k) => *k,
                    _ => unreachable!(),
                };
                let body = unroll_stmts(body);
                // i = start;
                out.push(Stmt::Let { local: *var, value: start.clone() });
                // while (i + k < end) { body; i += k; body; i += k; }
                let bump = Stmt::Let {
                    local: *var,
                    value: Expr::bin(BinOp::Add, Expr::Local(*var), Expr::ConstInt(k)),
                };
                let mut unrolled = body.clone();
                unrolled.push(bump.clone());
                unrolled.extend(body.clone());
                unrolled.push(bump.clone());
                out.push(Stmt::While {
                    cond: Expr::cmp(
                        CmpOp::Lt,
                        Expr::bin(BinOp::Add, Expr::Local(*var), Expr::ConstInt(k)),
                        end.clone(),
                    ),
                    body: unrolled,
                });
                // remainder: while (i < end) { body; i += k; }
                let mut rem = body.clone();
                rem.push(bump);
                out.push(Stmt::While {
                    cond: Expr::cmp(CmpOp::Lt, Expr::Local(*var), end.clone()),
                    body: rem,
                });
            }
            Stmt::For { var, start, end, step, body } => out.push(Stmt::For {
                var: *var,
                start: start.clone(),
                end: end.clone(),
                step: step.clone(),
                body: unroll_stmts(body),
            }),
            Stmt::If { cond, then_body, else_body } => out.push(Stmt::If {
                cond: cond.clone(),
                then_body: unroll_stmts(then_body),
                else_body: unroll_stmts(else_body),
            }),
            Stmt::While { cond, body } => {
                out.push(Stmt::While { cond: cond.clone(), body: unroll_stmts(body) })
            }
            other => out.push(other.clone()),
        }
    }
    out
}

/// `Ofast` float relaxation: rewrites `(a *f b) +f c` into a fused
/// multiply-add marker call recognized by the lowerer. Implemented as an
/// expression annotation: the shape survives as-is; the lowerer pattern
/// matches it when compiling at `Ofast`.
pub fn has_fmuladd_shape(e: &Expr) -> Option<(&Expr, &Expr, &Expr)> {
    if let Expr::FBin(BinOp::Add, l, r) = e {
        if let Expr::FBin(BinOp::Mul, a, b) = l.as_ref() {
            return Some((a, b, r));
        }
        if let Expr::FBin(BinOp::Mul, a, b) = r.as_ref() {
            return Some((a, b, l));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use fwlang::ast::{Local, Param, Ty};

    #[test]
    fn folds_constant_arithmetic() {
        let e = Expr::bin(BinOp::Add, Expr::ConstInt(2), Expr::bin(BinOp::Mul, Expr::ConstInt(3), Expr::ConstInt(4)));
        assert_eq!(fold_expr(&e), Expr::ConstInt(14));
    }

    #[test]
    fn fold_preserves_div_by_zero() {
        let e = Expr::bin(BinOp::Div, Expr::ConstInt(1), Expr::ConstInt(0));
        assert!(matches!(fold_expr(&e), Expr::Bin(BinOp::Div, _, _)));
    }

    #[test]
    fn fold_applies_identities() {
        let e = Expr::bin(BinOp::Add, Expr::Param(0), Expr::ConstInt(0));
        assert_eq!(fold_expr(&e), Expr::Param(0));
        let e = Expr::bin(BinOp::Mul, Expr::Param(0), Expr::ConstInt(0));
        assert_eq!(fold_expr(&e), Expr::ConstInt(0));
    }

    #[test]
    fn fold_eliminates_dead_if_arm() {
        let f = Function {
            name: "f".into(),
            params: vec![],
            locals: vec![Local { name: "x".into(), ty: Ty::Int }],
            ret: None,
            body: vec![Stmt::If {
                cond: Expr::cmp(CmpOp::Lt, Expr::ConstInt(1), Expr::ConstInt(2)),
                then_body: vec![Stmt::Let { local: 0, value: Expr::ConstInt(1) }],
                else_body: vec![Stmt::Let { local: 0, value: Expr::ConstInt(2) }],
            }],
            exported: true,
        };
        let g = constant_fold(&f);
        assert_eq!(g.body, vec![Stmt::Let { local: 0, value: Expr::ConstInt(1) }]);
    }

    #[test]
    fn unroll_duplicates_body() {
        let f = Function {
            name: "f".into(),
            params: vec![
                Param { name: "data".into(), ty: Ty::Buf },
                Param { name: "len".into(), ty: Ty::Int },
            ],
            locals: vec![
                Local { name: "i".into(), ty: Ty::Int },
                Local { name: "acc".into(), ty: Ty::Int },
            ],
            ret: None,
            body: vec![Stmt::For {
                var: 0,
                start: Expr::ConstInt(0),
                end: Expr::Param(1),
                step: Expr::ConstInt(1),
                body: vec![Stmt::Let {
                    local: 1,
                    value: Expr::bin(BinOp::Add, Expr::Local(1), Expr::Local(0)),
                }],
            }],
            exported: true,
        };
        let g = unroll_loops(&f);
        // For is replaced by init + two While loops.
        assert_eq!(g.body.len(), 3);
        assert!(matches!(&g.body[1], Stmt::While { body, .. } if body.len() == 4));
    }

    #[test]
    fn unroll_skips_loops_with_breaks() {
        let f = Function {
            name: "f".into(),
            params: vec![Param { name: "len".into(), ty: Ty::Int }],
            locals: vec![Local { name: "i".into(), ty: Ty::Int }],
            ret: None,
            body: vec![Stmt::For {
                var: 0,
                start: Expr::ConstInt(0),
                end: Expr::Param(0),
                step: Expr::ConstInt(1),
                body: vec![Stmt::Break],
            }],
            exported: true,
        };
        let g = unroll_loops(&f);
        assert!(matches!(&g.body[0], Stmt::For { .. }));
    }

    #[test]
    fn inline_substitutes_small_callee() {
        let mut lib = Library::new("lib");
        lib.functions.push(Function {
            name: "helper".into(),
            params: vec![Param { name: "a".into(), ty: Ty::Int }],
            locals: vec![],
            ret: Some(Ty::Int),
            body: vec![Stmt::Return(Some(Expr::bin(
                BinOp::Mul,
                Expr::Param(0),
                Expr::ConstInt(3),
            )))],
            exported: false,
        });
        let caller = Function {
            name: "caller".into(),
            params: vec![Param { name: "x".into(), ty: Ty::Int }],
            locals: vec![Local { name: "r".into(), ty: Ty::Int }],
            ret: Some(Ty::Int),
            body: vec![
                Stmt::Let {
                    local: 0,
                    value: Expr::Call { callee: "helper".into(), args: vec![Expr::Param(0)] },
                },
                Stmt::Return(Some(Expr::Local(0))),
            ],
            exported: true,
        };
        let inlined = inline_small_calls(&lib, &caller);
        assert!(visit::callee_names(&inlined).is_empty(), "call should be gone");
        assert!(matches!(
            &inlined.body[0],
            Stmt::Let { local: 0, value: Expr::Bin(BinOp::Mul, _, _) }
        ));
    }

    #[test]
    fn inline_keeps_loopy_callee() {
        let mut lib = Library::new("lib");
        lib.functions.push(Function {
            name: "loopy".into(),
            params: vec![Param { name: "n".into(), ty: Ty::Int }],
            locals: vec![Local { name: "i".into(), ty: Ty::Int }],
            ret: Some(Ty::Int),
            body: vec![
                Stmt::For {
                    var: 0,
                    start: Expr::ConstInt(0),
                    end: Expr::Param(0),
                    step: Expr::ConstInt(1),
                    body: vec![],
                },
                Stmt::Return(Some(Expr::Local(0))),
            ],
            exported: false,
        });
        let caller = Function {
            name: "caller".into(),
            params: vec![],
            locals: vec![Local { name: "r".into(), ty: Ty::Int }],
            ret: Some(Ty::Int),
            body: vec![
                Stmt::Let {
                    local: 0,
                    value: Expr::Call { callee: "loopy".into(), args: vec![Expr::ConstInt(5)] },
                },
                Stmt::Return(Some(Expr::Local(0))),
            ],
            exported: true,
        };
        let inlined = inline_small_calls(&lib, &caller);
        assert_eq!(visit::callee_names(&inlined), vec!["loopy".to_string()]);
    }

    #[test]
    fn fmuladd_shape_detection() {
        let e = Expr::FBin(
            BinOp::Add,
            Box::new(Expr::FBin(BinOp::Mul, Box::new(Expr::Param(0)), Box::new(Expr::Param(1)))),
            Box::new(Expr::Param(2)),
        );
        assert!(has_fmuladd_shape(&e).is_some());
        let e2 = Expr::FBin(BinOp::Sub, Box::new(Expr::Param(0)), Box::new(Expr::Param(1)));
        assert!(has_fmuladd_shape(&e2).is_none());
    }

    use fwlang::ast::Library;
}
