//! The compiler driver: source library → FWB binary for one
//! (architecture, optimization level) pair.
//!
//! Pipeline per function:
//!
//! 1. AST passes (per level): constant folding (`O1+`), inlining (`O3`,
//!    `Ofast`), loop unrolling (`O3`, `Ofast`);
//! 2. lowering to virtual-register IR (locals in stack slots at `O0`);
//! 3. IR passes (`O2+`): peephole, DCE, branch threading, jump removal,
//!    return merging (`Oz`);
//! 4. linear-scan register allocation;
//! 5. architecture legalization;
//! 6. encoding.

use crate::isa::{Arch, Inst, OptLevel};
use crate::{astopt, encode, format, legalize, lower, opt, regalloc};
use fwlang::ast::{Function, Library};
use std::collections::HashMap;

/// Compilation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// An internal invariant was violated; carries the legalizer's report.
    Invariant(String),
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Invariant(msg) => write!(f, "compiler invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Compiled artifacts for one function before packing.
#[derive(Debug, Clone)]
pub struct CompiledFunction {
    /// Final legalized machine code.
    pub code: Vec<Inst>,
    /// Frame size in slots (locals + spills).
    pub frame_slots: u32,
}

/// Compile one function in the context of its library.
///
/// `imports` accumulates the library-routine import table shared by the
/// whole binary; `fn_index` maps sibling function names to their function
/// table indices.
///
/// # Errors
/// Returns [`CompileError::Invariant`] if the produced code violates the
/// target's encoding rules (a compiler bug, surfaced rather than encoded).
pub fn compile_function(
    lib: &Library,
    func: &Function,
    arch: Arch,
    level: OptLevel,
    imports: &mut Vec<String>,
    fn_index: &HashMap<String, u32>,
) -> Result<CompiledFunction, CompileError> {
    // 1. AST passes.
    let mut f = func.clone();
    if level >= OptLevel::O1 {
        f = astopt::constant_fold(&f);
    }
    if matches!(level, OptLevel::O3 | OptLevel::Ofast) {
        f = astopt::inline_small_calls(lib, &f);
        f = astopt::unroll_loops(&f);
        // Folding again cleans up constants exposed by inlining.
        f = astopt::constant_fold(&f);
    }

    // 2. Lowering.
    let lowered = lower::lower_function(lib, &f, level, imports, fn_index);
    let mut code = lowered.code;

    // 3. IR passes.
    if level >= OptLevel::O2 {
        code = opt::optimize(code, level == OptLevel::Oz);
    }

    // 4. Register allocation.
    let alloc = regalloc::allocate(code, arch, lowered.frame_slots);

    // 5. Legalization.
    let legal = legalize::legalize(&alloc.code, arch);
    legalize::check(&legal, arch).map_err(CompileError::Invariant)?;

    Ok(CompiledFunction { code: legal, frame_slots: alloc.total_slots })
}

/// Compile a whole library to an FWB binary (unstripped: all symbol names
/// retained; call [`format::Binary::strip`] for the COTS form).
///
/// # Errors
/// Propagates the first function-level [`CompileError`].
pub fn compile_library(
    lib: &Library,
    arch: Arch,
    level: OptLevel,
) -> Result<format::Binary, CompileError> {
    let fn_index: HashMap<String, u32> =
        lib.functions.iter().enumerate().map(|(i, f)| (f.name.clone(), i as u32)).collect();
    let mut imports = Vec::new();
    let mut functions = Vec::with_capacity(lib.functions.len());
    for func in &lib.functions {
        let compiled = compile_function(lib, func, arch, level, &mut imports, &fn_index)?;
        functions.push(format::FuncRecord {
            name: Some(func.name.clone()),
            exported: func.exported,
            code: encode::encode(&compiled.code, arch),
            n_params: func.params.len() as u8,
            frame_slots: compiled.frame_slots,
        });
    }
    Ok(format::Binary {
        lib_name: lib.name.clone(),
        arch,
        opt: level,
        functions,
        strings: lib.strings.clone(),
        globals: lib.globals.iter().map(|g| g.init).collect(),
        imports,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fwlang::gen::Generator;

    #[test]
    fn compiles_generated_library_on_all_platforms() {
        let lib = Generator::new(2024).library_sized("libtest", 15);
        for arch in Arch::ALL {
            for level in OptLevel::ALL {
                let bin = compile_library(&lib, arch, level)
                    .unwrap_or_else(|e| panic!("{arch}/{level}: {e}"));
                assert_eq!(bin.function_count(), 15);
                // Every function decodes back.
                for i in 0..bin.function_count() {
                    let insts = bin.decode_function(i).unwrap();
                    assert!(matches!(insts.last(), Some(Inst::Ret)));
                    legalize::check(&insts, arch).unwrap();
                }
            }
        }
    }

    #[test]
    fn optimization_reduces_code_size() {
        let lib = Generator::new(7).library_sized("libtest", 10);
        let o0 = compile_library(&lib, Arch::Arm64, OptLevel::O0).unwrap();
        let o2 = compile_library(&lib, Arch::Arm64, OptLevel::O2).unwrap();
        let size = |b: &format::Binary| -> usize { b.functions.iter().map(|f| f.code.len()).sum() };
        assert!(
            size(&o2) < size(&o0),
            "O2 ({}) should be smaller than O0 ({})",
            size(&o2),
            size(&o0)
        );
    }

    #[test]
    fn oz_not_larger_than_o3() {
        let lib = Generator::new(7).library_sized("libtest", 10);
        let o3 = compile_library(&lib, Arch::Amd64, OptLevel::O3).unwrap();
        let oz = compile_library(&lib, Arch::Amd64, OptLevel::Oz).unwrap();
        let size = |b: &format::Binary| -> usize { b.functions.iter().map(|f| f.code.len()).sum() };
        assert!(size(&oz) <= size(&o3), "Oz ({}) vs O3 ({})", size(&oz), size(&o3));
    }

    #[test]
    fn architectures_produce_different_code() {
        let lib = Generator::new(7).library_sized("libtest", 5);
        let a = compile_library(&lib, Arch::X86, OptLevel::O2).unwrap();
        let b = compile_library(&lib, Arch::Arm64, OptLevel::O2).unwrap();
        assert_ne!(a.functions[0].code, b.functions[0].code);
    }

    #[test]
    fn import_table_is_shared_and_deduplicated() {
        let lib = Generator::new(7).library_sized("libtest", 25);
        let bin = compile_library(&lib, Arch::Arm32, OptLevel::O1).unwrap();
        let mut sorted = bin.imports.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), bin.imports.len(), "no duplicate imports");
    }

    #[test]
    fn compilation_is_deterministic() {
        let lib = Generator::new(55).library_sized("libtest", 8);
        let a = compile_library(&lib, Arch::Amd64, OptLevel::O3).unwrap();
        let b = compile_library(&lib, Arch::Amd64, OptLevel::O3).unwrap();
        assert_eq!(a, b);
    }
}
