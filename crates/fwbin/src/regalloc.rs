//! Linear-scan register allocation.
//!
//! Virtual registers get live intervals approximated by first/last textual
//! occurrence, extended across loop back-edges (any interval overlapping a
//! backward branch's span is live through the whole span). Allocation uses
//! the architecture's register file minus three reserved scratch registers
//! used for spill reloads/stores — so the x86 profile's tiny file (6 GPRs,
//! 3 allocatable) produces the heavy spill traffic real 32-bit x86 code
//! shows, while arm64 (28 GPRs) rarely spills. This is one of the main
//! sources of cross-architecture feature drift the paper's detector must
//! tolerate.

use crate::isa::{Arch, Inst, Reg};
use crate::opt::rewrite_with_expansion;
use std::collections::HashMap;

/// Result of register allocation.
#[derive(Debug, Clone)]
pub struct AllocResult {
    /// Code with only physical registers.
    pub code: Vec<Inst>,
    /// Total frame slots: the lowerer's locals plus spill slots.
    pub total_slots: u32,
    /// Number of virtual registers that were spilled.
    pub spilled: u32,
}

#[derive(Debug, Clone, Copy)]
struct Interval {
    vreg: Reg,
    start: u32,
    end: u32,
}

fn compute_intervals(code: &[Inst]) -> Vec<Interval> {
    let mut map: HashMap<Reg, (u32, u32)> = HashMap::new();
    for (pos, inst) in code.iter().enumerate() {
        let pos = pos as u32;
        let mut touch = |r: Reg| {
            if r.is_virtual() {
                let e = map.entry(r).or_insert((pos, pos));
                e.0 = e.0.min(pos);
                e.1 = e.1.max(pos);
            }
        };
        if let Some(d) = inst.def() {
            touch(d);
        }
        for u in inst.uses() {
            touch(u);
        }
    }
    let mut intervals: Vec<Interval> =
        map.into_iter().map(|(vreg, (start, end))| Interval { vreg, start, end }).collect();

    // Extend across loop back-edges until fixed point: a value live
    // anywhere inside [target, branch] is live through the branch.
    let back_edges: Vec<(u32, u32)> = code
        .iter()
        .enumerate()
        .filter_map(|(i, inst)| {
            inst.target().and_then(|t| if t <= i as u32 { Some((t, i as u32)) } else { None })
        })
        .collect();
    let mut changed = true;
    while changed {
        changed = false;
        for iv in intervals.iter_mut() {
            for &(t, b) in &back_edges {
                if iv.start <= b && iv.end >= t && iv.end < b {
                    iv.end = b;
                    changed = true;
                }
            }
        }
    }
    intervals.sort_by_key(|iv| (iv.start, iv.vreg.0));
    intervals
}

/// Where a virtual register ended up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Assignment {
    Phys(Reg),
    Spill(u32),
}

/// Allocate registers for `code` on `arch`. `base_slots` is the number of
/// frame slots the lowerer already used for `O0` locals; spill slots are
/// appended after them.
///
/// # Panics
/// Panics if `code` contains physical registers (allocation runs once).
pub fn allocate(code: Vec<Inst>, arch: Arch, base_slots: u32) -> AllocResult {
    for inst in &code {
        if let Some(d) = inst.def() {
            assert!(d.is_virtual(), "physical register before allocation: {inst:?}");
        }
    }
    let n_alloc = arch.num_regs().saturating_sub(3).max(2);
    let scratch = [Reg::phys(n_alloc), Reg::phys(n_alloc + 1), Reg::phys(n_alloc + 2)];

    let intervals = compute_intervals(&code);
    let mut assignment: HashMap<Reg, Assignment> = HashMap::new();
    let mut active: Vec<Interval> = Vec::new(); // sorted by end
    let mut free: Vec<Reg> = (0..n_alloc).rev().map(Reg::phys).collect();
    let mut next_slot = base_slots;
    let mut spilled = 0u32;

    for iv in &intervals {
        // Expire old intervals.
        let mut i = 0;
        while i < active.len() {
            if active[i].end < iv.start {
                if let Some(Assignment::Phys(r)) = assignment.get(&active[i].vreg).copied() {
                    free.push(r);
                }
                active.remove(i);
            } else {
                i += 1;
            }
        }
        if let Some(r) = free.pop() {
            assignment.insert(iv.vreg, Assignment::Phys(r));
            active.push(*iv);
            active.sort_by_key(|a| a.end);
        } else {
            // Spill the interval that ends last.
            let last = active.last().copied();
            match last {
                Some(victim) if victim.end > iv.end => {
                    let r = match assignment.get(&victim.vreg) {
                        Some(Assignment::Phys(r)) => *r,
                        _ => unreachable!("active interval without a register"),
                    };
                    assignment.insert(victim.vreg, Assignment::Spill(next_slot));
                    next_slot += 1;
                    spilled += 1;
                    active.pop();
                    assignment.insert(iv.vreg, Assignment::Phys(r));
                    active.push(*iv);
                    active.sort_by_key(|a| a.end);
                }
                _ => {
                    assignment.insert(iv.vreg, Assignment::Spill(next_slot));
                    next_slot += 1;
                    spilled += 1;
                }
            }
        }
    }

    // Rewrite instructions, inserting reloads/stores for spilled vregs.
    let out = rewrite_with_expansion(&code, |inst, buf| {
        let mut inst = *inst;
        // Distinct spilled vregs used by this instruction, in operand order.
        let mut reloads: Vec<(Reg, u32, Reg)> = Vec::new(); // (vreg, slot, scratch)
        for u in inst.uses() {
            if let Some(Assignment::Spill(slot)) = assignment.get(&u) {
                if !reloads.iter().any(|(v, _, _)| *v == u) {
                    let s = scratch[reloads.len()];
                    reloads.push((u, *slot, s));
                }
            }
        }
        for &(_, slot, s) in &reloads {
            buf.push(Inst::LoadSlot { rd: s, slot });
        }
        let def = inst.def();
        let def_spill = def.and_then(|d| match assignment.get(&d) {
            Some(Assignment::Spill(slot)) => Some((d, *slot)),
            _ => None,
        });
        inst.map_regs(|r| {
            if !r.is_virtual() {
                return r;
            }
            if let Some((v, _, s)) = reloads.iter().find(|(v, _, _)| *v == r) {
                let _ = v;
                return *s;
            }
            if let Some((d, _)) = def_spill {
                if r == d {
                    return scratch[0];
                }
            }
            match assignment.get(&r) {
                Some(Assignment::Phys(p)) => *p,
                Some(Assignment::Spill(_)) => scratch[0], // def handled above
                None => {
                    // A register never defined nor used elsewhere can only
                    // appear if the instruction is dead; give it scratch.
                    scratch[0]
                }
            }
        });
        buf.push(inst);
        if let Some((_, slot)) = def_spill {
            buf.push(Inst::StoreSlot { rs: scratch[0], slot });
        }
    });

    AllocResult { code: out, total_slots: next_slot, spilled }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{BinOp, Cond};

    fn v(i: u16) -> Reg {
        Reg::virt(i)
    }

    fn all_physical(code: &[Inst]) -> bool {
        code.iter().all(|i| {
            i.def().map(|d| !d.is_virtual()).unwrap_or(true)
                && i.uses().iter().all(|u| !u.is_virtual())
        })
    }

    #[test]
    fn simple_allocation_no_spill() {
        let code = vec![
            Inst::MovImm { rd: v(0), imm: 1 },
            Inst::MovImm { rd: v(1), imm: 2 },
            Inst::Bin { op: BinOp::Add, rd: v(2), rs1: v(0), rs2: v(1) },
            Inst::SetRet { rs: v(2) },
            Inst::Ret,
        ];
        let res = allocate(code, Arch::Arm64, 0);
        assert!(all_physical(&res.code));
        assert_eq!(res.spilled, 0);
        assert_eq!(res.total_slots, 0);
        assert_eq!(res.code.len(), 5);
    }

    #[test]
    fn pressure_forces_spills_on_x86() {
        // 10 simultaneously-live values exceed x86's 3 allocatable regs.
        let mut code = Vec::new();
        for i in 0..10 {
            code.push(Inst::MovImm { rd: v(i), imm: i as i64 });
        }
        let mut acc = v(10);
        code.push(Inst::MovImm { rd: acc, imm: 0 });
        for i in 0..10 {
            let nxt = v(11 + i);
            code.push(Inst::Bin { op: BinOp::Add, rd: nxt, rs1: acc, rs2: v(i) });
            acc = nxt;
        }
        code.push(Inst::SetRet { rs: acc });
        code.push(Inst::Ret);
        let res = allocate(code.clone(), Arch::X86, 0);
        assert!(all_physical(&res.code));
        assert!(res.spilled > 0, "x86 must spill under this pressure");
        assert!(res.total_slots > 0);
        // arm64 handles the same code without spilling.
        let res64 = allocate(code, Arch::Arm64, 0);
        assert_eq!(res64.spilled, 0);
    }

    #[test]
    fn loop_extension_keeps_value_alive() {
        // v0 defined before the loop, used inside it after v1's lifetime
        // would naively end; the backward branch extends both.
        let code = vec![
            Inst::MovImm { rd: v(0), imm: 5 },  // 0
            Inst::MovImm { rd: v(1), imm: 0 },  // 1
            Inst::Bin { op: BinOp::Add, rd: v(1), rs1: v(1), rs2: v(0) }, // 2 (loop head)
            Inst::BinImm { op: BinOp::Sub, rd: v(0), rs: v(0), imm: 1 }, // 3
            Inst::CBr { cond: Cond::Ne, rs1: v(0), rs2: v(1), target: 2 }, // 4
            Inst::SetRet { rs: v(1) }, // 5
            Inst::Ret,                 // 6
        ];
        let intervals = compute_intervals(&code);
        let iv0 = intervals.iter().find(|iv| iv.vreg == v(0)).unwrap();
        assert_eq!(iv0.end, 4);
        let res = allocate(code, Arch::Arm64, 0);
        assert!(all_physical(&res.code));
    }

    #[test]
    fn spill_rewrite_preserves_branch_targets() {
        let mut code = Vec::new();
        for i in 0..8 {
            code.push(Inst::MovImm { rd: v(i), imm: i as i64 });
        }
        // Keep all 8 alive across a branch.
        code.push(Inst::CBr { cond: Cond::Eq, rs1: v(0), rs2: v(1), target: 11 }); // 8
        let mut acc = v(8);
        code.push(Inst::MovImm { rd: acc, imm: 0 }); // 9
        code.push(Inst::Bin { op: BinOp::Add, rd: v(9), rs1: acc, rs2: v(7) }); // 10
        acc = v(9);
        for i in 0..8 {
            let nxt = v(10 + i);
            code.push(Inst::Bin { op: BinOp::Add, rd: nxt, rs1: acc, rs2: v(i) });
            acc = nxt;
        }
        code.push(Inst::SetRet { rs: acc });
        code.push(Inst::Ret);
        let res = allocate(code, Arch::X86, 0);
        assert!(all_physical(&res.code));
        // Every branch target still lands inside the function.
        for i in &res.code {
            if let Some(t) = i.target() {
                assert!((t as usize) <= res.code.len());
            }
        }
    }

    #[test]
    fn base_slots_offset_spills() {
        let mut code = Vec::new();
        for i in 0..8 {
            code.push(Inst::MovImm { rd: v(i), imm: i as i64 });
        }
        let mut acc = v(8);
        code.push(Inst::MovImm { rd: acc, imm: 0 });
        for i in 0..8 {
            let nxt = v(9 + i);
            code.push(Inst::Bin { op: BinOp::Add, rd: nxt, rs1: acc, rs2: v(i) });
            acc = nxt;
        }
        code.push(Inst::SetRet { rs: acc });
        code.push(Inst::Ret);
        let res = allocate(code, Arch::X86, 4);
        assert!(res.total_slots > 4, "spill slots appended after base slots");
        // No spill slot below base.
        for i in &res.code {
            if let Inst::LoadSlot { slot, .. } | Inst::StoreSlot { slot, .. } = i {
                assert!(*slot >= 4);
            }
        }
    }
}
