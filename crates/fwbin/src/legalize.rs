//! Architecture legalization: rewrites the generic IR into the forms each
//! target actually supports.
//!
//! * Two-operand architectures (x86, amd64): ALU results must overwrite the
//!   first source (`rd == rs1`), unary ops must be in-place, and fused
//!   compare instructions split into `Cmp` + `JCc`/`SetCc`.
//! * `Arm32`: three-operand ALU, but flag-based compare/branch, so fused
//!   `CBr`/`CmpSet` still split.
//! * `Arm64`: fully fused forms are kept.
//!
//! Runs after register allocation, so all registers are physical; the
//! third reserved scratch register is free for the rare non-commutative
//! `rd == rs2` case.

use crate::isa::{Arch, BinOp, Inst, Reg};
use crate::opt::rewrite_with_expansion;

fn commutative(op: BinOp) -> bool {
    matches!(op, BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor)
}

/// Legalize `code` for `arch`.
pub fn legalize(code: &[Inst], arch: Arch) -> Vec<Inst> {
    let scratch2 = Reg::phys(arch.num_regs().saturating_sub(1).max(2));
    rewrite_with_expansion(code, |inst, buf| {
        match *inst {
            Inst::CBr { cond, rs1, rs2, target } if !arch.fused_compare_branch() => {
                buf.push(Inst::Cmp { rs1, rs2 });
                buf.push(Inst::JCc { cond, target });
            }
            Inst::CmpSet { cond, rd, rs1, rs2 } if !arch.fused_compare_branch() => {
                buf.push(Inst::Cmp { rs1, rs2 });
                buf.push(Inst::SetCc { cond, rd });
            }
            Inst::Bin { op, rd, rs1, rs2 } if arch.two_operand() && rd != rs1 => {
                if rd == rs2 {
                    if commutative(op) {
                        buf.push(Inst::Bin { op, rd, rs1: rs2, rs2: rs1 });
                    } else {
                        // rd aliases the second source of a non-commutative
                        // op: stage rs2 in scratch.
                        buf.push(Inst::Mov { rd: scratch2, rs: rs2 });
                        buf.push(Inst::Mov { rd, rs: rs1 });
                        buf.push(Inst::Bin { op, rd, rs1: rd, rs2: scratch2 });
                    }
                } else {
                    buf.push(Inst::Mov { rd, rs: rs1 });
                    buf.push(Inst::Bin { op, rd, rs1: rd, rs2 });
                }
            }
            Inst::FBin { op, rd, rs1, rs2 } if arch.two_operand() && rd != rs1 => {
                if rd == rs2 {
                    if commutative(op) {
                        buf.push(Inst::FBin { op, rd, rs1: rs2, rs2: rs1 });
                    } else {
                        buf.push(Inst::Mov { rd: scratch2, rs: rs2 });
                        buf.push(Inst::Mov { rd, rs: rs1 });
                        buf.push(Inst::FBin { op, rd, rs1: rd, rs2: scratch2 });
                    }
                } else {
                    buf.push(Inst::Mov { rd, rs: rs1 });
                    buf.push(Inst::FBin { op, rd, rs1: rd, rs2 });
                }
            }
            Inst::BinImm { op, rd, rs, imm } if arch.two_operand() && rd != rs => {
                buf.push(Inst::Mov { rd, rs });
                buf.push(Inst::BinImm { op, rd, rs: rd, imm });
            }
            Inst::Neg { rd, rs } if arch.two_operand() && rd != rs => {
                buf.push(Inst::Mov { rd, rs });
                buf.push(Inst::Neg { rd, rs: rd });
            }
            Inst::Not { rd, rs } if arch.two_operand() && rd != rs => {
                buf.push(Inst::Mov { rd, rs });
                buf.push(Inst::Not { rd, rs: rd });
            }
            other => buf.push(other),
        }
    })
}

/// Verify the architecture invariants hold (used by tests and debug
/// assertions in the compiler driver). Returns the first violation found.
pub fn check(code: &[Inst], arch: Arch) -> Result<(), String> {
    for (i, inst) in code.iter().enumerate() {
        if let Some(d) = inst.def() {
            if d.is_virtual() {
                return Err(format!("virtual register survives at {i}: {inst:?}"));
            }
        }
        for u in inst.uses() {
            if u.is_virtual() {
                return Err(format!("virtual register survives at {i}: {inst:?}"));
            }
            if u.0 >= arch.num_regs() {
                return Err(format!("register {u} out of range for {arch} at {i}"));
            }
        }
        if !arch.fused_compare_branch() && matches!(inst, Inst::CBr { .. } | Inst::CmpSet { .. }) {
            return Err(format!("fused compare form on {arch} at {i}: {inst:?}"));
        }
        if arch.two_operand() {
            match *inst {
                Inst::Bin { rd, rs1, .. } | Inst::FBin { rd, rs1, .. } if rd != rs1 => {
                    return Err(format!("three-operand ALU on {arch} at {i}: {inst:?}"));
                }
                Inst::BinImm { rd, rs, .. } if rd != rs => {
                    return Err(format!("three-operand ALU-imm on {arch} at {i}: {inst:?}"));
                }
                _ => {}
            }
        }
        if matches!(inst, Inst::Label(_)) {
            return Err(format!("label pseudo-instruction survives at {i}"));
        }
        if let Some(t) = inst.target() {
            if t as usize >= code.len() {
                return Err(format!("branch target {t} out of range at {i}"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Cond;

    fn r(i: u16) -> Reg {
        Reg::phys(i)
    }

    #[test]
    fn splits_cbr_on_flag_archs() {
        let code = vec![
            Inst::CBr { cond: Cond::Lt, rs1: r(0), rs2: r(1), target: 1 },
            Inst::Ret,
        ];
        for arch in [Arch::X86, Arch::Amd64, Arch::Arm32] {
            let out = legalize(&code, arch);
            assert!(matches!(out[0], Inst::Cmp { .. }));
            assert!(matches!(out[1], Inst::JCc { .. }));
            assert_eq!(out[1].target(), Some(2));
            check(&out, arch).unwrap();
        }
        let out = legalize(&code, Arch::Arm64);
        assert!(matches!(out[0], Inst::CBr { .. }));
        check(&out, Arch::Arm64).unwrap();
    }

    #[test]
    fn two_operand_bin_rewrite() {
        let code = vec![
            Inst::Bin { op: BinOp::Add, rd: r(2), rs1: r(0), rs2: r(1) },
            Inst::Ret,
        ];
        let out = legalize(&code, Arch::X86);
        assert!(matches!(out[0], Inst::Mov { .. }));
        assert!(matches!(out[1], Inst::Bin { rd, rs1, .. } if rd == rs1));
        check(&out, Arch::X86).unwrap();
        // arm32/arm64 keep the three-operand form.
        let out = legalize(&code, Arch::Arm32);
        assert_eq!(out.len(), 2);
        check(&out, Arch::Arm32).unwrap();
    }

    #[test]
    fn two_operand_aliased_rs2_commutative_swaps() {
        let code = vec![
            Inst::Bin { op: BinOp::Add, rd: r(1), rs1: r(0), rs2: r(1) },
            Inst::Ret,
        ];
        let out = legalize(&code, Arch::Amd64);
        assert!(matches!(out[0], Inst::Bin { rd, rs1, .. } if rd == rs1));
        assert_eq!(out.len(), 2);
        check(&out, Arch::Amd64).unwrap();
    }

    #[test]
    fn two_operand_aliased_rs2_noncommutative_uses_scratch() {
        let code = vec![
            Inst::Bin { op: BinOp::Sub, rd: r(1), rs1: r(0), rs2: r(1) },
            Inst::Ret,
        ];
        let out = legalize(&code, Arch::Amd64);
        assert_eq!(out.len(), 4);
        check(&out, Arch::Amd64).unwrap();
    }

    #[test]
    fn check_rejects_bad_forms() {
        let bad = vec![Inst::Bin { op: BinOp::Add, rd: r(2), rs1: r(0), rs2: r(1) }, Inst::Ret];
        assert!(check(&bad, Arch::X86).is_err());
        assert!(check(&bad, Arch::Arm64).is_ok());
        let virt = vec![Inst::MovImm { rd: Reg::virt(0), imm: 1 }, Inst::Ret];
        assert!(check(&virt, Arch::Arm64).is_err());
    }
}
