//! Byte encoding and decoding of instruction streams.
//!
//! Two encoding families mirror the real-world split the paper's feature
//! tables are sensitive to (basic-block *sizes in bytes* are four of the 48
//! static features):
//!
//! * **Variable-width** (x86, amd64): one opcode byte, one byte per
//!   register, and width-tagged immediates (1/2/4/8 bytes). The amd64
//!   profile additionally spends a REX-like `0x66` prefix byte on every
//!   ALU instruction.
//! * **Fixed-width** (arm32, arm64): a 4-byte unit per instruction plus
//!   fixed-size extension words for immediates (8 bytes) and branch
//!   targets (4 bytes).
//!
//! Branch targets are stored as instruction indices (synthetic ISA
//! liberty); everything else is bit-faithful, and
//! `decode(encode(code)) == code` for all legal code (property-tested).

use crate::isa::{Arch, BinOp, Cond, Inst, Reg, Sym};

/// Error decoding a byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The stream ended mid-instruction.
    UnexpectedEof,
    /// Unknown opcode byte at the given offset.
    BadOpcode(u8, usize),
    /// A field held an out-of-range value.
    BadField(&'static str, usize),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::UnexpectedEof => write!(f, "unexpected end of code stream"),
            DecodeError::BadOpcode(op, off) => write!(f, "unknown opcode {op:#04x} at offset {off}"),
            DecodeError::BadField(name, off) => write!(f, "bad {name} field at offset {off}"),
        }
    }
}

impl std::error::Error for DecodeError {}

const OP_MOVIMM: u8 = 0x01;
const OP_FMOVIMM: u8 = 0x02;
const OP_MOV: u8 = 0x03;
const OP_LOADSTR: u8 = 0x04;
const OP_LOADGLOBAL: u8 = 0x05;
const OP_STOREGLOBAL: u8 = 0x06;
const OP_BIN: u8 = 0x07;
const OP_BINIMM: u8 = 0x08;
const OP_FBIN: u8 = 0x09;
const OP_FMULADD: u8 = 0x0a;
const OP_NEG: u8 = 0x0b;
const OP_NOT: u8 = 0x0c;
const OP_CMP: u8 = 0x0d;
const OP_SETCC: u8 = 0x0e;
const OP_CMPSET: u8 = 0x0f;
const OP_LOADB: u8 = 0x10;
const OP_STOREB: u8 = 0x11;
const OP_LOADSLOT: u8 = 0x12;
const OP_STORESLOT: u8 = 0x13;
const OP_JMP: u8 = 0x14;
const OP_JCC: u8 = 0x15;
const OP_CBR: u8 = 0x16;
const OP_JMPIND: u8 = 0x17;
const OP_SETARG: u8 = 0x18;
const OP_LOADARG: u8 = 0x19;
const OP_CALL: u8 = 0x1a;
const OP_GETRET: u8 = 0x1b;
const OP_SETRET: u8 = 0x1c;
const OP_RET: u8 = 0x1d;
const OP_PUSH: u8 = 0x1e;
const OP_POP: u8 = 0x1f;
const OP_SYSCALL: u8 = 0x20;
const OP_HALT: u8 = 0x21;
const OP_NOP: u8 = 0x22;

/// amd64 ALU prefix byte (REX analog).
const PREFIX_ALU64: u8 = 0x66;

fn opcode(inst: &Inst) -> u8 {
    match inst {
        Inst::Label(_) => panic!("cannot encode Label pseudo-instruction"),
        Inst::MovImm { .. } => OP_MOVIMM,
        Inst::FMovImm { .. } => OP_FMOVIMM,
        Inst::Mov { .. } => OP_MOV,
        Inst::LoadStr { .. } => OP_LOADSTR,
        Inst::LoadGlobal { .. } => OP_LOADGLOBAL,
        Inst::StoreGlobal { .. } => OP_STOREGLOBAL,
        Inst::Bin { .. } => OP_BIN,
        Inst::BinImm { .. } => OP_BINIMM,
        Inst::FBin { .. } => OP_FBIN,
        Inst::FMulAdd { .. } => OP_FMULADD,
        Inst::Neg { .. } => OP_NEG,
        Inst::Not { .. } => OP_NOT,
        Inst::Cmp { .. } => OP_CMP,
        Inst::SetCc { .. } => OP_SETCC,
        Inst::CmpSet { .. } => OP_CMPSET,
        Inst::LoadB { .. } => OP_LOADB,
        Inst::StoreB { .. } => OP_STOREB,
        Inst::LoadSlot { .. } => OP_LOADSLOT,
        Inst::StoreSlot { .. } => OP_STORESLOT,
        Inst::Jmp { .. } => OP_JMP,
        Inst::JCc { .. } => OP_JCC,
        Inst::CBr { .. } => OP_CBR,
        Inst::JmpInd { .. } => OP_JMPIND,
        Inst::SetArg { .. } => OP_SETARG,
        Inst::LoadArg { .. } => OP_LOADARG,
        Inst::Call { .. } => OP_CALL,
        Inst::GetRet { .. } => OP_GETRET,
        Inst::SetRet { .. } => OP_SETRET,
        Inst::Ret => OP_RET,
        Inst::Push { .. } => OP_PUSH,
        Inst::Pop { .. } => OP_POP,
        Inst::Syscall { .. } => OP_SYSCALL,
        Inst::Halt => OP_HALT,
        Inst::Nop => OP_NOP,
    }
}

fn binop_code(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Div => 3,
        BinOp::Mod => 4,
        BinOp::And => 5,
        BinOp::Or => 6,
        BinOp::Xor => 7,
        BinOp::Shl => 8,
        BinOp::Shr => 9,
    }
}

fn binop_from(code: u8, off: usize) -> Result<BinOp, DecodeError> {
    Ok(match code {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::Div,
        4 => BinOp::Mod,
        5 => BinOp::And,
        6 => BinOp::Or,
        7 => BinOp::Xor,
        8 => BinOp::Shl,
        9 => BinOp::Shr,
        _ => return Err(DecodeError::BadField("binop", off)),
    })
}

fn cond_code(c: Cond) -> u8 {
    match c {
        Cond::Eq => 0,
        Cond::Ne => 1,
        Cond::Lt => 2,
        Cond::Le => 3,
        Cond::Gt => 4,
        Cond::Ge => 5,
    }
}

fn cond_from(code: u8, off: usize) -> Result<Cond, DecodeError> {
    Ok(match code {
        0 => Cond::Eq,
        1 => Cond::Ne,
        2 => Cond::Lt,
        3 => Cond::Le,
        4 => Cond::Gt,
        5 => Cond::Ge,
        _ => return Err(DecodeError::BadField("cond", off)),
    })
}

fn is_alu(op: u8) -> bool {
    matches!(
        op,
        OP_BIN | OP_BINIMM | OP_FBIN | OP_FMULADD | OP_NEG | OP_NOT | OP_CMP | OP_SETCC | OP_CMPSET
    )
}

// ---------------------------------------------------------------------------
// Writer / reader
// ---------------------------------------------------------------------------

struct Writer {
    buf: Vec<u8>,
    fixed: bool,
}

impl Writer {
    fn reg(&mut self, r: Reg) {
        debug_assert!(!r.is_virtual(), "virtual register in encoder");
        self.buf.push(r.0 as u8);
    }

    fn byte(&mut self, b: u8) {
        self.buf.push(b);
    }

    /// 32-bit field: fixed archs always spend 4 bytes; variable archs use a
    /// width tag.
    fn u32f(&mut self, v: u32) {
        if self.fixed {
            self.buf.extend_from_slice(&v.to_le_bytes());
        } else if v <= u8::MAX as u32 {
            self.buf.push(0);
            self.buf.push(v as u8);
        } else if v <= u16::MAX as u32 {
            self.buf.push(1);
            self.buf.extend_from_slice(&(v as u16).to_le_bytes());
        } else {
            self.buf.push(2);
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// 64-bit immediate: fixed archs always spend 8 bytes; variable archs
    /// use a width tag.
    fn i64f(&mut self, v: i64) {
        if self.fixed {
            self.buf.extend_from_slice(&v.to_le_bytes());
        } else if let Ok(b) = i8::try_from(v) {
            self.buf.push(0);
            self.buf.push(b as u8);
        } else if let Ok(h) = i16::try_from(v) {
            self.buf.push(1);
            self.buf.extend_from_slice(&h.to_le_bytes());
        } else if let Ok(w) = i32::try_from(v) {
            self.buf.push(2);
            self.buf.extend_from_slice(&w.to_le_bytes());
        } else {
            self.buf.push(3);
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    fn f64f(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Pad a fixed-width instruction header to the next 4-byte unit
    /// boundary (wide forms such as three-register ALU ops occupy two
    /// units, like a real fixed-width ISA would split them).
    fn pad_header(&mut self, start: usize) {
        if self.fixed {
            while self.buf.len() - start < 4 || !(self.buf.len() - start).is_multiple_of(4) {
                self.buf.push(0);
            }
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    fixed: bool,
}

impl<'a> Reader<'a> {
    fn byte(&mut self) -> Result<u8, DecodeError> {
        let b = *self.buf.get(self.pos).ok_or(DecodeError::UnexpectedEof)?;
        self.pos += 1;
        Ok(b)
    }

    fn reg(&mut self) -> Result<Reg, DecodeError> {
        Ok(Reg(self.byte()? as u16))
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.pos + n > self.buf.len() {
            return Err(DecodeError::UnexpectedEof);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32f(&mut self) -> Result<u32, DecodeError> {
        if self.fixed {
            let b = self.take(4)?;
            Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
        } else {
            match self.byte()? {
                0 => Ok(self.byte()? as u32),
                1 => {
                    let b = self.take(2)?;
                    Ok(u16::from_le_bytes([b[0], b[1]]) as u32)
                }
                2 => {
                    let b = self.take(4)?;
                    Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
                }
                _ => Err(DecodeError::BadField("u32 tag", self.pos - 1)),
            }
        }
    }

    fn i64f(&mut self) -> Result<i64, DecodeError> {
        if self.fixed {
            let b = self.take(8)?;
            Ok(i64::from_le_bytes(b.try_into().unwrap()))
        } else {
            match self.byte()? {
                0 => Ok(self.byte()? as i8 as i64),
                1 => {
                    let b = self.take(2)?;
                    Ok(i16::from_le_bytes([b[0], b[1]]) as i64)
                }
                2 => {
                    let b = self.take(4)?;
                    Ok(i32::from_le_bytes(b.try_into().unwrap()) as i64)
                }
                3 => {
                    let b = self.take(8)?;
                    Ok(i64::from_le_bytes(b.try_into().unwrap()))
                }
                _ => Err(DecodeError::BadField("i64 tag", self.pos - 1)),
            }
        }
    }

    fn f64f(&mut self) -> Result<f64, DecodeError> {
        let b = self.take(8)?;
        Ok(f64::from_bits(u64::from_le_bytes(b.try_into().unwrap())))
    }

    fn skip_header_pad(&mut self, start: usize) -> Result<(), DecodeError> {
        if self.fixed {
            while self.pos - start < 4 || !(self.pos - start).is_multiple_of(4) {
                self.byte()?;
            }
        }
        Ok(())
    }
}

/// Encode one instruction, appending to the writer.
fn encode_inst(w: &mut Writer, inst: &Inst, arch: Arch) {
    let op = opcode(inst);
    if arch == Arch::Amd64 && is_alu(op) {
        w.byte(PREFIX_ALU64);
    }
    let start = w.buf.len();
    w.byte(op);
    match *inst {
        Inst::Label(_) => unreachable!(),
        Inst::MovImm { rd, imm } => {
            w.reg(rd);
            w.pad_header(start);
            w.i64f(imm);
        }
        Inst::FMovImm { rd, imm } => {
            w.reg(rd);
            w.pad_header(start);
            w.f64f(imm);
        }
        Inst::Mov { rd, rs } => {
            w.reg(rd);
            w.reg(rs);
            w.pad_header(start);
        }
        Inst::LoadStr { rd, sid } => {
            w.reg(rd);
            w.pad_header(start);
            w.u32f(sid);
        }
        Inst::LoadGlobal { rd, gid } => {
            w.reg(rd);
            w.pad_header(start);
            w.u32f(gid);
        }
        Inst::StoreGlobal { gid, rs } => {
            w.reg(rs);
            w.pad_header(start);
            w.u32f(gid);
        }
        Inst::Bin { op, rd, rs1, rs2 } => {
            w.byte(binop_code(op));
            w.reg(rd);
            w.reg(rs1);
            // Fixed: rs2 spills into an extension byte slot; the header is
            // already full (op + 3 bytes). Both families just append it.
            w.reg(rs2);
            w.pad_header(start);
        }
        Inst::BinImm { op, rd, rs, imm } => {
            w.byte(binop_code(op));
            w.reg(rd);
            w.reg(rs);
            w.pad_header(start);
            w.i64f(imm);
        }
        Inst::FBin { op, rd, rs1, rs2 } => {
            w.byte(binop_code(op));
            w.reg(rd);
            w.reg(rs1);
            w.reg(rs2);
            w.pad_header(start);
        }
        Inst::FMulAdd { rd, rs1, rs2, rs3 } => {
            w.reg(rd);
            w.reg(rs1);
            w.reg(rs2);
            w.reg(rs3);
            w.pad_header(start);
        }
        Inst::Neg { rd, rs } | Inst::Not { rd, rs } => {
            w.reg(rd);
            w.reg(rs);
            w.pad_header(start);
        }
        Inst::Cmp { rs1, rs2 } => {
            w.reg(rs1);
            w.reg(rs2);
            w.pad_header(start);
        }
        Inst::SetCc { cond, rd } => {
            w.byte(cond_code(cond));
            w.reg(rd);
            w.pad_header(start);
        }
        Inst::CmpSet { cond, rd, rs1, rs2 } => {
            w.byte(cond_code(cond));
            w.reg(rd);
            w.reg(rs1);
            w.reg(rs2);
            w.pad_header(start);
        }
        Inst::LoadB { rd, base, idx } => {
            w.reg(rd);
            w.reg(base);
            w.reg(idx);
            w.pad_header(start);
        }
        Inst::StoreB { rs, base, idx } => {
            w.reg(rs);
            w.reg(base);
            w.reg(idx);
            w.pad_header(start);
        }
        Inst::LoadSlot { rd, slot } => {
            w.reg(rd);
            w.pad_header(start);
            w.u32f(slot);
        }
        Inst::StoreSlot { rs, slot } => {
            w.reg(rs);
            w.pad_header(start);
            w.u32f(slot);
        }
        Inst::Jmp { target } => {
            w.pad_header(start);
            w.u32f(target);
        }
        Inst::JCc { cond, target } => {
            w.byte(cond_code(cond));
            w.pad_header(start);
            w.u32f(target);
        }
        Inst::CBr { cond, rs1, rs2, target } => {
            w.byte(cond_code(cond));
            w.reg(rs1);
            w.reg(rs2);
            w.pad_header(start);
            w.u32f(target);
        }
        Inst::JmpInd { rs } => {
            w.reg(rs);
            w.pad_header(start);
        }
        Inst::SetArg { idx, rs } => {
            w.byte(idx);
            w.reg(rs);
            w.pad_header(start);
        }
        Inst::LoadArg { rd, idx } => {
            w.byte(idx);
            w.reg(rd);
            w.pad_header(start);
        }
        Inst::Call { sym } => {
            w.pad_header(start);
            w.u32f(sym.0);
        }
        Inst::GetRet { rd } => {
            w.reg(rd);
            w.pad_header(start);
        }
        Inst::SetRet { rs } => {
            w.reg(rs);
            w.pad_header(start);
        }
        Inst::Ret | Inst::Halt | Inst::Nop => {
            w.pad_header(start);
        }
        Inst::Push { rs } => {
            w.reg(rs);
            w.pad_header(start);
        }
        Inst::Pop { rd } => {
            w.reg(rd);
            w.pad_header(start);
        }
        Inst::Syscall { num } => {
            w.pad_header(start);
            w.u32f(num);
        }
    }
}

fn decode_inst(r: &mut Reader<'_>, arch: Arch) -> Result<Inst, DecodeError> {
    let mut op = r.byte()?;
    if arch == Arch::Amd64 && op == PREFIX_ALU64 {
        op = r.byte()?;
        if !is_alu(op) {
            return Err(DecodeError::BadField("ALU prefix", r.pos - 1));
        }
    }
    let start = r.pos - 1;
    let inst = match op {
        OP_MOVIMM => {
            let rd = r.reg()?;
            r.skip_header_pad(start)?;
            Inst::MovImm { rd, imm: r.i64f()? }
        }
        OP_FMOVIMM => {
            let rd = r.reg()?;
            r.skip_header_pad(start)?;
            Inst::FMovImm { rd, imm: r.f64f()? }
        }
        OP_MOV => {
            let rd = r.reg()?;
            let rs = r.reg()?;
            r.skip_header_pad(start)?;
            Inst::Mov { rd, rs }
        }
        OP_LOADSTR => {
            let rd = r.reg()?;
            r.skip_header_pad(start)?;
            Inst::LoadStr { rd, sid: r.u32f()? }
        }
        OP_LOADGLOBAL => {
            let rd = r.reg()?;
            r.skip_header_pad(start)?;
            Inst::LoadGlobal { rd, gid: r.u32f()? }
        }
        OP_STOREGLOBAL => {
            let rs = r.reg()?;
            r.skip_header_pad(start)?;
            Inst::StoreGlobal { gid: r.u32f()?, rs }
        }
        OP_BIN => {
            let bop = binop_from(r.byte()?, r.pos - 1)?;
            let rd = r.reg()?;
            let rs1 = r.reg()?;
            let rs2 = r.reg()?;
            r.skip_header_pad(start)?;
            Inst::Bin { op: bop, rd, rs1, rs2 }
        }
        OP_BINIMM => {
            let bop = binop_from(r.byte()?, r.pos - 1)?;
            let rd = r.reg()?;
            let rs = r.reg()?;
            r.skip_header_pad(start)?;
            Inst::BinImm { op: bop, rd, rs, imm: r.i64f()? }
        }
        OP_FBIN => {
            let bop = binop_from(r.byte()?, r.pos - 1)?;
            let rd = r.reg()?;
            let rs1 = r.reg()?;
            let rs2 = r.reg()?;
            r.skip_header_pad(start)?;
            Inst::FBin { op: bop, rd, rs1, rs2 }
        }
        OP_FMULADD => {
            let rd = r.reg()?;
            let rs1 = r.reg()?;
            let rs2 = r.reg()?;
            let rs3 = r.reg()?;
            r.skip_header_pad(start)?;
            Inst::FMulAdd { rd, rs1, rs2, rs3 }
        }
        OP_NEG => {
            let rd = r.reg()?;
            let rs = r.reg()?;
            r.skip_header_pad(start)?;
            Inst::Neg { rd, rs }
        }
        OP_NOT => {
            let rd = r.reg()?;
            let rs = r.reg()?;
            r.skip_header_pad(start)?;
            Inst::Not { rd, rs }
        }
        OP_CMP => {
            let rs1 = r.reg()?;
            let rs2 = r.reg()?;
            r.skip_header_pad(start)?;
            Inst::Cmp { rs1, rs2 }
        }
        OP_SETCC => {
            let cond = cond_from(r.byte()?, r.pos - 1)?;
            let rd = r.reg()?;
            r.skip_header_pad(start)?;
            Inst::SetCc { cond, rd }
        }
        OP_CMPSET => {
            let cond = cond_from(r.byte()?, r.pos - 1)?;
            let rd = r.reg()?;
            let rs1 = r.reg()?;
            let rs2 = r.reg()?;
            r.skip_header_pad(start)?;
            Inst::CmpSet { cond, rd, rs1, rs2 }
        }
        OP_LOADB => {
            let rd = r.reg()?;
            let base = r.reg()?;
            let idx = r.reg()?;
            r.skip_header_pad(start)?;
            Inst::LoadB { rd, base, idx }
        }
        OP_STOREB => {
            let rs = r.reg()?;
            let base = r.reg()?;
            let idx = r.reg()?;
            r.skip_header_pad(start)?;
            Inst::StoreB { rs, base, idx }
        }
        OP_LOADSLOT => {
            let rd = r.reg()?;
            r.skip_header_pad(start)?;
            Inst::LoadSlot { rd, slot: r.u32f()? }
        }
        OP_STORESLOT => {
            let rs = r.reg()?;
            r.skip_header_pad(start)?;
            Inst::StoreSlot { rs, slot: r.u32f()? }
        }
        OP_JMP => {
            r.skip_header_pad(start)?;
            Inst::Jmp { target: r.u32f()? }
        }
        OP_JCC => {
            let cond = cond_from(r.byte()?, r.pos - 1)?;
            r.skip_header_pad(start)?;
            Inst::JCc { cond, target: r.u32f()? }
        }
        OP_CBR => {
            let cond = cond_from(r.byte()?, r.pos - 1)?;
            let rs1 = r.reg()?;
            let rs2 = r.reg()?;
            r.skip_header_pad(start)?;
            Inst::CBr { cond, rs1, rs2, target: r.u32f()? }
        }
        OP_JMPIND => {
            let rs = r.reg()?;
            r.skip_header_pad(start)?;
            Inst::JmpInd { rs }
        }
        OP_SETARG => {
            let idx = r.byte()?;
            let rs = r.reg()?;
            r.skip_header_pad(start)?;
            Inst::SetArg { idx, rs }
        }
        OP_LOADARG => {
            let idx = r.byte()?;
            let rd = r.reg()?;
            r.skip_header_pad(start)?;
            Inst::LoadArg { rd, idx }
        }
        OP_CALL => {
            r.skip_header_pad(start)?;
            Inst::Call { sym: Sym(r.u32f()?) }
        }
        OP_GETRET => {
            let rd = r.reg()?;
            r.skip_header_pad(start)?;
            Inst::GetRet { rd }
        }
        OP_SETRET => {
            let rs = r.reg()?;
            r.skip_header_pad(start)?;
            Inst::SetRet { rs }
        }
        OP_RET => {
            r.skip_header_pad(start)?;
            Inst::Ret
        }
        OP_PUSH => {
            let rs = r.reg()?;
            r.skip_header_pad(start)?;
            Inst::Push { rs }
        }
        OP_POP => {
            let rd = r.reg()?;
            r.skip_header_pad(start)?;
            Inst::Pop { rd }
        }
        OP_SYSCALL => {
            r.skip_header_pad(start)?;
            Inst::Syscall { num: r.u32f()? }
        }
        OP_HALT => {
            r.skip_header_pad(start)?;
            Inst::Halt
        }
        OP_NOP => {
            r.skip_header_pad(start)?;
            Inst::Nop
        }
        other => return Err(DecodeError::BadOpcode(other, start)),
    };
    Ok(inst)
}

/// Encode a function's instruction stream for `arch`.
///
/// # Panics
/// Panics if the code contains `Label` pseudo-instructions or virtual
/// registers (compile-pipeline bugs).
pub fn encode(code: &[Inst], arch: Arch) -> Vec<u8> {
    let mut w = Writer { buf: Vec::with_capacity(code.len() * 6), fixed: arch.fixed_width() };
    for inst in code {
        encode_inst(&mut w, inst, arch);
    }
    w.buf
}

/// Decode a function's byte stream, returning each instruction with its
/// byte size (used by the disassembler for basic-block size features).
pub fn decode_with_sizes(bytes: &[u8], arch: Arch) -> Result<Vec<(Inst, u32)>, DecodeError> {
    let mut r = Reader { buf: bytes, pos: 0, fixed: arch.fixed_width() };
    let mut out = Vec::new();
    while r.pos < bytes.len() {
        let start = r.pos;
        let inst = decode_inst(&mut r, arch)?;
        out.push((inst, (r.pos - start) as u32));
    }
    Ok(out)
}

/// Decode a function's byte stream.
pub fn decode(bytes: &[u8], arch: Arch) -> Result<Vec<Inst>, DecodeError> {
    Ok(decode_with_sizes(bytes, arch)?.into_iter().map(|(i, _)| i).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u16) -> Reg {
        Reg::phys(i)
    }

    fn sample_code() -> Vec<Inst> {
        vec![
            Inst::LoadArg { rd: r(0), idx: 0 },
            Inst::LoadArg { rd: r(1), idx: 1 },
            Inst::MovImm { rd: r(2), imm: 0 },
            Inst::MovImm { rd: r(3), imm: 123456789012345 },
            Inst::FMovImm { rd: r(4), imm: 2.5 },
            Inst::Cmp { rs1: r(2), rs2: r(1) },
            Inst::JCc { cond: Cond::Ge, target: 12 },
            Inst::LoadB { rd: r(3), base: r(0), idx: r(2) },
            Inst::Bin { op: BinOp::Add, rd: r(3), rs1: r(3), rs2: r(2) },
            Inst::BinImm { op: BinOp::Add, rd: r(2), rs: r(2), imm: 1 },
            Inst::StoreB { rs: r(3), base: r(0), idx: r(2) },
            Inst::Jmp { target: 5 },
            Inst::SetArg { idx: 0, rs: r(0) },
            Inst::Call { sym: Sym::import(2) },
            Inst::GetRet { rd: r(2) },
            Inst::Syscall { num: 1 },
            Inst::SetRet { rs: r(2) },
            Inst::Ret,
        ]
    }

    #[test]
    fn roundtrip_all_archs() {
        for arch in Arch::ALL {
            let code = sample_code();
            let bytes = encode(&code, arch);
            let back = decode(&bytes, arch).unwrap();
            assert_eq!(code, back, "roundtrip failed for {arch}");
        }
    }

    #[test]
    fn fixed_width_is_multiple_of_four_header() {
        let code = vec![Inst::Ret, Inst::Nop, Inst::Halt];
        let bytes = encode(&code, Arch::Arm32);
        assert_eq!(bytes.len(), 12);
    }

    #[test]
    fn variable_width_is_compact_for_small_imms() {
        let code = vec![Inst::MovImm { rd: r(0), imm: 7 }];
        let x86 = encode(&code, Arch::X86);
        let arm = encode(&code, Arch::Arm32);
        assert!(x86.len() < arm.len(), "x86 {} vs arm32 {}", x86.len(), arm.len());
    }

    #[test]
    fn amd64_alu_prefix_costs_a_byte() {
        let code = vec![Inst::Bin { op: BinOp::Add, rd: r(0), rs1: r(0), rs2: r(1) }];
        let x86 = encode(&code, Arch::X86);
        let amd = encode(&code, Arch::Amd64);
        assert_eq!(amd.len(), x86.len() + 1);
    }

    #[test]
    fn decode_rejects_truncated_stream() {
        let code = vec![Inst::MovImm { rd: r(0), imm: 123456789 }];
        let mut bytes = encode(&code, Arch::Amd64);
        bytes.truncate(bytes.len() - 1);
        assert!(matches!(decode(&bytes, Arch::Amd64), Err(DecodeError::UnexpectedEof)));
    }

    #[test]
    fn decode_rejects_bad_opcode() {
        let bytes = vec![0xEE, 0, 0, 0];
        assert!(matches!(decode(&bytes, Arch::X86), Err(DecodeError::BadOpcode(0xEE, 0))));
    }

    #[test]
    fn sizes_sum_to_total() {
        for arch in Arch::ALL {
            let code = sample_code();
            let bytes = encode(&code, arch);
            let sized = decode_with_sizes(&bytes, arch).unwrap();
            let total: u32 = sized.iter().map(|(_, s)| s).sum();
            assert_eq!(total as usize, bytes.len());
        }
    }

    #[test]
    #[should_panic]
    fn encoding_label_panics() {
        let _ = encode(&[Inst::Label(0)], Arch::X86);
    }
}
