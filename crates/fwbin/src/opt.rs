//! IR-level optimization passes: dead-code elimination, peephole
//! simplification, branch threading, redundant-jump removal, and return
//! merging (`Oz`). All passes operate on label-resolved code (branch
//! targets are instruction indices), so every structural change goes
//! through [`rewrite_with_expansion`] or [`remove_marked`], which maintain
//! branch-target correctness.

use crate::isa::{BinOp, Inst, Reg};
use std::collections::{HashMap, HashSet};

/// Rewrite `code` by expanding each instruction into zero or more
/// replacement instructions, fixing up branch targets. The callback
/// receives the original instruction and pushes replacements; branch
/// targets inside pushed instructions are interpreted as *original* indices
/// and remapped afterwards.
pub fn rewrite_with_expansion(
    code: &[Inst],
    mut f: impl FnMut(&Inst, &mut Vec<Inst>),
) -> Vec<Inst> {
    // First pass: compute the new start index of every original index.
    let mut buf = Vec::new();
    let mut new_start = Vec::with_capacity(code.len() + 1);
    let mut acc = 0u32;
    for inst in code {
        new_start.push(acc);
        buf.clear();
        f(inst, &mut buf);
        acc += buf.len() as u32;
    }
    new_start.push(acc); // targets one-past-the-end stay valid
    // Second pass: emit with retargeting.
    let mut out = Vec::with_capacity(acc as usize);
    for inst in code {
        buf.clear();
        f(inst, &mut buf);
        for mut ni in buf.drain(..) {
            if let Some(t) = ni.target() {
                ni.set_target(new_start[t as usize]);
            }
            out.push(ni);
        }
    }
    out
}

/// Remove the instructions whose `keep` flag is false, remapping branch
/// targets to the next kept instruction at or after the original target.
pub fn remove_marked(code: &[Inst], keep: &[bool]) -> Vec<Inst> {
    assert_eq!(code.len(), keep.len());
    let mut new_index = Vec::with_capacity(code.len() + 1);
    let mut acc = 0u32;
    for &k in keep {
        new_index.push(acc);
        if k {
            acc += 1;
        }
    }
    new_index.push(acc);
    let mut out = Vec::with_capacity(acc as usize);
    for (i, inst) in code.iter().enumerate() {
        if !keep[i] {
            continue;
        }
        let mut ni = *inst;
        if let Some(t) = ni.target() {
            // Next kept instruction at or after t.
            let mut t = t as usize;
            while t < code.len() && !keep[t] {
                t += 1;
            }
            ni.set_target(new_index[t.min(code.len())]);
        }
        out.push(ni);
    }
    out
}

/// Dead-code elimination: iteratively removes instructions that define a
/// register nobody reads and that have no side effects.
pub fn dead_code_elim(mut code: Vec<Inst>) -> Vec<Inst> {
    loop {
        let mut used: HashSet<Reg> = HashSet::new();
        for i in &code {
            for u in i.uses() {
                used.insert(u);
            }
        }
        let keep: Vec<bool> = code
            .iter()
            .map(|i| {
                if i.has_side_effects() {
                    return true;
                }
                match i.def() {
                    Some(d) => used.contains(&d),
                    None => !matches!(i, Inst::Nop),
                }
            })
            .collect();
        if keep.iter().all(|&k| k) {
            return code;
        }
        code = remove_marked(&code, &keep);
    }
}

/// Compute basic-block leader flags: `leader[i]` is true when instruction
/// `i` starts a basic block.
pub fn leaders(code: &[Inst]) -> Vec<bool> {
    let mut l = vec![false; code.len()];
    if !code.is_empty() {
        l[0] = true;
    }
    for (i, inst) in code.iter().enumerate() {
        if let Some(t) = inst.target() {
            if (t as usize) < code.len() {
                l[t as usize] = true;
            }
        }
        if (inst.is_terminator() || inst.is_cond_branch() || matches!(inst, Inst::Call { .. }))
            && i + 1 < code.len()
        {
            // Calls do not end blocks for CFG purposes, but being
            // conservative here only shortens peephole windows.
            if inst.is_terminator() || inst.is_cond_branch() {
                l[i + 1] = true;
            }
        }
    }
    l
}

/// Peephole simplification within basic blocks:
/// * `Mov rd, rd` → removed;
/// * `BinImm {Add|Sub|Or|Xor|Shl|Shr} rd, rs, 0` → `Mov rd, rs`;
/// * `MovImm v, imm` whose single use is the `rs2` of a later `Bin` in the
///   same block → folded into `BinImm` (the `MovImm` then falls to DCE).
pub fn peephole(code: Vec<Inst>) -> Vec<Inst> {
    // Use counts for single-use folding.
    let mut use_count: HashMap<Reg, u32> = HashMap::new();
    for i in &code {
        for u in i.uses() {
            *use_count.entry(u).or_insert(0) += 1;
        }
    }
    let block_starts = leaders(&code);
    let mut out = code.clone();

    // MovImm + Bin fusion within a block.
    let mut i = 0;
    while i < out.len() {
        if let Inst::MovImm { rd: v, imm } = out[i] {
            if use_count.get(&v).copied() == Some(1) {
                let mut j = i + 1;
                while j < out.len() && !block_starts[j] {
                    if out[j].def() == Some(v) {
                        break; // redefined before use
                    }
                    if let Inst::Bin { op, rd, rs1, rs2 } = out[j] {
                        if rs2 == v && rs1 != v {
                            out[j] = Inst::BinImm { op, rd, rs: rs1, imm };
                            break;
                        }
                    }
                    if out[j].uses().contains(&v) {
                        break; // used some other way; leave as is
                    }
                    j += 1;
                }
            }
        }
        i += 1;
    }

    // Local rewrites.
    for inst in out.iter_mut() {
        if let Inst::BinImm { op, rd, rs, imm: 0 } = *inst {
            if matches!(op, BinOp::Add | BinOp::Sub | BinOp::Or | BinOp::Xor | BinOp::Shl | BinOp::Shr)
            {
                *inst = Inst::Mov { rd, rs };
            }
        }
    }
    let keep: Vec<bool> = out
        .iter()
        .map(|i| !matches!(i, Inst::Mov { rd, rs } if rd == rs))
        .collect();
    remove_marked(&out, &keep)
}

/// Branch threading: retarget any branch whose destination is an
/// unconditional `Jmp` to that jump's final destination.
pub fn thread_branches(mut code: Vec<Inst>) -> Vec<Inst> {
    let n = code.len();
    let resolve = |start: u32, code: &[Inst]| -> u32 {
        let mut seen = HashSet::new();
        let mut t = start;
        while let Some(Inst::Jmp { target }) = code.get(t as usize) {
            if !seen.insert(t) {
                break; // jump cycle; leave as is
            }
            t = *target;
        }
        t.min(n as u32)
    };
    for i in 0..n {
        if let Some(t) = code[i].target() {
            let mut nt = resolve(t, &code);
            // A conditional/unconditional branch targeting itself is left
            // alone (degenerate infinite loop; never generated, but safe).
            if nt as usize == i {
                nt = t;
            }
            code[i].set_target(nt);
        }
    }
    code
}

/// Remove jumps to the immediately following instruction.
pub fn remove_fallthrough_jumps(code: Vec<Inst>) -> Vec<Inst> {
    let keep: Vec<bool> = code
        .iter()
        .enumerate()
        .map(|(i, inst)| !matches!(inst, Inst::Jmp { target } if *target as usize == i + 1))
        .collect();
    remove_marked(&code, &keep)
}

/// `Oz` return merging: all `Ret` instructions except the final one become
/// jumps to the final `Ret`.
pub fn merge_returns(mut code: Vec<Inst>) -> Vec<Inst> {
    let Some(last_ret) = code.iter().rposition(|i| matches!(i, Inst::Ret)) else {
        return code;
    };
    for inst in code.iter_mut().take(last_ret) {
        if matches!(inst, Inst::Ret) {
            *inst = Inst::Jmp { target: last_ret as u32 };
        }
    }
    code
}

/// The `O2`-and-above IR pipeline.
pub fn optimize(code: Vec<Inst>, size_opt: bool) -> Vec<Inst> {
    let mut c = code;
    for _ in 0..2 {
        c = peephole(c);
        c = dead_code_elim(c);
        c = thread_branches(c);
        c = remove_fallthrough_jumps(c);
    }
    if size_opt {
        c = merge_returns(c);
        c = remove_fallthrough_jumps(c);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Cond;

    fn v(i: u16) -> Reg {
        Reg::virt(i)
    }

    #[test]
    fn dce_removes_unused_defs() {
        let code = vec![
            Inst::MovImm { rd: v(0), imm: 1 },
            Inst::MovImm { rd: v(1), imm: 2 }, // dead
            Inst::SetRet { rs: v(0) },
            Inst::Ret,
        ];
        let out = dead_code_elim(code);
        assert_eq!(out.len(), 3);
        assert!(!out.iter().any(|i| matches!(i, Inst::MovImm { imm: 2, .. })));
    }

    #[test]
    fn dce_cascades() {
        // v1 only feeds dead v2; both should go.
        let code = vec![
            Inst::MovImm { rd: v(0), imm: 1 },
            Inst::MovImm { rd: v(1), imm: 2 },
            Inst::Bin { op: BinOp::Add, rd: v(2), rs1: v(1), rs2: v(1) },
            Inst::SetRet { rs: v(0) },
            Inst::Ret,
        ];
        let out = dead_code_elim(code);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn dce_preserves_branch_targets() {
        let code = vec![
            Inst::MovImm { rd: v(0), imm: 1 },
            Inst::MovImm { rd: v(9), imm: 9 }, // dead, branched over
            Inst::CBr { cond: Cond::Eq, rs1: v(0), rs2: v(0), target: 3 },
            Inst::SetRet { rs: v(0) },
            Inst::Ret,
        ];
        let out = dead_code_elim(code);
        // Target 3 (SetRet) shifts to 2 after removing index 1.
        let br = out.iter().find(|i| matches!(i, Inst::CBr { .. })).unwrap();
        assert_eq!(br.target(), Some(2));
        assert!(matches!(out[2], Inst::SetRet { .. }));
    }

    #[test]
    fn peephole_folds_movimm_into_binimm() {
        let code = vec![
            Inst::MovImm { rd: v(0), imm: 5 },
            Inst::MovImm { rd: v(1), imm: 7 },
            Inst::Bin { op: BinOp::Add, rd: v(2), rs1: v(0), rs2: v(1) },
            Inst::SetRet { rs: v(2) },
            Inst::Ret,
        ];
        let out = dead_code_elim(peephole(code));
        assert!(out.iter().any(|i| matches!(i, Inst::BinImm { op: BinOp::Add, imm: 7, .. })));
        // The MovImm for v1 became dead and was removed.
        assert_eq!(out.iter().filter(|i| matches!(i, Inst::MovImm { .. })).count(), 1);
    }

    #[test]
    fn peephole_rewrites_add_zero() {
        let code = vec![
            Inst::MovImm { rd: v(0), imm: 3 },
            Inst::BinImm { op: BinOp::Add, rd: v(1), rs: v(0), imm: 0 },
            Inst::SetRet { rs: v(1) },
            Inst::Ret,
        ];
        let out = peephole(code);
        assert!(out.iter().any(|i| matches!(i, Inst::Mov { .. })));
    }

    #[test]
    fn thread_branches_follows_jump_chains() {
        let code = vec![
            Inst::CBr { cond: Cond::Eq, rs1: v(0), rs2: v(0), target: 2 },
            Inst::Ret,
            Inst::Jmp { target: 4 },
            Inst::Nop,
            Inst::Ret,
        ];
        let out = thread_branches(code);
        assert_eq!(out[0].target(), Some(4));
    }

    #[test]
    fn fallthrough_jump_removed() {
        let code = vec![
            Inst::MovImm { rd: v(0), imm: 1 },
            Inst::Jmp { target: 2 },
            Inst::SetRet { rs: v(0) },
            Inst::Ret,
        ];
        let out = remove_fallthrough_jumps(code);
        assert_eq!(out.len(), 3);
        assert!(!out.iter().any(|i| matches!(i, Inst::Jmp { .. })));
    }

    #[test]
    fn merge_returns_leaves_single_ret() {
        let code = vec![
            Inst::SetRet { rs: v(0) },
            Inst::Ret,
            Inst::SetRet { rs: v(1) },
            Inst::Ret,
        ];
        let out = merge_returns(code);
        assert_eq!(out.iter().filter(|i| matches!(i, Inst::Ret)).count(), 1);
        assert!(matches!(out[1], Inst::Jmp { target: 3 }));
    }

    #[test]
    fn rewrite_with_expansion_remaps_targets() {
        let code = vec![
            Inst::CBr { cond: Cond::Eq, rs1: v(0), rs2: v(1), target: 2 },
            Inst::Nop,
            Inst::Ret,
        ];
        // Expand CBr into two instructions (like legalization does).
        let out = rewrite_with_expansion(&code, |inst, buf| match *inst {
            Inst::CBr { cond, rs1, rs2, target } => {
                buf.push(Inst::Cmp { rs1, rs2 });
                buf.push(Inst::JCc { cond, target });
            }
            other => buf.push(other),
        });
        assert_eq!(out.len(), 4);
        assert_eq!(out[1].target(), Some(3), "target shifted by the expansion");
    }

    #[test]
    fn remove_marked_retargets_past_removed() {
        let code = vec![
            Inst::Jmp { target: 2 },
            Inst::Nop,
            Inst::Nop, // removed; jump should land on Ret
            Inst::Ret,
        ];
        let keep = vec![true, true, false, true];
        let out = remove_marked(&code, &keep);
        assert_eq!(out[0].target(), Some(2));
        assert!(matches!(out[2], Inst::Ret));
    }
}
