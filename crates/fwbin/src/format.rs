//! The FWB binary container and firmware images.
//!
//! An FWB binary is the compiled form of one [`fwlang::Library`] for one
//! (architecture, optimization level) pair — the analog of an ELF `.so`.
//! It carries:
//!
//! * a **function table** (code bytes, parameter count, frame size, export
//!   flag) — the paper assumes the disassembler knows function boundaries,
//!   and this table is how our substrate provides them;
//! * a **string pool** (`.rodata`) and **global initializers** (`.data`);
//! * an **import table** naming the library routines the code calls;
//! * an optional **symbol table**: debug builds keep every function name
//!   (Dataset I ground truth); [`Binary::strip`] removes the names of
//!   non-exported functions, producing the stripped COTS binaries
//!   PATCHECKO targets. Exported names survive stripping, as in real ELF
//!   dynamic-symbol tables.
//!
//! Serialization uses a small length-prefixed format over `bytes`.

use crate::encode;
use crate::isa::{Arch, Inst, OptLevel};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

/// Magic bytes identifying an FWB container.
pub const FWB_MAGIC: [u8; 4] = *b"FWB1";

/// One function in a binary's function table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FuncRecord {
    /// Symbol name; `None` after stripping a non-exported function.
    pub name: Option<String>,
    /// Whether the function is in the dynamic export table.
    pub exported: bool,
    /// Encoded instruction bytes.
    pub code: Vec<u8>,
    /// Number of declared parameters.
    pub n_params: u8,
    /// Frame size in 8-byte slots (locals + spills).
    pub frame_slots: u32,
}

/// A compiled library binary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Binary {
    /// Source library name (container metadata, like an ELF soname).
    pub lib_name: String,
    /// Target architecture.
    pub arch: Arch,
    /// Optimization level used.
    pub opt: OptLevel,
    /// Function table.
    pub functions: Vec<FuncRecord>,
    /// Read-only string pool.
    pub strings: Vec<String>,
    /// Global variable initial values.
    pub globals: Vec<i64>,
    /// Imported library routine names, indexed by `Sym::import`.
    pub imports: Vec<String>,
}

impl Binary {
    /// Total number of functions.
    pub fn function_count(&self) -> usize {
        self.functions.len()
    }

    /// Decode the `idx`-th function's instruction stream.
    ///
    /// # Errors
    /// Returns a decode error if the code bytes are corrupt.
    pub fn decode_function(&self, idx: usize) -> Result<Vec<Inst>, encode::DecodeError> {
        encode::decode(&self.functions[idx].code, self.arch)
    }

    /// Find a function index by symbol name (`dlsym` analog: only works for
    /// functions whose name survived stripping).
    pub fn find_symbol(&self, name: &str) -> Option<usize> {
        self.functions.iter().position(|f| f.name.as_deref() == Some(name))
    }

    /// Strip the symbol table: non-exported functions lose their names.
    /// Exported names are retained (the dynamic loader needs them).
    pub fn strip(&mut self) {
        for f in &mut self.functions {
            if !f.exported {
                f.name = None;
            }
        }
    }

    /// Whether any non-exported function still carries a name.
    pub fn is_stripped(&self) -> bool {
        self.functions.iter().all(|f| f.exported || f.name.is_none())
    }

    /// Serialize to the FWB wire format.
    pub fn to_bytes(&self) -> Bytes {
        let mut b = BytesMut::new();
        b.put_slice(&FWB_MAGIC);
        b.put_u8(match self.arch {
            Arch::X86 => 0,
            Arch::Amd64 => 1,
            Arch::Arm32 => 2,
            Arch::Arm64 => 3,
        });
        b.put_u8(match self.opt {
            OptLevel::O0 => 0,
            OptLevel::O1 => 1,
            OptLevel::O2 => 2,
            OptLevel::O3 => 3,
            OptLevel::Oz => 4,
            OptLevel::Ofast => 5,
        });
        put_str(&mut b, &self.lib_name);
        b.put_u32_le(self.functions.len() as u32);
        for f in &self.functions {
            match &f.name {
                Some(n) => {
                    b.put_u8(1);
                    put_str(&mut b, n);
                }
                None => b.put_u8(0),
            }
            b.put_u8(f.exported as u8);
            b.put_u8(f.n_params);
            b.put_u32_le(f.frame_slots);
            b.put_u32_le(f.code.len() as u32);
            b.put_slice(&f.code);
        }
        b.put_u32_le(self.strings.len() as u32);
        for s in &self.strings {
            put_str(&mut b, s);
        }
        b.put_u32_le(self.globals.len() as u32);
        for g in &self.globals {
            b.put_i64_le(*g);
        }
        b.put_u32_le(self.imports.len() as u32);
        for i in &self.imports {
            put_str(&mut b, i);
        }
        b.freeze()
    }

    /// Deserialize from the FWB wire format.
    ///
    /// # Errors
    /// Returns a descriptive error on malformed input.
    pub fn from_bytes(mut data: &[u8]) -> Result<Binary, FormatError> {
        let b = &mut data;
        let magic = get_bytes(b, 4)?;
        if magic != FWB_MAGIC {
            return Err(FormatError::BadMagic);
        }
        let arch = match get_u8(b)? {
            0 => Arch::X86,
            1 => Arch::Amd64,
            2 => Arch::Arm32,
            3 => Arch::Arm64,
            v => return Err(FormatError::BadEnum("arch", v)),
        };
        let opt = match get_u8(b)? {
            0 => OptLevel::O0,
            1 => OptLevel::O1,
            2 => OptLevel::O2,
            3 => OptLevel::O3,
            4 => OptLevel::Oz,
            5 => OptLevel::Ofast,
            v => return Err(FormatError::BadEnum("opt", v)),
        };
        let lib_name = get_str(b)?;
        let nf = get_u32(b)? as usize;
        let mut functions = Vec::with_capacity(nf.min(1 << 20));
        for _ in 0..nf {
            let name = if get_u8(b)? == 1 { Some(get_str(b)?) } else { None };
            let exported = get_u8(b)? != 0;
            let n_params = get_u8(b)?;
            let frame_slots = get_u32(b)?;
            let code_len = get_u32(b)? as usize;
            let code = get_bytes(b, code_len)?.to_vec();
            functions.push(FuncRecord { name, exported, code, n_params, frame_slots });
        }
        let ns = get_u32(b)? as usize;
        let mut strings = Vec::with_capacity(ns.min(1 << 20));
        for _ in 0..ns {
            strings.push(get_str(b)?);
        }
        let ng = get_u32(b)? as usize;
        let mut globals = Vec::with_capacity(ng.min(1 << 20));
        for _ in 0..ng {
            globals.push(get_i64(b)?);
        }
        let ni = get_u32(b)? as usize;
        let mut imports = Vec::with_capacity(ni.min(1 << 20));
        for _ in 0..ni {
            imports.push(get_str(b)?);
        }
        Ok(Binary { lib_name, arch, opt, functions, strings, globals, imports })
    }
}

/// Error reading the FWB wire format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormatError {
    /// Wrong magic bytes.
    BadMagic,
    /// Stream ended early.
    Truncated,
    /// Invalid enum discriminant.
    BadEnum(&'static str, u8),
    /// String field was not UTF-8.
    BadString,
}

impl std::fmt::Display for FormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FormatError::BadMagic => write!(f, "not an FWB container (bad magic)"),
            FormatError::Truncated => write!(f, "truncated FWB container"),
            FormatError::BadEnum(field, v) => write!(f, "invalid {field} value {v}"),
            FormatError::BadString => write!(f, "invalid UTF-8 in string field"),
        }
    }
}

impl std::error::Error for FormatError {}

fn put_str(b: &mut BytesMut, s: &str) {
    b.put_u32_le(s.len() as u32);
    b.put_slice(s.as_bytes());
}

fn get_u8(b: &mut &[u8]) -> Result<u8, FormatError> {
    if b.remaining() < 1 {
        return Err(FormatError::Truncated);
    }
    Ok(b.get_u8())
}

fn get_u32(b: &mut &[u8]) -> Result<u32, FormatError> {
    if b.remaining() < 4 {
        return Err(FormatError::Truncated);
    }
    Ok(b.get_u32_le())
}

fn get_i64(b: &mut &[u8]) -> Result<i64, FormatError> {
    if b.remaining() < 8 {
        return Err(FormatError::Truncated);
    }
    Ok(b.get_i64_le())
}

fn get_bytes<'a>(b: &mut &'a [u8], n: usize) -> Result<&'a [u8], FormatError> {
    if b.remaining() < n {
        return Err(FormatError::Truncated);
    }
    let (head, tail) = b.split_at(n);
    *b = tail;
    Ok(head)
}

fn get_str(b: &mut &[u8]) -> Result<String, FormatError> {
    let n = get_u32(b)? as usize;
    let raw = get_bytes(b, n)?;
    String::from_utf8(raw.to_vec()).map_err(|_| FormatError::BadString)
}

/// A device firmware image: a named set of library binaries, the unit
/// PATCHECKO scans (the paper's Android Things 1.0 / Pixel 2 XL images).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FirmwareImage {
    /// Device name, e.g. `android_things_1.0`.
    pub device: String,
    /// Security-patch-level string, e.g. `2018-05`.
    pub patch_level: String,
    /// The image's library binaries.
    pub binaries: Vec<Binary>,
}

impl FirmwareImage {
    /// Create an empty image.
    pub fn new(device: impl Into<String>, patch_level: impl Into<String>) -> FirmwareImage {
        FirmwareImage { device: device.into(), patch_level: patch_level.into(), binaries: Vec::new() }
    }

    /// Total function count across all binaries (the paper reports 440,532
    /// for Android Things 1.0).
    pub fn total_functions(&self) -> usize {
        self.binaries.iter().map(Binary::function_count).sum()
    }

    /// Find a binary by library name.
    pub fn binary(&self, lib_name: &str) -> Option<&Binary> {
        self.binaries.iter().find(|b| b.lib_name == lib_name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Reg;

    fn sample_binary() -> Binary {
        let code = encode::encode(
            &[
                Inst::LoadArg { rd: Reg::phys(0), idx: 0 },
                Inst::SetRet { rs: Reg::phys(0) },
                Inst::Ret,
            ],
            Arch::Arm64,
        );
        Binary {
            lib_name: "libdemo".into(),
            arch: Arch::Arm64,
            opt: OptLevel::O2,
            functions: vec![
                FuncRecord {
                    name: Some("exported_fn".into()),
                    exported: true,
                    code: code.clone(),
                    n_params: 1,
                    frame_slots: 0,
                },
                FuncRecord {
                    name: Some("internal_fn".into()),
                    exported: false,
                    code,
                    n_params: 1,
                    frame_slots: 2,
                },
            ],
            strings: vec!["hello".into()],
            globals: vec![42, -7],
            imports: vec!["memmove".into()],
        }
    }

    #[test]
    fn wire_roundtrip() {
        let bin = sample_binary();
        let bytes = bin.to_bytes();
        let back = Binary::from_bytes(&bytes).unwrap();
        assert_eq!(bin, back);
    }

    #[test]
    fn strip_removes_internal_names_only() {
        let mut bin = sample_binary();
        assert!(!bin.is_stripped());
        bin.strip();
        assert!(bin.is_stripped());
        assert_eq!(bin.functions[0].name.as_deref(), Some("exported_fn"));
        assert_eq!(bin.functions[1].name, None);
        assert_eq!(bin.find_symbol("internal_fn"), None);
        assert_eq!(bin.find_symbol("exported_fn"), Some(0));
    }

    #[test]
    fn stripped_binary_roundtrips() {
        let mut bin = sample_binary();
        bin.strip();
        let back = Binary::from_bytes(&bin.to_bytes()).unwrap();
        assert_eq!(bin, back);
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert_eq!(Binary::from_bytes(b"nope"), Err(FormatError::BadMagic));
        assert_eq!(Binary::from_bytes(b"FW"), Err(FormatError::Truncated));
        let mut bytes = sample_binary().to_bytes().to_vec();
        bytes.truncate(bytes.len() / 2);
        assert!(Binary::from_bytes(&bytes).is_err());
    }

    #[test]
    fn decode_function_works() {
        let bin = sample_binary();
        let insts = bin.decode_function(0).unwrap();
        assert_eq!(insts.len(), 3);
        assert!(matches!(insts.last(), Some(Inst::Ret)));
    }

    #[test]
    fn firmware_image_lookup() {
        let mut img = FirmwareImage::new("android_things_1.0", "2018-05");
        img.binaries.push(sample_binary());
        assert_eq!(img.total_functions(), 2);
        assert!(img.binary("libdemo").is_some());
        assert!(img.binary("libmissing").is_none());
    }
}
