//! The synthetic instruction set architecture (ISA).
//!
//! One instruction enum serves all four target architectures; the
//! architectures differ in register-file size, operand form (two-operand
//! CISC style vs three-operand RISC style), compare/branch style (separate
//! `Cmp` + `JCc` vs fused `CBr`), and byte encoding (variable-width vs
//! fixed-width). The legalizer (`crate::legalize`) enforces each
//! architecture's constraints before encoding.
//!
//! Registers are a flat `Reg(u16)` space: indices below
//! [`Reg::FIRST_VIRTUAL`] are physical machine registers; higher indices are
//! compiler-internal virtual registers that must be eliminated by register
//! allocation before encoding.

pub use fwlang::ast::BinOp;
use serde::{Deserialize, Serialize};

/// A target architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Arch {
    /// 32-bit x86-like: 8 registers, two-operand, `Cmp`+`JCc`, variable
    /// width encoding.
    X86,
    /// 64-bit x86-like: 16 registers, two-operand, `Cmp`+`JCc`, variable
    /// width encoding.
    Amd64,
    /// 32-bit ARM-like: 16 registers, three-operand, `Cmp`+`JCc`, fixed
    /// width encoding.
    Arm32,
    /// 64-bit ARM-like: 31 registers, three-operand, fused compare-branch,
    /// fixed width encoding.
    Arm64,
}

impl Arch {
    /// All architectures, in the paper's enumeration order.
    pub const ALL: [Arch; 4] = [Arch::X86, Arch::Amd64, Arch::Arm32, Arch::Arm64];

    /// Number of allocatable general-purpose registers.
    pub fn num_regs(self) -> u16 {
        match self {
            Arch::X86 => 6,
            Arch::Amd64 => 14,
            Arch::Arm32 => 12,
            Arch::Arm64 => 28,
        }
    }

    /// Whether ALU instructions are two-operand (`rd == rs1` required).
    pub fn two_operand(self) -> bool {
        matches!(self, Arch::X86 | Arch::Amd64)
    }

    /// Whether conditional branches fuse the comparison (`CBr`) rather than
    /// consuming flags set by a separate `Cmp`.
    pub fn fused_compare_branch(self) -> bool {
        matches!(self, Arch::Arm64)
    }

    /// Whether the encoding is fixed-width (4-byte units) rather than
    /// variable-width.
    pub fn fixed_width(self) -> bool {
        matches!(self, Arch::Arm32 | Arch::Arm64)
    }

    /// Short lowercase name (used in binary metadata and reports).
    pub fn name(self) -> &'static str {
        match self {
            Arch::X86 => "x86",
            Arch::Amd64 => "amd64",
            Arch::Arm32 => "arm32",
            Arch::Arm64 => "arm64",
        }
    }
}

impl std::fmt::Display for Arch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Optimization level, mirroring the paper's Clang invocations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OptLevel {
    /// No optimization; locals live in stack slots.
    O0,
    /// Register allocation + constant folding.
    O1,
    /// O1 + dead-code elimination, peephole, branch threading.
    O2,
    /// O2 + loop unrolling and inlining of small callees.
    O3,
    /// Optimize for size: O2 passes, compact prologue, merged returns,
    /// no unrolling.
    Oz,
    /// O3 + floating-point contraction (fused multiply-add).
    Ofast,
}

impl OptLevel {
    /// All levels, in the paper's enumeration order.
    pub const ALL: [OptLevel; 6] =
        [OptLevel::O0, OptLevel::O1, OptLevel::O2, OptLevel::O3, OptLevel::Oz, OptLevel::Ofast];

    /// Short name used in binary metadata.
    pub fn name(self) -> &'static str {
        match self {
            OptLevel::O0 => "O0",
            OptLevel::O1 => "O1",
            OptLevel::O2 => "O2",
            OptLevel::O3 => "O3",
            OptLevel::Oz => "Oz",
            OptLevel::Ofast => "Ofast",
        }
    }
}

impl std::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A register operand. Indices `< FIRST_VIRTUAL` are physical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Reg(pub u16);

impl Reg {
    /// First virtual register index.
    pub const FIRST_VIRTUAL: u16 = 64;

    /// Construct a physical register.
    ///
    /// # Panics
    /// Panics if `i >= FIRST_VIRTUAL`.
    pub fn phys(i: u16) -> Reg {
        assert!(i < Reg::FIRST_VIRTUAL, "physical register index out of range");
        Reg(i)
    }

    /// Construct the `i`-th virtual register.
    pub fn virt(i: u16) -> Reg {
        Reg(Reg::FIRST_VIRTUAL + i)
    }

    /// Whether this is a virtual (pre-register-allocation) register.
    pub fn is_virtual(self) -> bool {
        self.0 >= Reg::FIRST_VIRTUAL
    }
}

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_virtual() {
            write!(f, "v{}", self.0 - Reg::FIRST_VIRTUAL)
        } else {
            write!(f, "r{}", self.0)
        }
    }
}

/// Branch/compare condition codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than (signed).
    Lt,
    /// Less than or equal (signed).
    Le,
    /// Greater than (signed).
    Gt,
    /// Greater than or equal (signed).
    Ge,
}

impl Cond {
    /// Negated condition.
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Le => Cond::Gt,
            Cond::Gt => Cond::Le,
            Cond::Ge => Cond::Lt,
        }
    }
}

impl From<fwlang::ast::CmpOp> for Cond {
    fn from(op: fwlang::ast::CmpOp) -> Cond {
        use fwlang::ast::CmpOp;
        match op {
            CmpOp::Eq => Cond::Eq,
            CmpOp::Ne => Cond::Ne,
            CmpOp::Lt => Cond::Lt,
            CmpOp::Le => Cond::Le,
            CmpOp::Gt => Cond::Gt,
            CmpOp::Ge => Cond::Ge,
        }
    }
}

/// A call target: either a function defined in the same binary (resolved by
/// function-table index) or an imported library routine (resolved by
/// import-table index). Packed into a `u32` with the high bit marking
/// imports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Sym(pub u32);

impl Sym {
    const IMPORT_BIT: u32 = 1 << 31;

    /// A call to the `i`-th function of the same binary.
    pub fn local(i: u32) -> Sym {
        assert!(i < Sym::IMPORT_BIT);
        Sym(i)
    }

    /// A call to the `i`-th entry of the import table.
    pub fn import(i: u32) -> Sym {
        assert!(i < Sym::IMPORT_BIT);
        Sym(i | Sym::IMPORT_BIT)
    }

    /// Whether this is an import-table reference.
    pub fn is_import(self) -> bool {
        self.0 & Sym::IMPORT_BIT != 0
    }

    /// The table index (local function index or import index).
    pub fn index(self) -> u32 {
        self.0 & !Sym::IMPORT_BIT
    }
}

/// One machine instruction.
///
/// Branch targets are *instruction indices* within the containing function
/// (the synthetic encodings store them directly; see `crate::encode`).
/// `Label` is a compiler-internal pseudo-instruction that must not survive
/// into encoded code.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[allow(missing_docs)] // field names are self-describing
pub enum Inst {
    /// Pseudo-instruction marking a branch target during lowering. Removed
    /// by `crate::lower::resolve_labels`.
    Label(u32),
    /// `rd = imm`.
    MovImm { rd: Reg, imm: i64 },
    /// `rd = imm` (floating point).
    FMovImm { rd: Reg, imm: f64 },
    /// `rd = rs`.
    Mov { rd: Reg, rs: Reg },
    /// `rd = &strings[sid]` (address of a read-only string).
    LoadStr { rd: Reg, sid: u32 },
    /// `rd = globals[gid]`.
    LoadGlobal { rd: Reg, gid: u32 },
    /// `globals[gid] = rs`.
    StoreGlobal { gid: u32, rs: Reg },
    /// `rd = rs1 op rs2` (integer; wrapping semantics).
    Bin { op: BinOp, rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs op imm` (integer; wrapping semantics).
    BinImm { op: BinOp, rd: Reg, rs: Reg, imm: i64 },
    /// `rd = rs1 op rs2` (floating point).
    FBin { op: BinOp, rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = rs1 * rs2 + rs3` (fused multiply-add, emitted at `Ofast`).
    FMulAdd { rd: Reg, rs1: Reg, rs2: Reg, rs3: Reg },
    /// `rd = -rs`.
    Neg { rd: Reg, rs: Reg },
    /// `rd = (rs == 0) ? 1 : 0`.
    Not { rd: Reg, rs: Reg },
    /// Compare `rs1` and `rs2`, setting flags (two-operand architectures).
    Cmp { rs1: Reg, rs2: Reg },
    /// `rd = flags satisfy cond ? 1 : 0` (consumes flags from `Cmp`).
    SetCc { cond: Cond, rd: Reg },
    /// `rd = (rs1 cond rs2) ? 1 : 0` (fused form; legalized to `Cmp`+`SetCc`
    /// on flag architectures).
    CmpSet { cond: Cond, rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd = zero_extend(byte at rs_base[rs_idx])`.
    LoadB { rd: Reg, base: Reg, idx: Reg },
    /// `rs_base[rs_idx] = low_byte(rs)`.
    StoreB { rs: Reg, base: Reg, idx: Reg },
    /// `rd = frame_slot[slot]` (64-bit).
    LoadSlot { rd: Reg, slot: u32 },
    /// `frame_slot[slot] = rs` (64-bit).
    StoreSlot { rs: Reg, slot: u32 },
    /// Unconditional branch to instruction index `target`.
    Jmp { target: u32 },
    /// Conditional branch consuming flags (two-operand architectures).
    JCc { cond: Cond, target: u32 },
    /// Fused compare-and-branch (`Arm64`); legalized to `Cmp`+`JCc`
    /// elsewhere.
    CBr { cond: Cond, rs1: Reg, rs2: Reg, target: u32 },
    /// Indirect jump through a register (jump tables).
    JmpInd { rs: Reg },
    /// `outgoing_args[idx] = rs`.
    SetArg { idx: u8, rs: Reg },
    /// `rd = incoming_args[idx]`.
    LoadArg { rd: Reg, idx: u8 },
    /// Call a function or import.
    Call { sym: Sym },
    /// `rd = return value of the last call`.
    GetRet { rd: Reg },
    /// Set this function's return value.
    SetRet { rs: Reg },
    /// Return to caller.
    Ret,
    /// Push `rs` onto the machine stack.
    Push { rs: Reg },
    /// Pop the machine stack into `rd`.
    Pop { rd: Reg },
    /// Invoke operating-system service `num` (arguments via `SetArg`).
    Syscall { num: u32 },
    /// Abort execution (no-return trap).
    Halt,
    /// No operation.
    Nop,
}

impl Inst {
    /// Registers read by this instruction.
    pub fn uses(&self) -> Vec<Reg> {
        match *self {
            Inst::Mov { rs, .. }
            | Inst::StoreGlobal { rs, .. }
            | Inst::Neg { rs, .. }
            | Inst::Not { rs, .. }
            | Inst::StoreSlot { rs, .. }
            | Inst::SetArg { rs, .. }
            | Inst::SetRet { rs }
            | Inst::Push { rs }
            | Inst::JmpInd { rs } => vec![rs],
            Inst::Bin { rs1, rs2, .. }
            | Inst::FBin { rs1, rs2, .. }
            | Inst::Cmp { rs1, rs2 }
            | Inst::CmpSet { rs1, rs2, .. }
            | Inst::CBr { rs1, rs2, .. } => vec![rs1, rs2],
            Inst::FMulAdd { rs1, rs2, rs3, .. } => vec![rs1, rs2, rs3],
            Inst::BinImm { rs, .. } => vec![rs],
            Inst::LoadB { base, idx, .. } => vec![base, idx],
            Inst::StoreB { rs, base, idx } => vec![rs, base, idx],
            _ => vec![],
        }
    }

    /// Register written by this instruction, if any.
    pub fn def(&self) -> Option<Reg> {
        match *self {
            Inst::MovImm { rd, .. }
            | Inst::FMovImm { rd, .. }
            | Inst::Mov { rd, .. }
            | Inst::LoadStr { rd, .. }
            | Inst::LoadGlobal { rd, .. }
            | Inst::Bin { rd, .. }
            | Inst::BinImm { rd, .. }
            | Inst::FBin { rd, .. }
            | Inst::FMulAdd { rd, .. }
            | Inst::Neg { rd, .. }
            | Inst::Not { rd, .. }
            | Inst::SetCc { rd, .. }
            | Inst::CmpSet { rd, .. }
            | Inst::LoadB { rd, .. }
            | Inst::LoadSlot { rd, .. }
            | Inst::LoadArg { rd, .. }
            | Inst::GetRet { rd }
            | Inst::Pop { rd } => Some(rd),
            _ => None,
        }
    }

    /// Replace every register operand through `f`.
    pub fn map_regs(&mut self, mut f: impl FnMut(Reg) -> Reg) {
        match self {
            Inst::MovImm { rd, .. }
            | Inst::FMovImm { rd, .. }
            | Inst::LoadStr { rd, .. }
            | Inst::LoadGlobal { rd, .. }
            | Inst::SetCc { rd, .. }
            | Inst::LoadSlot { rd, .. }
            | Inst::LoadArg { rd, .. }
            | Inst::GetRet { rd }
            | Inst::Pop { rd } => *rd = f(*rd),
            Inst::Mov { rd, rs } | Inst::Neg { rd, rs } | Inst::Not { rd, rs } => {
                *rd = f(*rd);
                *rs = f(*rs);
            }
            Inst::StoreGlobal { rs, .. }
            | Inst::StoreSlot { rs, .. }
            | Inst::SetArg { rs, .. }
            | Inst::SetRet { rs }
            | Inst::Push { rs }
            | Inst::JmpInd { rs } => *rs = f(*rs),
            Inst::Bin { rd, rs1, rs2, .. } | Inst::FBin { rd, rs1, rs2, .. } => {
                *rd = f(*rd);
                *rs1 = f(*rs1);
                *rs2 = f(*rs2);
            }
            Inst::FMulAdd { rd, rs1, rs2, rs3 } => {
                *rd = f(*rd);
                *rs1 = f(*rs1);
                *rs2 = f(*rs2);
                *rs3 = f(*rs3);
            }
            Inst::BinImm { rd, rs, .. } => {
                *rd = f(*rd);
                *rs = f(*rs);
            }
            Inst::Cmp { rs1, rs2 } => {
                *rs1 = f(*rs1);
                *rs2 = f(*rs2);
            }
            Inst::CmpSet { rd, rs1, rs2, .. } => {
                *rd = f(*rd);
                *rs1 = f(*rs1);
                *rs2 = f(*rs2);
            }
            Inst::CBr { rs1, rs2, .. } => {
                *rs1 = f(*rs1);
                *rs2 = f(*rs2);
            }
            Inst::LoadB { rd, base, idx } => {
                *rd = f(*rd);
                *base = f(*base);
                *idx = f(*idx);
            }
            Inst::StoreB { rs, base, idx } => {
                *rs = f(*rs);
                *base = f(*base);
                *idx = f(*idx);
            }
            Inst::Label(_)
            | Inst::Jmp { .. }
            | Inst::JCc { .. }
            | Inst::Call { .. }
            | Inst::Ret
            | Inst::Syscall { .. }
            | Inst::Halt
            | Inst::Nop => {}
        }
    }

    /// Branch target, if this is a direct branch.
    pub fn target(&self) -> Option<u32> {
        match *self {
            Inst::Jmp { target } | Inst::JCc { target, .. } | Inst::CBr { target, .. } => {
                Some(target)
            }
            _ => None,
        }
    }

    /// Replace the branch target, if this is a direct branch.
    pub fn set_target(&mut self, t: u32) {
        match self {
            Inst::Jmp { target } | Inst::JCc { target, .. } | Inst::CBr { target, .. } => {
                *target = t
            }
            _ => {}
        }
    }

    /// Whether control never falls through to the next instruction.
    pub fn is_terminator(&self) -> bool {
        matches!(self, Inst::Jmp { .. } | Inst::JmpInd { .. } | Inst::Ret | Inst::Halt)
    }

    /// Whether this is a conditional branch.
    pub fn is_cond_branch(&self) -> bool {
        matches!(self, Inst::JCc { .. } | Inst::CBr { .. })
    }

    /// Whether this instruction has side effects beyond its register def
    /// (so dead-code elimination must keep it even if the def is unused).
    pub fn has_side_effects(&self) -> bool {
        matches!(
            self,
            Inst::StoreGlobal { .. }
                | Inst::StoreB { .. }
                | Inst::StoreSlot { .. }
                | Inst::Jmp { .. }
                | Inst::JCc { .. }
                | Inst::CBr { .. }
                | Inst::JmpInd { .. }
                | Inst::SetArg { .. }
                | Inst::Call { .. }
                | Inst::GetRet { .. } // pairs with a Call; keep
                | Inst::SetRet { .. }
                | Inst::Ret
                | Inst::Push { .. }
                | Inst::Pop { .. }
                | Inst::Syscall { .. }
                | Inst::Halt
                | Inst::Label(_)
                | Inst::Cmp { .. } // sets flags consumed by a later JCc
                | Inst::SetCc { .. }
        )
    }

    /// Whether this is an integer or floating-point arithmetic instruction
    /// (the classification used by the paper's feature tables).
    pub fn is_arith(&self) -> bool {
        matches!(
            self,
            Inst::Bin { .. }
                | Inst::BinImm { .. }
                | Inst::Neg { .. }
                | Inst::Not { .. }
                | Inst::FBin { .. }
                | Inst::FMulAdd { .. }
        )
    }

    /// Whether this is a floating-point arithmetic instruction.
    pub fn is_arith_fp(&self) -> bool {
        matches!(self, Inst::FBin { .. } | Inst::FMulAdd { .. } | Inst::FMovImm { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_virtual_split() {
        assert!(!Reg::phys(0).is_virtual());
        assert!(!Reg::phys(63).is_virtual());
        assert!(Reg::virt(0).is_virtual());
        assert_eq!(Reg::virt(3).0, Reg::FIRST_VIRTUAL + 3);
    }

    #[test]
    #[should_panic]
    fn reg_phys_rejects_virtual_range() {
        let _ = Reg::phys(64);
    }

    #[test]
    fn sym_packing_roundtrips() {
        let l = Sym::local(17);
        assert!(!l.is_import());
        assert_eq!(l.index(), 17);
        let i = Sym::import(3);
        assert!(i.is_import());
        assert_eq!(i.index(), 3);
    }

    #[test]
    fn cond_negate_involution() {
        for c in [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Le, Cond::Gt, Cond::Ge] {
            assert_eq!(c.negate().negate(), c);
        }
    }

    #[test]
    fn uses_and_defs_are_consistent() {
        let i = Inst::Bin { op: BinOp::Add, rd: Reg::virt(0), rs1: Reg::virt(1), rs2: Reg::virt(2) };
        assert_eq!(i.def(), Some(Reg::virt(0)));
        assert_eq!(i.uses(), vec![Reg::virt(1), Reg::virt(2)]);
    }

    #[test]
    fn map_regs_renames_everything() {
        let mut i =
            Inst::FMulAdd { rd: Reg::virt(0), rs1: Reg::virt(1), rs2: Reg::virt(2), rs3: Reg::virt(3) };
        i.map_regs(|r| Reg(r.0 + 1));
        assert_eq!(i.def(), Some(Reg(Reg::FIRST_VIRTUAL + 1)));
        assert_eq!(i.uses().len(), 3);
    }

    #[test]
    fn arch_profiles_differ() {
        assert!(Arch::X86.two_operand());
        assert!(!Arch::Arm64.two_operand());
        assert!(Arch::Arm64.fused_compare_branch());
        assert!(!Arch::Arm32.fused_compare_branch());
        assert!(Arch::Arm32.fixed_width());
        assert!(!Arch::Amd64.fixed_width());
        assert!(Arch::Arm64.num_regs() > Arch::X86.num_regs());
    }

    #[test]
    fn terminators_and_branches_classified() {
        assert!(Inst::Ret.is_terminator());
        assert!(Inst::Halt.is_terminator());
        assert!(Inst::Jmp { target: 0 }.is_terminator());
        assert!(!Inst::JCc { cond: Cond::Eq, target: 0 }.is_terminator());
        assert!(Inst::JCc { cond: Cond::Eq, target: 0 }.is_cond_branch());
    }
}
