//! # fwbin — synthetic firmware compiler and binary container
//!
//! Compiles [`fwlang`] libraries to four synthetic ISAs (x86, amd64, arm32,
//! arm64) at six optimization levels (`O0`..`Ofast`), producing the
//! cross-platform binary variants PATCHECKO's analyses operate on, packed
//! into FWB containers (the ELF `.so` analog) and [`format::FirmwareImage`]
//! device images.
//!
//! Pipeline: [`astopt`] (fold/inline/unroll) → [`lower`] → [`opt`] (DCE,
//! peephole, threading) → [`regalloc`] (linear scan) → [`legalize`]
//! (per-arch forms) → [`encode`] (per-arch byte formats).
//!
//! ## Example
//!
//! ```
//! use fwbin::{compile_library, Arch, OptLevel};
//! use fwlang::gen::Generator;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let lib = Generator::new(1).library("libdemo");
//! let mut bin = compile_library(&lib, Arch::Arm64, OptLevel::O2)?;
//! bin.strip(); // drop internal symbol names, like a release firmware
//! assert_eq!(bin.function_count(), lib.functions.len());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod astopt;
pub mod compile;
pub mod encode;
pub mod format;
pub mod isa;
pub mod legalize;
pub mod lower;
pub mod opt;
pub mod regalloc;

pub use compile::{compile_function, compile_library, CompileError};
pub use format::{Binary, FirmwareImage, FuncRecord};
pub use isa::{Arch, Cond, Inst, OptLevel, Reg, Sym};
