//! Property tests for CFG recovery: structural invariants hold for every
//! compiled function of randomly generated libraries on every platform.

use disasm::BlockKind;
use fwbin::isa::{Arch, OptLevel};
use fwlang::gen::Generator;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    /// Blocks tile the instruction stream exactly; edges are consistent
    /// with predecessor lists; terminator blocks have no successors.
    #[test]
    fn cfg_structural_invariants(
        seed in 0u64..5000,
        arch_idx in 0usize..4,
        opt_idx in 0usize..6,
    ) {
        let arch = Arch::ALL[arch_idx];
        let opt = OptLevel::ALL[opt_idx];
        let lib = Generator::new(seed).library_sized("libp", 4);
        let bin = fwbin::compile_library(&lib, arch, opt).unwrap();
        for i in 0..bin.function_count() {
            let dis = disasm::disassemble(&bin, i).unwrap();
            let cfg = &dis.cfg;

            // 1. Tiling.
            let mut covered = 0u32;
            for b in &cfg.blocks {
                prop_assert_eq!(b.start, covered);
                prop_assert!(b.end > b.start);
                covered = b.end;
            }
            prop_assert_eq!(covered, dis.inst_count());

            // 2. Edge consistency: succs/preds mirror each other; totals
            //    match num_edges.
            let total: usize = cfg.blocks.iter().map(|b| b.succs.len()).sum();
            prop_assert_eq!(total as u32, cfg.num_edges);
            for (v, b) in cfg.blocks.iter().enumerate() {
                for &s in &b.succs {
                    prop_assert!((s as usize) < cfg.blocks.len());
                    prop_assert!(
                        cfg.blocks[s as usize].preds.contains(&(v as u32)),
                        "edge {}->{} missing pred",
                        v,
                        s
                    );
                }
            }

            // 3. Return/trap blocks have no successors.
            for b in &cfg.blocks {
                if matches!(b.kind, BlockKind::Ret | BlockKind::NoRet | BlockKind::ExternNoRet) {
                    prop_assert!(b.succs.is_empty(), "{:?} block with successors", b.kind);
                }
            }

            // 4. Byte sizes: block byte sizes sum to the function size.
            let byte_total: u32 = cfg.blocks.iter().map(|b| b.byte_size).sum();
            prop_assert_eq!(byte_total, dis.byte_size());

            // 5. Compiled functions always end in a terminator, so no
            //    Error blocks.
            prop_assert_eq!(cfg.count_kind(BlockKind::Error), 0);
        }
    }

    /// Betweenness centrality is non-negative, zero at the entry of a
    /// straight-line function, and stable across repeated computation.
    #[test]
    fn centrality_invariants(seed in 0u64..2000) {
        let lib = Generator::new(seed).library_sized("libp", 3);
        let bin = fwbin::compile_library(&lib, Arch::Arm64, OptLevel::O1).unwrap();
        for i in 0..bin.function_count() {
            let dis = disasm::disassemble(&bin, i).unwrap();
            let a = disasm::graph::betweenness_centrality(&dis.cfg);
            let b = disasm::graph::betweenness_centrality(&dis.cfg);
            prop_assert_eq!(&a, &b, "deterministic");
            for v in &a {
                prop_assert!(*v >= 0.0);
            }
            // Entry has no predecessors on any path, so it mediates no
            // shortest path and has zero centrality... unless a loop makes
            // it internal; allow either but assert finiteness.
            for v in &a {
                prop_assert!(v.is_finite());
            }
        }
    }
}
