//! Human-readable assembly listings — the disassembler view an analyst
//! sees in IDA (used by the CLI's `inspect --asm` and by examples).

use crate::FunctionDisasm;
use fwbin::format::Binary;
use fwbin::isa::{BinOp, Cond, Inst};

fn binop_mnemonic(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "add",
        BinOp::Sub => "sub",
        BinOp::Mul => "mul",
        BinOp::Div => "div",
        BinOp::Mod => "mod",
        BinOp::And => "and",
        BinOp::Or => "or",
        BinOp::Xor => "xor",
        BinOp::Shl => "shl",
        BinOp::Shr => "shr",
    }
}

fn cond_suffix(c: Cond) -> &'static str {
    match c {
        Cond::Eq => "eq",
        Cond::Ne => "ne",
        Cond::Lt => "lt",
        Cond::Le => "le",
        Cond::Gt => "gt",
        Cond::Ge => "ge",
    }
}

/// Render one instruction as assembly text. `bin` resolves call symbols
/// and string ids when provided.
pub fn format_inst(inst: &Inst, bin: Option<&Binary>) -> String {
    match *inst {
        Inst::Label(l) => format!(".L{l}:"),
        Inst::MovImm { rd, imm } => format!("mov     {rd}, #{imm}"),
        Inst::FMovImm { rd, imm } => format!("fmov    {rd}, #{imm}"),
        Inst::Mov { rd, rs } => format!("mov     {rd}, {rs}"),
        Inst::LoadStr { rd, sid } => {
            let s = bin
                .and_then(|b| b.strings.get(sid as usize))
                .map(|s| format!(" ; \"{s}\""))
                .unwrap_or_default();
            format!("lea     {rd}, str_{sid}{s}")
        }
        Inst::LoadGlobal { rd, gid } => format!("ldr     {rd}, [global_{gid}]"),
        Inst::StoreGlobal { gid, rs } => format!("str     {rs}, [global_{gid}]"),
        Inst::Bin { op, rd, rs1, rs2 } => {
            format!("{:<7} {rd}, {rs1}, {rs2}", binop_mnemonic(op))
        }
        Inst::BinImm { op, rd, rs, imm } => {
            format!("{:<7} {rd}, {rs}, #{imm}", binop_mnemonic(op))
        }
        Inst::FBin { op, rd, rs1, rs2 } => {
            format!("f{:<6} {rd}, {rs1}, {rs2}", binop_mnemonic(op))
        }
        Inst::FMulAdd { rd, rs1, rs2, rs3 } => format!("fmadd   {rd}, {rs1}, {rs2}, {rs3}"),
        Inst::Neg { rd, rs } => format!("neg     {rd}, {rs}"),
        Inst::Not { rd, rs } => format!("not     {rd}, {rs}"),
        Inst::Cmp { rs1, rs2 } => format!("cmp     {rs1}, {rs2}"),
        Inst::SetCc { cond, rd } => format!("set{}   {rd}", cond_suffix(cond)),
        Inst::CmpSet { cond, rd, rs1, rs2 } => {
            format!("cset.{} {rd}, {rs1}, {rs2}", cond_suffix(cond))
        }
        Inst::LoadB { rd, base, idx } => format!("ldrb    {rd}, [{base}, {idx}]"),
        Inst::StoreB { rs, base, idx } => format!("strb    {rs}, [{base}, {idx}]"),
        Inst::LoadSlot { rd, slot } => format!("ldr     {rd}, [sp, #{}]", slot * 8),
        Inst::StoreSlot { rs, slot } => format!("str     {rs}, [sp, #{}]", slot * 8),
        Inst::Jmp { target } => format!("b       .I{target}"),
        Inst::JCc { cond, target } => format!("b.{}    .I{target}", cond_suffix(cond)),
        Inst::CBr { cond, rs1, rs2, target } => {
            format!("cbr.{}  {rs1}, {rs2}, .I{target}", cond_suffix(cond))
        }
        Inst::JmpInd { rs } => format!("br      {rs}"),
        Inst::SetArg { idx, rs } => format!("arg     #{idx}, {rs}"),
        Inst::LoadArg { rd, idx } => format!("ldarg   {rd}, #{idx}"),
        Inst::Call { sym } => {
            let name = bin.map(|b| {
                if sym.is_import() {
                    b.imports
                        .get(sym.index() as usize)
                        .cloned()
                        .unwrap_or_else(|| format!("import_{}", sym.index()))
                } else {
                    b.functions
                        .get(sym.index() as usize)
                        .and_then(|f| f.name.clone())
                        .unwrap_or_else(|| format!("sub_{}", sym.index()))
                }
            });
            match name {
                Some(n) => format!("call    {n}"),
                None if sym.is_import() => format!("call    import_{}", sym.index()),
                None => format!("call    sub_{}", sym.index()),
            }
        }
        Inst::GetRet { rd } => format!("mov     {rd}, ret"),
        Inst::SetRet { rs } => format!("mov     ret, {rs}"),
        Inst::Ret => "ret".to_string(),
        Inst::Push { rs } => format!("push    {rs}"),
        Inst::Pop { rd } => format!("pop     {rd}"),
        Inst::Syscall { num } => format!("svc     #{num}"),
        Inst::Halt => "udf     ; trap".to_string(),
        Inst::Nop => "nop".to_string(),
    }
}

/// Render a whole disassembled function with basic-block headers, the way
/// a disassembler presents it.
pub fn format_function(dis: &FunctionDisasm, bin: Option<&Binary>, name: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{name}: ; {} instructions, {} bytes, {} blocks, cc={}\n",
        dis.inst_count(),
        dis.byte_size(),
        dis.cfg.num_blocks(),
        dis.cfg.cyclomatic_complexity()
    ));
    for (bi, blk) in dis.cfg.blocks.iter().enumerate() {
        let succs: Vec<String> = blk.succs.iter().map(|s| format!("bb{s}")).collect();
        out.push_str(&format!(
            "bb{bi}: ; {:?}{}\n",
            blk.kind,
            if succs.is_empty() { String::new() } else { format!(" -> {}", succs.join(", ")) }
        ));
        for i in blk.start..blk.end {
            let (inst, _) = &dis.insts[i as usize];
            out.push_str(&format!("  .I{i:<4} {}\n", format_inst(inst, bin)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fwbin::isa::{Arch, OptLevel, Reg, Sym};

    #[test]
    fn formats_core_instructions() {
        let r = |i| Reg::phys(i);
        assert_eq!(format_inst(&Inst::MovImm { rd: r(0), imm: 5 }, None), "mov     r0, #5");
        assert_eq!(
            format_inst(&Inst::Bin { op: BinOp::Add, rd: r(0), rs1: r(1), rs2: r(2) }, None),
            "add     r0, r1, r2"
        );
        assert_eq!(format_inst(&Inst::Ret, None), "ret");
        assert_eq!(
            format_inst(&Inst::JCc { cond: Cond::Lt, target: 7 }, None),
            "b.lt    .I7"
        );
        assert!(format_inst(&Inst::Call { sym: Sym::import(3) }, None).contains("import_3"));
    }

    #[test]
    fn resolves_symbols_through_binary() {
        let mut lib = fwlang::Library::new("libf");
        let sid = lib.intern_string("hi");
        let mut g = fwlang::gen::Generator::new(1);
        let f = g.any_function(&mut lib, "target_fn");
        lib.functions.push(f);
        let _ = sid;
        let bin = fwbin::compile_library(&lib, Arch::Arm64, OptLevel::O1).unwrap();
        let dis = crate::disassemble(&bin, 0).unwrap();
        let listing = format_function(&dis, Some(&bin), "target_fn");
        assert!(listing.contains("target_fn:"));
        assert!(listing.contains("bb0:"));
        assert!(listing.contains("ldarg"));
        assert!(listing.contains("ret"));
    }

    #[test]
    fn listing_covers_every_instruction() {
        let lib = fwlang::gen::Generator::new(7).library_sized("libf", 5);
        let bin = fwbin::compile_library(&lib, Arch::X86, OptLevel::O2).unwrap();
        for i in 0..bin.function_count() {
            let dis = crate::disassemble(&bin, i).unwrap();
            let listing = format_function(&dis, Some(&bin), "f");
            let body_lines = listing.lines().filter(|l| l.trim_start().starts_with(".I")).count();
            assert_eq!(body_lines as u32, dis.inst_count());
        }
    }
}
