//! Dominator analysis and natural-loop detection.
//!
//! Implements the Cooper–Harvey–Kennedy iterative dominator algorithm and
//! back-edge-based natural-loop discovery. These power the loop-aware
//! extended features (loop count, maximum loop depth) and give downstream
//! users the standard decompiler-grade CFG toolkit.

use crate::cfg::Cfg;

/// Immediate dominators of every block, as block indices. The entry block
/// dominates itself; unreachable blocks get `None`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dominators {
    idom: Vec<Option<u32>>,
    /// Reverse-postorder rank per block (used internally; exposed for
    /// tests and ordering-sensitive passes).
    rpo_rank: Vec<usize>,
}

impl Dominators {
    /// Compute dominators for `cfg` (entry = block 0).
    pub fn compute(cfg: &Cfg) -> Dominators {
        let n = cfg.blocks.len();
        if n == 0 {
            return Dominators { idom: Vec::new(), rpo_rank: Vec::new() };
        }
        // Reverse postorder via iterative DFS.
        let mut visited = vec![false; n];
        let mut postorder = Vec::with_capacity(n);
        let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
        visited[0] = true;
        while let Some(&mut (v, ref mut next)) = stack.last_mut() {
            let succs = &cfg.blocks[v].succs;
            if *next < succs.len() {
                let s = succs[*next] as usize;
                *next += 1;
                if !visited[s] {
                    visited[s] = true;
                    stack.push((s, 0));
                }
            } else {
                postorder.push(v);
                stack.pop();
            }
        }
        let rpo: Vec<usize> = postorder.iter().rev().copied().collect();
        let mut rpo_rank = vec![usize::MAX; n];
        for (rank, &b) in rpo.iter().enumerate() {
            rpo_rank[b] = rank;
        }

        let mut idom: Vec<Option<u32>> = vec![None; n];
        idom[0] = Some(0);
        let intersect = |idom: &[Option<u32>], rank: &[usize], mut a: u32, mut b: u32| -> u32 {
            while a != b {
                while rank[a as usize] > rank[b as usize] {
                    a = idom[a as usize].expect("processed block has idom");
                }
                while rank[b as usize] > rank[a as usize] {
                    b = idom[b as usize].expect("processed block has idom");
                }
            }
            a
        };
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<u32> = None;
                for &p in &cfg.blocks[b].preds {
                    if idom[p as usize].is_none() {
                        continue; // unreachable or unprocessed predecessor
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_rank, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b] != Some(ni) {
                        idom[b] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        Dominators { idom, rpo_rank }
    }

    /// Immediate dominator of `b` (the entry's is itself); `None` for
    /// unreachable blocks.
    pub fn idom(&self, b: u32) -> Option<u32> {
        self.idom.get(b as usize).copied().flatten()
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: u32, b: u32) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom(cur) {
                Some(d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }

    /// Whether `b` is reachable from the entry.
    pub fn reachable(&self, b: u32) -> bool {
        self.idom(b).is_some()
    }
}

/// A natural loop: a back edge `tail -> header` where the header dominates
/// the tail, plus the loop body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaturalLoop {
    /// The loop header block.
    pub header: u32,
    /// The back-edge source.
    pub tail: u32,
    /// All blocks in the loop body (header included), sorted.
    pub body: Vec<u32>,
}

impl NaturalLoop {
    /// Whether the loop contains block `b`.
    pub fn contains(&self, b: u32) -> bool {
        self.body.binary_search(&b).is_ok()
    }
}

/// Find all natural loops of `cfg`. Multiple back edges to one header
/// yield one loop per back edge (callers may merge by header if desired).
pub fn natural_loops(cfg: &Cfg) -> Vec<NaturalLoop> {
    let dom = Dominators::compute(cfg);
    let mut loops = Vec::new();
    for (tail, blk) in cfg.blocks.iter().enumerate() {
        let tail = tail as u32;
        if !dom.reachable(tail) {
            continue;
        }
        for &header in &blk.succs {
            if dom.dominates(header, tail) {
                // Collect the body: header plus everything that reaches
                // the tail without passing through the header.
                let mut body = vec![header];
                let mut stack = vec![tail];
                while let Some(b) = stack.pop() {
                    if body.contains(&b) {
                        continue;
                    }
                    body.push(b);
                    for &p in &cfg.blocks[b as usize].preds {
                        stack.push(p);
                    }
                }
                body.sort_unstable();
                loops.push(NaturalLoop { header, tail, body });
            }
        }
    }
    loops.sort_by_key(|l| (l.header, l.tail));
    loops
}

/// Maximum loop-nesting depth of the function (0 = loop-free): for each
/// block, the number of distinct loop headers whose loop contains it.
pub fn max_loop_depth(cfg: &Cfg) -> u32 {
    let loops = natural_loops(cfg);
    if loops.is_empty() {
        return 0;
    }
    // Merge loops sharing a header so nesting counts headers, not edges.
    use std::collections::{BTreeMap, BTreeSet};
    let mut by_header: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
    for l in &loops {
        by_header.entry(l.header).or_default().extend(l.body.iter().copied());
    }
    let n = cfg.blocks.len();
    let mut depth = vec![0u32; n];
    for body in by_header.values() {
        for &b in body {
            depth[b as usize] += 1;
        }
    }
    depth.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{BasicBlock, BlockKind};

    /// Build a CFG from an adjacency list (block 0 = entry).
    fn cfg_from(adj: &[&[u32]]) -> Cfg {
        let n = adj.len();
        let mut blocks: Vec<BasicBlock> = (0..n)
            .map(|i| BasicBlock {
                start: i as u32,
                end: i as u32 + 1,
                byte_size: 4,
                kind: if adj[i].is_empty() { BlockKind::Ret } else { BlockKind::Normal },
                succs: adj[i].to_vec(),
                preds: vec![],
            })
            .collect();
        let mut edges = 0;
        for (i, row) in adj.iter().enumerate().take(n) {
            for &s in *row {
                blocks[s as usize].preds.push(i as u32);
                edges += 1;
            }
        }
        Cfg { blocks, num_edges: edges }
    }

    #[test]
    fn diamond_dominators() {
        // 0 -> {1,2} -> 3
        let cfg = cfg_from(&[&[1, 2], &[3], &[3], &[]]);
        let dom = Dominators::compute(&cfg);
        assert_eq!(dom.idom(0), Some(0));
        assert_eq!(dom.idom(1), Some(0));
        assert_eq!(dom.idom(2), Some(0));
        assert_eq!(dom.idom(3), Some(0), "join dominated by the fork, not a branch");
        assert!(dom.dominates(0, 3));
        assert!(!dom.dominates(1, 3));
        assert!(dom.dominates(3, 3));
    }

    #[test]
    fn chain_dominators() {
        let cfg = cfg_from(&[&[1], &[2], &[]]);
        let dom = Dominators::compute(&cfg);
        assert_eq!(dom.idom(1), Some(0));
        assert_eq!(dom.idom(2), Some(1));
        assert!(dom.dominates(0, 2));
        assert!(dom.dominates(1, 2));
    }

    #[test]
    fn unreachable_block_has_no_idom() {
        // Block 2 unreachable.
        let cfg = cfg_from(&[&[1], &[], &[1]]);
        let dom = Dominators::compute(&cfg);
        assert!(dom.reachable(1));
        assert!(!dom.reachable(2));
        assert_eq!(dom.idom(2), None);
    }

    #[test]
    fn simple_loop_detected() {
        // 0 -> 1 (header) -> 2 -> 1, 1 -> 3 (exit)
        let cfg = cfg_from(&[&[1], &[2, 3], &[1], &[]]);
        let loops = natural_loops(&cfg);
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].header, 1);
        assert_eq!(loops[0].tail, 2);
        assert_eq!(loops[0].body, vec![1, 2]);
        assert!(loops[0].contains(2));
        assert!(!loops[0].contains(3));
        assert_eq!(max_loop_depth(&cfg), 1);
    }

    #[test]
    fn nested_loops_have_depth_two() {
        // outer: 1..4 ; inner: 2..3
        // 0 -> 1 -> 2 -> 3 -> 2 (inner back), 3 -> 4 -> 1 (outer back), 4 -> 5
        let cfg = cfg_from(&[&[1], &[2], &[3], &[2, 4], &[1, 5], &[]]);
        let loops = natural_loops(&cfg);
        assert_eq!(loops.len(), 2);
        assert_eq!(max_loop_depth(&cfg), 2);
    }

    #[test]
    fn loop_free_depth_zero() {
        let cfg = cfg_from(&[&[1, 2], &[3], &[3], &[]]);
        assert!(natural_loops(&cfg).is_empty());
        assert_eq!(max_loop_depth(&cfg), 0);
    }

    #[test]
    fn compiled_loops_are_found() {
        // A generated scan function (with a For loop) must expose at least
        // one natural loop at every optimization level.
        use fwbin::isa::{Arch, OptLevel};
        let mut lib = fwlang::Library::new("lib");
        let mut g = fwlang::gen::Generator::new(31);
        // Find a function with a loop.
        let mut found = false;
        for k in 0..10 {
            let f = g.any_function(&mut lib, format!("f{k}"));
            let loopy = fwlang::visit::loop_count(&f) > 0;
            lib.functions.push(f);
            if loopy {
                found = true;
            }
        }
        assert!(found, "expected loopy functions");
        for opt in [OptLevel::O0, OptLevel::O2, OptLevel::O3] {
            let bin = fwbin::compile_library(&lib, Arch::Arm64, opt).unwrap();
            let mut any = 0;
            for i in 0..bin.function_count() {
                let dis = crate::disassemble(&bin, i).unwrap();
                any += natural_loops(&dis.cfg).len();
            }
            assert!(any > 0, "no loops recovered at {opt}");
        }
    }

    #[test]
    fn empty_cfg_is_fine() {
        let cfg = Cfg { blocks: vec![], num_edges: 0 };
        assert_eq!(Dominators::compute(&cfg).idom.len(), 0);
        assert!(natural_loops(&cfg).is_empty());
        assert_eq!(max_loop_depth(&cfg), 0);
    }
}
