//! Graph analyses over CFGs: Brandes betweenness centrality.
//!
//! Five of the paper's 48 static features are betweenness-centrality
//! statistics over the function's CFG nodes (`min/max/avg/std
//! betweeness_cent` and `betweeness_cent_zero`).

use crate::cfg::Cfg;
use std::collections::VecDeque;

/// Betweenness centrality of every block, via Brandes' algorithm on the
/// directed, unweighted CFG. Runs in `O(V * E)`.
///
/// Returns one value per block (empty for empty CFGs).
pub fn betweenness_centrality(cfg: &Cfg) -> Vec<f64> {
    let n = cfg.blocks.len();
    let mut cb = vec![0.0f64; n];
    if n == 0 {
        return cb;
    }
    let adj: Vec<&[u32]> = cfg.blocks.iter().map(|b| b.succs.as_slice()).collect();

    for s in 0..n {
        // Single-source shortest paths (BFS).
        let mut stack: Vec<usize> = Vec::with_capacity(n);
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut sigma = vec![0.0f64; n];
        let mut dist = vec![-1i64; n];
        sigma[s] = 1.0;
        dist[s] = 0;
        let mut queue = VecDeque::new();
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            stack.push(v);
            for &w in adj[v] {
                let w = w as usize;
                if dist[w] < 0 {
                    dist[w] = dist[v] + 1;
                    queue.push_back(w);
                }
                if dist[w] == dist[v] + 1 {
                    sigma[w] += sigma[v];
                    preds[w].push(v);
                }
            }
        }
        // Accumulation.
        let mut delta = vec![0.0f64; n];
        while let Some(w) = stack.pop() {
            for &v in &preds[w] {
                delta[v] += (sigma[v] / sigma[w]) * (1.0 + delta[w]);
            }
            if w != s {
                cb[w] += delta[w];
            }
        }
    }
    cb
}

/// Summary statistics over a slice: `(min, max, mean, std)`. Returns zeros
/// for empty input. Uses population standard deviation, matching the
/// paper's block-statistics features.
pub fn stats(values: &[f64]) -> (f64, f64, f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0, 0.0, 0.0);
    }
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut sum = 0.0;
    for &v in values {
        min = min.min(v);
        max = max.max(v);
        sum += v;
    }
    let mean = sum / values.len() as f64;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64;
    (min, max, mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{BasicBlock, BlockKind};

    fn chain_cfg(n: usize) -> Cfg {
        // 0 -> 1 -> 2 -> ... -> n-1
        let blocks = (0..n)
            .map(|i| BasicBlock {
                start: i as u32,
                end: i as u32 + 1,
                byte_size: 4,
                kind: if i == n - 1 { BlockKind::Ret } else { BlockKind::Normal },
                succs: if i + 1 < n { vec![(i + 1) as u32] } else { vec![] },
                preds: if i > 0 { vec![(i - 1) as u32] } else { vec![] },
            })
            .collect::<Vec<_>>();
        Cfg { num_edges: (n.saturating_sub(1)) as u32, blocks }
    }

    #[test]
    fn chain_centrality_is_known() {
        // On a directed path of 4 nodes, inner node i lies on paths
        // (s, t) with s < i < t: node1 -> 2 paths (0->2, 0->3)... node1: pairs (0,2),(0,3) = 2; node2: (0,3),(1,3) = 2.
        let cfg = chain_cfg(4);
        let cb = betweenness_centrality(&cfg);
        assert_eq!(cb[0], 0.0);
        assert_eq!(cb[3], 0.0);
        assert_eq!(cb[1], 2.0);
        assert_eq!(cb[2], 2.0);
    }

    #[test]
    fn diamond_splits_centrality() {
        // 0 -> {1, 2} -> 3
        let blocks = vec![
            BasicBlock { start: 0, end: 1, byte_size: 4, kind: BlockKind::Normal, succs: vec![1, 2], preds: vec![] },
            BasicBlock { start: 1, end: 2, byte_size: 4, kind: BlockKind::Normal, succs: vec![3], preds: vec![0] },
            BasicBlock { start: 2, end: 3, byte_size: 4, kind: BlockKind::Normal, succs: vec![3], preds: vec![0] },
            BasicBlock { start: 3, end: 4, byte_size: 4, kind: BlockKind::Ret, succs: vec![], preds: vec![1, 2] },
        ];
        let cfg = Cfg { blocks, num_edges: 4 };
        let cb = betweenness_centrality(&cfg);
        // The single dependent pair (0 -> 3) splits evenly over 1 and 2.
        assert!((cb[1] - 0.5).abs() < 1e-12);
        assert!((cb[2] - 0.5).abs() < 1e-12);
        assert_eq!(cb[0], 0.0);
        assert_eq!(cb[3], 0.0);
    }

    #[test]
    fn single_node_zero() {
        let cfg = chain_cfg(1);
        assert_eq!(betweenness_centrality(&cfg), vec![0.0]);
    }

    #[test]
    fn empty_graph() {
        let cfg = Cfg { blocks: vec![], num_edges: 0 };
        assert!(betweenness_centrality(&cfg).is_empty());
    }

    #[test]
    fn stats_basic() {
        let (min, max, mean, std) = stats(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(min, 1.0);
        assert_eq!(max, 4.0);
        assert_eq!(mean, 2.5);
        assert!((std - 1.118033988749895).abs() < 1e-12);
    }

    #[test]
    fn stats_empty_is_zeros() {
        assert_eq!(stats(&[]), (0.0, 0.0, 0.0, 0.0));
    }
}
