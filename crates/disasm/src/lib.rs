//! # disasm — disassembly substrate
//!
//! Recovers instruction streams and control flow graphs from FWB function
//! records — the substrate role IDA Pro plays in the paper (PATCHECKO "is
//! implemented as a plugin for IDA Pro"; here the plugin host is this
//! crate). Provides:
//!
//! * [`disassemble`] — decode a function record into instructions with byte
//!   sizes and build its [`cfg::Cfg`];
//! * [`cfg`] — basic blocks, edges, and IDA-style block kinds (`fcb_*`);
//! * [`dom`] — dominator analysis and natural-loop detection;
//! * [`fmt`] — human-readable assembly listings;
//! * [`graph`] — Brandes betweenness centrality and summary statistics.
//!
//! ## Example
//!
//! ```
//! use fwbin::{compile_library, Arch, OptLevel};
//! use fwlang::gen::Generator;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let lib = Generator::new(3).library("libdemo");
//! let bin = compile_library(&lib, Arch::Arm64, OptLevel::O2)?;
//! let dis = disasm::disassemble(&bin, 0)?;
//! assert!(dis.cfg.num_blocks() >= 1);
//! assert_eq!(dis.cfg.cyclomatic_complexity(),
//!            dis.cfg.num_edges as i64 - dis.cfg.num_blocks() as i64 + 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cfg;
pub mod dom;
pub mod fmt;
pub mod graph;

pub use cfg::{BasicBlock, BlockKind, Cfg, CfgSummary};
pub use dom::{max_loop_depth, natural_loops, Dominators, NaturalLoop};

use fwbin::encode::{decode_with_sizes, DecodeError};
use fwbin::format::Binary;
use fwbin::isa::Inst;

/// A disassembled function: decoded instructions (with encoded byte sizes)
/// plus the recovered CFG.
#[derive(Debug, Clone)]
pub struct FunctionDisasm {
    /// Instructions with their encoded byte size.
    pub insts: Vec<(Inst, u32)>,
    /// Recovered control flow graph.
    pub cfg: Cfg,
}

impl FunctionDisasm {
    /// Total encoded size in bytes (Table I `size_fun`).
    pub fn byte_size(&self) -> u32 {
        self.insts.iter().map(|(_, s)| s).sum()
    }

    /// Instruction count (Table I `num_inst`).
    pub fn inst_count(&self) -> u32 {
        self.insts.len() as u32
    }

    /// The instructions of block `b`.
    pub fn block_insts(&self, b: usize) -> &[(Inst, u32)] {
        let blk = &self.cfg.blocks[b];
        &self.insts[blk.start as usize..blk.end as usize]
    }
}

/// Import-table indices of no-return routines in `bin` (currently `abort`).
pub fn noreturn_imports(bin: &Binary) -> Vec<u32> {
    bin.imports
        .iter()
        .enumerate()
        .filter(|(_, n)| n.as_str() == "abort")
        .map(|(i, _)| i as u32)
        .collect()
}

/// Disassemble function `idx` of `bin`: decode its code bytes and recover
/// the CFG.
///
/// # Errors
/// Returns a [`DecodeError`] if the code bytes are malformed.
pub fn disassemble(bin: &Binary, idx: usize) -> Result<FunctionDisasm, DecodeError> {
    let insts = decode_with_sizes(&bin.functions[idx].code, bin.arch)?;
    let noret = noreturn_imports(bin);
    let cfg = cfg::Cfg::build(&insts, &noret);
    Ok(FunctionDisasm { insts, cfg })
}

/// Disassemble every function of `bin`.
///
/// # Errors
/// Returns the first [`DecodeError`] encountered.
pub fn disassemble_all(bin: &Binary) -> Result<Vec<FunctionDisasm>, DecodeError> {
    (0..bin.function_count()).map(|i| disassemble(bin, i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fwbin::isa::{Arch, OptLevel};
    use fwlang::gen::Generator;

    #[test]
    fn disassembles_whole_generated_library() {
        let lib = Generator::new(77).library_sized("libx", 20);
        for arch in Arch::ALL {
            let bin = fwbin::compile_library(&lib, arch, OptLevel::O2).unwrap();
            let all = disassemble_all(&bin).unwrap();
            assert_eq!(all.len(), 20);
            for d in &all {
                assert!(d.inst_count() > 0);
                assert!(d.byte_size() > 0);
                assert!(d.cfg.num_blocks() >= 1);
                // Block ranges tile the function exactly.
                let mut covered = 0;
                for b in &d.cfg.blocks {
                    assert_eq!(b.start, covered);
                    covered = b.end;
                    assert!(!b.is_empty());
                }
                assert_eq!(covered, d.inst_count());
            }
        }
    }

    #[test]
    fn loops_increase_cyclomatic_complexity() {
        let lib = Generator::new(42).library_sized("libx", 40);
        let bin = fwbin::compile_library(&lib, Arch::Arm64, OptLevel::O1).unwrap();
        let mut any_loopy = false;
        for i in 0..bin.function_count() {
            let d = disassemble(&bin, i).unwrap();
            if d.cfg.cyclomatic_complexity() > 2 {
                any_loopy = true;
            }
        }
        assert!(any_loopy, "expected some complex functions in 40");
    }

    #[test]
    fn centrality_runs_on_real_functions() {
        let lib = Generator::new(9).library_sized("libx", 10);
        let bin = fwbin::compile_library(&lib, Arch::X86, OptLevel::O0).unwrap();
        for i in 0..bin.function_count() {
            let d = disassemble(&bin, i).unwrap();
            let cb = graph::betweenness_centrality(&d.cfg);
            assert_eq!(cb.len(), d.cfg.blocks.len());
            assert!(cb.iter().all(|v| *v >= 0.0));
        }
    }

    #[test]
    fn same_source_different_arch_similar_block_count() {
        // The CFG shape is a platform-robust feature: block counts across
        // architectures at the same opt level should be close (not equal —
        // legalization splits differ).
        let lib = Generator::new(5).library_sized("libx", 10);
        let a = fwbin::compile_library(&lib, Arch::X86, OptLevel::O2).unwrap();
        let b = fwbin::compile_library(&lib, Arch::Arm64, OptLevel::O2).unwrap();
        for i in 0..10 {
            let da = disassemble(&a, i).unwrap();
            let db = disassemble(&b, i).unwrap();
            let (na, nb) = (da.cfg.num_blocks() as i64, db.cfg.num_blocks() as i64);
            assert!(
                (na - nb).abs() <= na.max(nb) / 2 + 2,
                "block counts diverge too much: {na} vs {nb}"
            );
        }
    }
}
