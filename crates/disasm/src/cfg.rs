//! Control-flow-graph recovery from decoded instruction streams.
//!
//! The paper assumes the disassembler provides function boundaries and the
//! CFG ("we assume that these steps are handled by the disassembler using a
//! robust heuristic technique"); the FWB function table provides boundaries
//! and this module builds the CFG. Block *kinds* mirror the IDA `fcb_*`
//! block types that appear verbatim among the paper's 48 static features
//! (Table I).

use fwbin::isa::Inst;
use serde::{Deserialize, Serialize};

/// Classification of a basic block, following IDA's `FC_*` block types used
/// by Table I of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BlockKind {
    /// Ordinary block (falls through or jumps to other blocks).
    Normal,
    /// Ends with an indirect jump.
    IndJump,
    /// Ends with a return.
    Ret,
    /// Ends with a conditional branch one of whose successors is a trivial
    /// return block ("conditional return").
    CndRet,
    /// Ends with a no-return trap (`Halt`).
    NoRet,
    /// Ends by calling a no-return external routine (e.g. `abort`).
    ExternNoRet,
    /// External block (tail-transfer outside the function). Never produced
    /// by our compiler but kept for feature parity.
    Extern,
    /// Execution can run past the end of the function (disassembly error).
    Error,
}

/// A basic block: a maximal single-entry straight-line instruction run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BasicBlock {
    /// Index of the first instruction (inclusive).
    pub start: u32,
    /// Index one past the last instruction (exclusive).
    pub end: u32,
    /// Sum of encoded byte sizes of the block's instructions.
    pub byte_size: u32,
    /// Block classification.
    pub kind: BlockKind,
    /// Successor block indices.
    pub succs: Vec<u32>,
    /// Predecessor block indices.
    pub preds: Vec<u32>,
}

impl BasicBlock {
    /// Number of instructions in the block.
    pub fn len(&self) -> u32 {
        self.end - self.start
    }

    /// Whether the block is empty (never true for built CFGs).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// A function's control flow graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cfg {
    /// Basic blocks in address order; block 0 is the entry.
    pub blocks: Vec<BasicBlock>,
    /// Total edge count.
    pub num_edges: u32,
}

impl Cfg {
    /// Build the CFG for a decoded function. `insts` pairs each instruction
    /// with its encoded byte size; `noreturn_imports` lists import-table
    /// indices of no-return routines (for `ExternNoRet` classification).
    pub fn build(insts: &[(Inst, u32)], noreturn_imports: &[u32]) -> Cfg {
        if insts.is_empty() {
            return Cfg { blocks: Vec::new(), num_edges: 0 };
        }
        let n = insts.len();
        let is_noret_call = |inst: &Inst| -> bool {
            matches!(inst, Inst::Call { sym }
                if sym.is_import() && noreturn_imports.contains(&sym.index()))
        };

        // 1. Leaders: entry, branch targets, instructions after
        //    terminators/conditional branches/no-return calls.
        let mut leader = vec![false; n];
        leader[0] = true;
        for (i, (inst, _)) in insts.iter().enumerate() {
            if let Some(t) = inst.target() {
                if (t as usize) < n {
                    leader[t as usize] = true;
                }
            }
            if (inst.is_terminator() || inst.is_cond_branch() || is_noret_call(inst))
                && i + 1 < n
            {
                leader[i + 1] = true;
            }
        }

        // 2. Carve blocks.
        let mut starts: Vec<u32> = (0..n as u32).filter(|&i| leader[i as usize]).collect();
        starts.push(n as u32);
        let mut blocks: Vec<BasicBlock> = Vec::with_capacity(starts.len() - 1);
        let block_of = {
            // Map instruction index -> block index.
            let mut map = vec![0u32; n];
            for (b, w) in starts.windows(2).enumerate() {
                for i in w[0]..w[1] {
                    map[i as usize] = b as u32;
                }
            }
            map
        };
        for w in starts.windows(2) {
            let (start, end) = (w[0], w[1]);
            let byte_size = insts[start as usize..end as usize].iter().map(|(_, s)| s).sum();
            blocks.push(BasicBlock {
                start,
                end,
                byte_size,
                kind: BlockKind::Normal,
                succs: Vec::new(),
                preds: Vec::new(),
            });
        }

        // 3. Edges and preliminary kinds.
        let mut num_edges = 0u32;
        for block in blocks.iter_mut() {
            let last_idx = block.end - 1;
            let (last, _) = &insts[last_idx as usize];
            let mut succs = Vec::new();
            match last {
                Inst::Ret => block.kind = BlockKind::Ret,
                Inst::Halt => block.kind = BlockKind::NoRet,
                Inst::JmpInd { .. } => block.kind = BlockKind::IndJump,
                Inst::Jmp { target } => {
                    if (*target as usize) < n {
                        succs.push(block_of[*target as usize]);
                    } else {
                        block.kind = BlockKind::Error;
                    }
                }
                inst if inst.is_cond_branch() => {
                    if let Some(t) = inst.target() {
                        if (t as usize) < n {
                            succs.push(block_of[t as usize]);
                        } else {
                            block.kind = BlockKind::Error;
                        }
                    }
                    if (last_idx as usize) + 1 < n {
                        let ft = block_of[last_idx as usize + 1];
                        if !succs.contains(&ft) {
                            succs.push(ft);
                        }
                    } else {
                        block.kind = BlockKind::Error;
                    }
                }
                inst if is_noret_call(inst) => {
                    block.kind = BlockKind::ExternNoRet;
                }
                _ => {
                    // Fallthrough.
                    if (last_idx as usize) + 1 < n {
                        succs.push(block_of[last_idx as usize + 1]);
                    } else {
                        block.kind = BlockKind::Error;
                    }
                }
            }
            num_edges += succs.len() as u32;
            block.succs = succs;
        }

        // 4. Predecessors.
        let succ_lists: Vec<Vec<u32>> = blocks.iter().map(|b| b.succs.clone()).collect();
        for (b, succs) in succ_lists.iter().enumerate() {
            for &s in succs {
                blocks[s as usize].preds.push(b as u32);
            }
        }

        // 5. Conditional-return marking: a conditional-branch block one of
        //    whose successors is a short pure-return block.
        let ret_trivial: Vec<bool> = blocks
            .iter()
            .map(|b| b.kind == BlockKind::Ret && b.len() <= 2)
            .collect();
        for block in blocks.iter_mut() {
            let last_idx = block.end - 1;
            if insts[last_idx as usize].0.is_cond_branch()
                && block.succs.iter().any(|&s| ret_trivial[s as usize])
            {
                block.kind = BlockKind::CndRet;
            }
        }

        Cfg { blocks, num_edges }
    }

    /// Number of basic blocks.
    pub fn num_blocks(&self) -> u32 {
        self.blocks.len() as u32
    }

    /// Cyclomatic complexity `E - N + 2`, exactly as Table I defines it
    /// ("Edges - Nodes + 2"). With unreachable blocks (code after a
    /// no-return call) the value can fall below 1 — faithful to what the
    /// IDA-based extractor would report.
    pub fn cyclomatic_complexity(&self) -> i64 {
        self.num_edges as i64 - self.blocks.len() as i64 + 2
    }

    /// Count blocks of a given kind.
    pub fn count_kind(&self, kind: BlockKind) -> u32 {
        self.blocks.iter().filter(|b| b.kind == kind).count() as u32
    }

    /// Condense the graph into a [`CfgSummary`].
    pub fn summary(&self) -> CfgSummary {
        CfgSummary::of(self)
    }
}

/// The block kinds in `kind_counts` order (Table I's `fcb_*` order).
pub const SUMMARY_KINDS: [BlockKind; 8] = [
    BlockKind::Normal,
    BlockKind::IndJump,
    BlockKind::Ret,
    BlockKind::CndRet,
    BlockKind::NoRet,
    BlockKind::ExternNoRet,
    BlockKind::Extern,
    BlockKind::Error,
];

/// A compact, serializable condensation of a [`Cfg`]: the graph-shape
/// numbers downstream consumers (reports, caches, differential signatures)
/// need, without the per-block instruction ranges. Cheap to store in the
/// scanhub artifact cache next to the static feature vector.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CfgSummary {
    /// Basic-block count.
    pub num_blocks: u32,
    /// Edge count.
    pub num_edges: u32,
    /// Cyclomatic complexity `E - N + 2`.
    pub cyclomatic: i64,
    /// Block counts per kind, in [`SUMMARY_KINDS`] order.
    pub kind_counts: [u32; 8],
    /// Instruction count of the largest block.
    pub max_block_len: u32,
    /// Total encoded byte size across blocks.
    pub byte_size: u32,
}

impl CfgSummary {
    /// Summarize a recovered CFG.
    pub fn of(cfg: &Cfg) -> CfgSummary {
        let mut kind_counts = [0u32; 8];
        for (slot, kind) in kind_counts.iter_mut().zip(SUMMARY_KINDS) {
            *slot = cfg.count_kind(kind);
        }
        CfgSummary {
            num_blocks: cfg.num_blocks(),
            num_edges: cfg.num_edges,
            cyclomatic: cfg.cyclomatic_complexity(),
            kind_counts,
            max_block_len: cfg.blocks.iter().map(|b| b.len()).max().unwrap_or(0),
            byte_size: cfg.blocks.iter().map(|b| b.byte_size).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fwbin::isa::{BinOp, Cond, Reg, Sym};

    fn r(i: u16) -> Reg {
        Reg::phys(i)
    }

    fn sized(insts: Vec<Inst>) -> Vec<(Inst, u32)> {
        insts.into_iter().map(|i| (i, 4)).collect()
    }

    #[test]
    fn straight_line_is_one_ret_block() {
        let insts = sized(vec![
            Inst::MovImm { rd: r(0), imm: 1 },
            Inst::SetRet { rs: r(0) },
            Inst::Ret,
        ]);
        let cfg = Cfg::build(&insts, &[]);
        assert_eq!(cfg.num_blocks(), 1);
        assert_eq!(cfg.num_edges, 0);
        assert_eq!(cfg.blocks[0].kind, BlockKind::Ret);
        assert_eq!(cfg.blocks[0].byte_size, 12);
        assert_eq!(cfg.cyclomatic_complexity(), 1);
    }

    #[test]
    fn diamond_has_four_blocks() {
        // 0: cbr -> 3
        // 1: mov; 2: jmp 4
        // 3: mov
        // 4: ret
        let insts = sized(vec![
            Inst::CBr { cond: Cond::Eq, rs1: r(0), rs2: r(1), target: 3 }, // B0
            Inst::MovImm { rd: r(0), imm: 1 },                             // B1
            Inst::Jmp { target: 4 },
            Inst::MovImm { rd: r(0), imm: 2 },                             // B2
            Inst::Ret,                                                     // B3
        ]);
        let cfg = Cfg::build(&insts, &[]);
        assert_eq!(cfg.num_blocks(), 4);
        assert_eq!(cfg.num_edges, 4);
        assert_eq!(cfg.cyclomatic_complexity(), 2);
        assert_eq!(cfg.blocks[0].succs.len(), 2);
        assert_eq!(cfg.blocks[3].preds.len(), 2);
    }

    #[test]
    fn loop_produces_back_edge() {
        // 0: movimm          B0
        // 1: cbr -> 4        B1 (head)
        // 2: binimm          B2 (body)
        // 3: jmp 1
        // 4: ret             B3
        let insts = sized(vec![
            Inst::MovImm { rd: r(0), imm: 0 },
            Inst::CBr { cond: Cond::Ge, rs1: r(0), rs2: r(1), target: 4 },
            Inst::BinImm { op: BinOp::Add, rd: r(0), rs: r(0), imm: 1 },
            Inst::Jmp { target: 1 },
            Inst::Ret,
        ]);
        let cfg = Cfg::build(&insts, &[]);
        assert_eq!(cfg.num_blocks(), 4);
        // Edges: B0->B1, B1->B3, B1->B2, B2->B1.
        assert_eq!(cfg.num_edges, 4);
        assert!(cfg.blocks[2].succs.contains(&1));
    }

    #[test]
    fn halt_block_is_noret() {
        let insts = sized(vec![
            Inst::CBr { cond: Cond::Eq, rs1: r(0), rs2: r(1), target: 2 },
            Inst::Halt,
            Inst::Ret,
        ]);
        let cfg = Cfg::build(&insts, &[]);
        assert_eq!(cfg.count_kind(BlockKind::NoRet), 1);
    }

    #[test]
    fn cndret_marked_when_branching_to_trivial_ret() {
        let insts = sized(vec![
            Inst::CBr { cond: Cond::Eq, rs1: r(0), rs2: r(1), target: 3 },
            Inst::MovImm { rd: r(0), imm: 1 },
            Inst::Ret,
            Inst::Ret,
        ]);
        let cfg = Cfg::build(&insts, &[]);
        assert_eq!(cfg.blocks[0].kind, BlockKind::CndRet);
    }

    #[test]
    fn extern_noret_call_classified() {
        let insts = sized(vec![
            Inst::Call { sym: Sym::import(0) },
            Inst::Ret,
        ]);
        // Import 0 is a no-return routine (e.g. abort).
        let cfg = Cfg::build(&insts, &[0]);
        assert_eq!(cfg.count_kind(BlockKind::ExternNoRet), 1);
        // Without the annotation it is a plain block.
        let cfg2 = Cfg::build(&insts, &[]);
        assert_eq!(cfg2.count_kind(BlockKind::ExternNoRet), 0);
    }

    #[test]
    fn error_block_on_fallthrough_past_end() {
        let insts = sized(vec![Inst::MovImm { rd: r(0), imm: 1 }]);
        let cfg = Cfg::build(&insts, &[]);
        assert_eq!(cfg.blocks[0].kind, BlockKind::Error);
    }

    #[test]
    fn jcc_both_successors_same_block_deduplicated() {
        let insts = sized(vec![
            Inst::CBr { cond: Cond::Eq, rs1: r(0), rs2: r(1), target: 1 },
            Inst::Ret,
        ]);
        let cfg = Cfg::build(&insts, &[]);
        assert_eq!(cfg.blocks[0].succs, vec![1]);
        assert_eq!(cfg.num_edges, 1);
    }

    #[test]
    fn empty_function_yields_empty_cfg() {
        let cfg = Cfg::build(&[], &[]);
        assert_eq!(cfg.num_blocks(), 0);
        assert_eq!(cfg.num_edges, 0);
    }

    #[test]
    fn summary_condenses_graph_consistently() {
        let insts = sized(vec![
            Inst::CBr { cond: Cond::Eq, rs1: r(0), rs2: r(1), target: 2 },
            Inst::MovImm { rd: r(0), imm: 1 },
            Inst::Ret,
        ]);
        let cfg = Cfg::build(&insts, &[]);
        let s = cfg.summary();
        assert_eq!(s.num_blocks, cfg.num_blocks());
        assert_eq!(s.num_edges, cfg.num_edges);
        assert_eq!(s.cyclomatic, cfg.cyclomatic_complexity());
        assert_eq!(s.kind_counts.iter().sum::<u32>(), cfg.num_blocks());
        assert_eq!(s.byte_size, insts.iter().map(|(_, sz)| sz).sum::<u32>());
        assert!(s.max_block_len >= 1);
        // Round-trips through the value tree (cache persistence).
        let json = serde_json::to_string(&s).unwrap();
        let back: CfgSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
