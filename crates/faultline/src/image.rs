//! FWB container corruption: seeded byte damage against the loader.
//!
//! The loader contract under attack: for **any** byte string,
//! [`vm::LoadedBinary::from_bytes`] returns `Ok` or a typed
//! [`vm::LoadError`] — it never panics and never aborts the process.

use crate::plan::FaultPlan;
use fwbin::format::Binary;

/// Flip `flips` seeded bits of `bytes` in place. Positions and masks are
/// pure functions of the plan, the byte length, and the flip index.
pub fn corrupt_bytes(bytes: &mut [u8], plan: &FaultPlan, flips: usize) {
    if bytes.is_empty() {
        return;
    }
    let key = bytes.len() as u64;
    for i in 0..flips {
        let at = plan.pick("image.flip.at", key ^ (i as u64) << 32, bytes.len());
        let bit = plan.pick("image.flip.bit", key ^ (i as u64) << 32, 8);
        bytes[at] ^= 1 << bit;
    }
    scope::inc("fault.injected");
    scope::add("fault.image.bit_flips", flips as u64);
}

/// `bin`'s wire encoding with `flips` seeded bit flips applied.
pub fn corrupted_encoding(bin: &Binary, plan: &FaultPlan, flips: usize) -> Vec<u8> {
    let mut bytes = bin.to_bytes().to_vec();
    corrupt_bytes(&mut bytes, plan, flips);
    bytes
}

/// A seeded truncation of `bin`'s wire encoding (at least one byte is
/// kept, at least one is cut).
pub fn truncated_encoding(bin: &Binary, plan: &FaultPlan) -> Vec<u8> {
    let mut bytes = bin.to_bytes().to_vec();
    let cut = 1 + plan.pick("image.truncate.at", bytes.len() as u64, bytes.len().max(2) - 1);
    bytes.truncate(cut);
    scope::inc("fault.injected");
    scope::inc("fault.image.truncations");
    bytes
}
