//! A fault-injecting [`FeatureSource`] wrapper: extraction errors,
//! extraction panics, and corrupted feature vectors, on a seeded plan.

use crate::plan::FaultPlan;
use fwbin::format::Binary;
use patchecko_core::error::ScanError;
use patchecko_core::features::StaticFeatures;
use patchecko_core::pipeline::FeatureSource;
use std::collections::HashSet;
use std::sync::Mutex;

/// Per-site fault rates for a [`FaultyFeatureSource`]. Each is a
/// probability numerator over [`SourceFaults::den`]; zero disables that
/// fault.
#[derive(Debug, Clone, Copy)]
pub struct SourceFaults {
    /// Rate of typed [`ScanError::Injected`] failures.
    pub error: u32,
    /// Rate of extraction *panics* (how third-party disassembler crashes
    /// present before the typed-error rework).
    pub panic: u32,
    /// Rate of silently corrupted feature vectors (bit-level damage that
    /// a checksum, not a type system, must catch).
    pub corrupt: u32,
    /// Common denominator of the rates above.
    pub den: u32,
    /// When true, each faulting `(library, function)` site fires **once**
    /// and then heals — modelling transient trouble a retry clears. When
    /// false, faults are permanent for the life of the wrapper.
    pub transient: bool,
}

impl SourceFaults {
    /// Typed errors only, 1-in-`n`, healing after one failure.
    pub fn transient_errors(n: u32) -> SourceFaults {
        SourceFaults { error: 1, panic: 0, corrupt: 0, den: n, transient: true }
    }

    /// Extraction panics only, 1-in-`n`, healing after one failure.
    pub fn transient_panics(n: u32) -> SourceFaults {
        SourceFaults { error: 0, panic: 1, corrupt: 0, den: n, transient: true }
    }

    /// Corrupted vectors only, 1-in-`n`, permanent.
    pub fn corruption(n: u32) -> SourceFaults {
        SourceFaults { error: 0, panic: 0, corrupt: 1, den: n, transient: false }
    }
}

/// Wraps any [`FeatureSource`], injecting faults per a [`FaultPlan`].
///
/// Fault decisions key on `(library name, function index)`, so which
/// functions fail is a property of the seed, not of call order — the same
/// seed faults the same functions whether the scan runs serial or on the
/// worker pool.
pub struct FaultyFeatureSource<S> {
    inner: S,
    plan: FaultPlan,
    faults: SourceFaults,
    healed: Mutex<HashSet<u64>>,
}

impl<S> FaultyFeatureSource<S> {
    /// Wrap `inner`, injecting per `plan` and `faults`.
    pub fn new(inner: S, plan: FaultPlan, faults: SourceFaults) -> FaultyFeatureSource<S> {
        FaultyFeatureSource { inner, plan, faults, healed: Mutex::new(HashSet::new()) }
    }

    /// The wrapped source.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Count of fault sites that have fired (and, in transient mode,
    /// healed).
    pub fn fired(&self) -> usize {
        self.healed.lock().unwrap().len()
    }

    fn site_key(bin: &Binary, idx: usize) -> u64 {
        FaultPlan::key_of(&bin.lib_name) ^ (idx as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
    }

    /// Whether the fault lane `site` fires for this call. In transient
    /// mode a site fires exactly once, then heals.
    fn should_fire(&self, site: &str, key: u64, rate: u32) -> bool {
        if !self.plan.fires(site, key, rate, self.faults.den) {
            return false;
        }
        let mut healed = self.healed.lock().unwrap();
        let first = healed.insert(key ^ FaultPlan::key_of(site));
        first || !self.faults.transient
    }

    fn inject(&self, bin: &Binary, idx: usize) -> Result<(), ScanError> {
        let key = Self::site_key(bin, idx);
        if self.should_fire("source.panic", key, self.faults.panic) {
            scope::inc("fault.injected");
            scope::inc("fault.source.panic");
            panic!(
                "faultline: injected extraction panic at {}:{idx} (seed {})",
                bin.lib_name,
                self.plan.seed()
            );
        }
        if self.should_fire("source.error", key, self.faults.error) {
            scope::inc("fault.injected");
            scope::inc("fault.source.error");
            return Err(ScanError::Injected {
                site: "features".into(),
                detail: format!("{}:{idx} (seed {})", bin.lib_name, self.plan.seed()),
            });
        }
        Ok(())
    }

    fn maybe_corrupt(&self, bin: &Binary, idx: usize, features: &mut StaticFeatures) {
        let key = Self::site_key(bin, idx);
        if self.should_fire("source.corrupt", key, self.faults.corrupt) {
            scope::inc("fault.injected");
            scope::inc("fault.source.corrupt");
            let lane = self.plan.pick("source.corrupt.lane", key, features.0.len());
            let bits = features.0[lane].to_bits() ^ (1 << self.plan.pick("source.corrupt.bit", key, 52));
            features.0[lane] = f64::from_bits(bits);
        }
    }
}

impl<S: FeatureSource> FeatureSource for FaultyFeatureSource<S> {
    fn features_all(&self, bin: &Binary) -> Result<Vec<StaticFeatures>, ScanError> {
        (0..bin.function_count()).map(|idx| self.features_one(bin, idx)).collect()
    }

    fn features_one(&self, bin: &Binary, idx: usize) -> Result<StaticFeatures, ScanError> {
        self.inject(bin, idx)?;
        let mut features = self.inner.features_one(bin, idx)?;
        self.maybe_corrupt(bin, idx, &mut features);
        Ok(features)
    }
}
