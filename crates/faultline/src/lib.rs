//! # patchecko-faultline — deterministic fault injection for the scan pipeline
//!
//! The production pipeline (`patchecko-core` + `patchecko-scanhub`) claims
//! a failure model: typed [`ScanError`](patchecko_core::error::ScanError)s
//! instead of panics, transparent retry of transient faults, quarantine of
//! corrupt cache artifacts, and graceful degradation to static-only
//! evidence when the dynamic stage is unavailable. This crate *attacks*
//! those claims, deterministically.
//!
//! Every fault comes from a seeded [`FaultPlan`]: a pure function of
//! `(seed, site, key)`, so a failing chaos run is replayed exactly by its
//! seed — independent of thread interleaving, wall-clock, or global RNG
//! state. The injectors wrap the pipeline's existing seams:
//!
//! * [`source::FaultyFeatureSource`] — wraps any
//!   [`FeatureSource`](patchecko_core::pipeline::FeatureSource), injecting
//!   extraction errors, panics, and corrupted feature vectors;
//! * [`disk`] — sabotages a persisted artifact cache on disk (garbage,
//!   truncation, stale schema, checksum tampering);
//! * [`image`] — corrupts FWB container bytes to attack the loader;
//! * [`hook`] — builds scheduler fault hooks that kill job attempts
//!   (simulated worker deaths), transiently or fatally;
//! * [`wire`] — sabotages the scan daemon's length-prefixed socket frames
//!   (truncation, corrupt length prefixes, garbage bodies, mid-request
//!   disconnects).
//!
//! The chaos proptest suite in `tests/chaos.rs` asserts the three headline
//! invariants: no panic escapes the scheduler, the cache never serves
//! corrupt features, and a faulty run whose transient faults were retried
//! away ranks bitwise identically to a clean run. `FAULTLINE_SEED`
//! pins the suite to one seed for CI replay.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod disk;
pub mod hook;
pub mod image;
pub mod plan;
pub mod source;
pub mod wire;

pub use disk::{CacheLane, DiskFault};
pub use plan::FaultPlan;
pub use source::{FaultyFeatureSource, SourceFaults};
pub use wire::{Sabotage, WireFault, WireFaults};
