//! The seeded fault plan: every injection decision is a pure function of
//! `(seed, site, key)`.
//!
//! Nothing here draws from a stateful RNG. A stateful generator would make
//! decisions depend on *call order*, and the scheduler runs jobs on a
//! work-stealing pool — two runs of the same batch interleave differently.
//! Deriving each decision from the identity of the operation instead
//! (which function, which job, which file) makes a chaos run replayable
//! from its seed alone, which is the whole point: a red CI run prints its
//! seed, and `FAULTLINE_SEED=<seed>` reproduces it locally, bit for bit.

/// One splitmix64 step: the standard 64-bit finalizer-style generator
/// (Steele et al., "Fast splittable pseudorandom number generators").
/// Used here as a mixing function, not as a sequential stream.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over a byte string, for naming injection sites.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A deterministic fault schedule, identified by its seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
}

impl FaultPlan {
    /// The plan for `seed`.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan { seed }
    }

    /// The seed this plan replays from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The raw 64-bit draw for `(site, key)` — uniform, independent of
    /// every other `(site, key)` pair for practical purposes.
    pub fn draw(&self, site: &str, key: u64) -> u64 {
        splitmix64(self.seed ^ fnv1a(site.as_bytes()) ^ splitmix64(key))
    }

    /// Whether the fault at `(site, key)` fires, with probability
    /// `num / den`. `den == 0` or `num == 0` never fires; `num >= den`
    /// always fires.
    pub fn fires(&self, site: &str, key: u64, num: u32, den: u32) -> bool {
        if num == 0 || den == 0 {
            return false;
        }
        (self.draw(site, key) % den as u64) < num as u64
    }

    /// A draw reduced to `[0, bound)` (`bound == 0` yields 0).
    pub fn pick(&self, site: &str, key: u64, bound: usize) -> usize {
        if bound == 0 {
            0
        } else {
            (self.draw(site, key) % bound as u64) as usize
        }
    }

    /// A stable key for a named object (library, CVE, file), for use as
    /// the `key` of the other methods.
    pub fn key_of(name: &str) -> u64 {
        fnv1a(name.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = FaultPlan::new(7);
        let b = FaultPlan::new(7);
        let c = FaultPlan::new(8);
        let mut same = 0;
        for key in 0..256u64 {
            assert_eq!(a.draw("x", key), b.draw("x", key), "same seed, same plan");
            if a.draw("x", key) == c.draw("x", key) {
                same += 1;
            }
        }
        assert!(same < 4, "different seeds must disagree almost everywhere");
    }

    #[test]
    fn sites_are_independent_lanes() {
        let plan = FaultPlan::new(42);
        let collisions =
            (0..256u64).filter(|&k| plan.draw("alpha", k) == plan.draw("beta", k)).count();
        assert!(collisions < 4);
    }

    #[test]
    fn fires_respects_probability_bounds() {
        let plan = FaultPlan::new(3);
        assert!(!plan.fires("s", 1, 0, 10), "zero numerator never fires");
        assert!(!plan.fires("s", 1, 1, 0), "zero denominator never fires");
        assert!(plan.fires("s", 1, 10, 10), "certain fault always fires");
        let hits = (0..1000u64).filter(|&k| plan.fires("s", k, 1, 4)).count();
        assert!((150..350).contains(&hits), "1-in-4 rate lands near 250/1000, got {hits}");
    }

    #[test]
    fn pick_stays_in_bounds() {
        let plan = FaultPlan::new(9);
        for k in 0..100 {
            assert!(plan.pick("p", k, 7) < 7);
        }
        assert_eq!(plan.pick("p", 1, 0), 0);
    }
}
