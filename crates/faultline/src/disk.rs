//! Disk saboteurs for the persisted artifact cache: deterministic,
//! seed-driven corruption of `artifacts.json` (static lane) or
//! `dyn_artifacts.json` (dynamic lane), modelling the ways a cache file
//! actually goes bad in the field (crash mid-write, bit rot, version
//! skew, tampering).

use crate::plan::FaultPlan;
use std::io;
use std::path::Path;

/// The corruption families the saboteur can apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskFault {
    /// Replace the file with seeded garbage bytes (including invalid
    /// UTF-8): total loss.
    Garbage,
    /// Cut the file at a seeded interior offset: a crash mid-write under
    /// a non-atomic writer.
    Truncate,
    /// Rewrite the schema version to a stale one: an old binary's cache
    /// left behind after an upgrade.
    StaleSchema,
    /// Alter one entry's stored checksum digit: targeted tampering the
    /// per-entry validation must catch while the rest of the cache loads.
    ChecksumFlip,
}

impl DiskFault {
    /// All families, for schedule-driven selection.
    pub const ALL: [DiskFault; 4] =
        [DiskFault::Garbage, DiskFault::Truncate, DiskFault::StaleSchema, DiskFault::ChecksumFlip];

    /// The family `plan` selects for `key`.
    pub fn chosen(plan: &FaultPlan, key: u64) -> DiskFault {
        Self::ALL[plan.pick("disk.fault", key, Self::ALL.len())]
    }
}

/// Which persisted cache document a disk fault targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheLane {
    /// `artifacts.json` — static features and CFG summaries.
    Static,
    /// `dyn_artifacts.json` — environment sets and dynamic profiles.
    Dynamic,
}

impl CacheLane {
    /// On-disk file name of the lane's document.
    pub fn file_name(self) -> &'static str {
        match self {
            CacheLane::Static => "artifacts.json",
            CacheLane::Dynamic => patchecko_scanhub::DYN_CACHE_FILE,
        }
    }
}

/// Apply `fault` to the static-lane cache under `dir` — see
/// [`sabotage_lane`].
///
/// # Errors
/// Propagates filesystem errors; the cache file must exist.
pub fn sabotage(dir: &Path, fault: DiskFault, plan: &FaultPlan) -> io::Result<String> {
    sabotage_lane(dir, CacheLane::Static, fault, plan)
}

/// Apply `fault` to `lane`'s cache document under `dir`, deterministically
/// per `plan`. Returns a human-readable description of what was done (for
/// failure-schedule logs).
///
/// # Errors
/// Propagates filesystem errors; the lane's cache file must exist.
pub fn sabotage_lane(
    dir: &Path,
    lane: CacheLane,
    fault: DiskFault,
    plan: &FaultPlan,
) -> io::Result<String> {
    let path = dir.join(lane.file_name());
    let bytes = std::fs::read(&path)?;
    let key = bytes.len() as u64;
    let (mutated, what) = match fault {
        DiskFault::Garbage => {
            let len = 16 + plan.pick("disk.garbage.len", key, 4096);
            let garbage: Vec<u8> = (0..len)
                .map(|i| (plan.draw("disk.garbage.byte", key ^ i as u64) & 0xff) as u8)
                .collect();
            (garbage, format!("overwrote with {len} garbage bytes"))
        }
        DiskFault::Truncate => {
            let cut = 1 + plan.pick("disk.truncate.at", key, bytes.len().saturating_sub(2).max(1));
            (bytes[..cut].to_vec(), format!("truncated {} -> {cut} bytes", bytes.len()))
        }
        DiskFault::StaleSchema => {
            let json = String::from_utf8_lossy(&bytes);
            let stale = json.replacen(
                &format!("\"schema\":{}", patchecko_scanhub::SCHEMA_VERSION),
                "\"schema\":1",
                1,
            );
            (stale.into_bytes(), "rewrote schema version to v1".to_string())
        }
        DiskFault::ChecksumFlip => {
            let json = String::from_utf8_lossy(&bytes).into_owned();
            let needle = "\"checksum\":";
            let hits: Vec<usize> = json.match_indices(needle).map(|(i, _)| i).collect();
            if hits.is_empty() {
                return Ok("no checksum field to flip".to_string());
            }
            let at = hits[plan.pick("disk.flip.entry", key, hits.len())] + needle.len();
            let mut out = json.into_bytes();
            // Rotate the first digit of the stored checksum; always lands
            // on a different valid number.
            let d = out[at];
            debug_assert!(d.is_ascii_digit());
            out[at] = b'0' + (d - b'0' + 1) % 10;
            (out, format!("flipped checksum digit at byte {at}"))
        }
    };
    std::fs::write(&path, mutated)?;
    scope::inc("fault.injected");
    scope::inc("fault.disk.sabotage");
    Ok(what)
}
