//! Wire-protocol fault injection for the scan daemon's socket seams.
//!
//! The `scand` protocol is a 4-byte little-endian length prefix followed
//! by a JSON body. This module sabotages *encoded frames* — the byte
//! vector a client or server is about to write — so chaos tests can
//! attack the daemon's framing layer from outside: truncated frames
//! (client died mid-write), corrupted length prefixes (a frame claiming
//! to be gigabytes long), garbage bodies (unparseable JSON), clean
//! mid-request disconnects, seeded mid-frame stalls (a slow client
//! pausing with half a frame written), and half-open sockets (a peer
//! that went silent without ever closing). The daemon's contract under
//! all of them is the same: answer with a typed `Protocol` error or
//! drop/reap the one connection — never hang, never panic, never poison
//! another client's request.
//!
//! Queue-full — the remaining daemon seam — needs no byte sabotage: it is
//! driven by configuring a small admission limit and offering more
//! concurrent requests than the queue holds, and is asserted through the
//! typed `Overloaded` rejection.
//!
//! Like every other injector in this crate, decisions come from a seeded
//! [`FaultPlan`] keyed by the frame's identity, so a failing soak run
//! replays bit-for-bit from its seed.

use crate::plan::FaultPlan;

/// The wire-level faults the sabotager can inject into one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFault {
    /// Deliver only a prefix of the frame, then hang up — a client (or
    /// server) dying mid-write.
    TruncateFrame,
    /// Rewrite the 4-byte length prefix to an absurd size; the body is
    /// delivered unchanged. A correct peer rejects the frame on the
    /// prefix alone instead of trying to buffer gigabytes.
    CorruptLength,
    /// Flip bytes inside the JSON body (length prefix stays correct);
    /// the frame arrives whole but does not parse.
    GarbageBody,
    /// Hang up before writing anything — a mid-request client disconnect.
    Disconnect,
    /// Write part of the frame, pause for a seeded interval, then write
    /// the rest — a slow or GC-pausing client stalling mid-write. A
    /// daemon without socket timeouts pins a handler thread for the
    /// whole pause; one with timeouts reaps stalls past its budget.
    StallMidFrame,
    /// Write part of the frame and then go silent *without* closing —
    /// the half-open socket of a peer that lost power or network. The
    /// daemon never sees EOF; only a read timeout can free the handler.
    HalfOpen,
}

/// What to actually put on the socket for one frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Sabotage {
    /// Write these bytes (possibly mangled) and carry on.
    Deliver(Vec<u8>),
    /// Write only the first `after` bytes, then close the connection.
    Hangup {
        /// Bytes to write before closing (0 = close immediately).
        after: usize,
    },
    /// Write `first`, sleep `pause_ms`, write `rest`, carry on.
    Stall {
        /// Bytes written before the stall (at least 1 — the peer has
        /// started reading the frame).
        first: Vec<u8>,
        /// How long to stay silent mid-frame, milliseconds.
        pause_ms: u64,
        /// The remainder of the frame, written after the pause.
        rest: Vec<u8>,
    },
    /// Write only the first `after` bytes, then keep the socket open and
    /// silent for as long as the harness allows — never sending the rest
    /// and never closing.
    Hold {
        /// Bytes to write before going silent.
        after: usize,
    },
}

/// Seeded per-frame sabotage of length-prefixed frames. Each fault kind
/// has an independent 1-in-N rate (`0` disables it); kinds are checked in
/// a fixed order, so at most one fires per frame.
#[derive(Debug, Clone, Copy)]
pub struct WireFaults {
    plan: FaultPlan,
    /// 1-in-N rate for [`WireFault::Disconnect`] (0 = never).
    pub disconnect_in: u32,
    /// 1-in-N rate for [`WireFault::TruncateFrame`] (0 = never).
    pub truncate_in: u32,
    /// 1-in-N rate for [`WireFault::CorruptLength`] (0 = never).
    pub corrupt_len_in: u32,
    /// 1-in-N rate for [`WireFault::GarbageBody`] (0 = never).
    pub garbage_in: u32,
    /// 1-in-N rate for [`WireFault::StallMidFrame`] (0 = never).
    pub stall_in: u32,
    /// 1-in-N rate for [`WireFault::HalfOpen`] (0 = never).
    pub half_open_in: u32,
    /// Upper bound on a stall's pause, milliseconds (pauses draw
    /// uniformly from `[1, max_stall_ms]`).
    pub max_stall_ms: u64,
}

impl WireFaults {
    /// A sabotager with every fault disabled (frames pass untouched).
    pub fn none(plan: FaultPlan) -> WireFaults {
        WireFaults {
            plan,
            disconnect_in: 0,
            truncate_in: 0,
            corrupt_len_in: 0,
            garbage_in: 0,
            stall_in: 0,
            half_open_in: 0,
            max_stall_ms: 200,
        }
    }

    /// An aggressive sabotager: each fault kind at 1-in-8 per frame
    /// (over half the frames suffer *some* fault), stalls bounded at a
    /// modest 200 ms so chaos suites stay fast.
    pub fn aggressive(plan: FaultPlan) -> WireFaults {
        WireFaults {
            plan,
            disconnect_in: 8,
            truncate_in: 8,
            corrupt_len_in: 8,
            garbage_in: 8,
            stall_in: 8,
            half_open_in: 8,
            max_stall_ms: 200,
        }
    }

    /// The plan decisions replay from.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    /// Which fault (if any) fires for the frame identified by `key`.
    /// Deterministic in `(seed, key)`.
    pub fn verdict(&self, key: u64) -> Option<WireFault> {
        if self.plan.fires("wire.disconnect", key, 1, self.disconnect_in) {
            Some(WireFault::Disconnect)
        } else if self.plan.fires("wire.truncate", key, 1, self.truncate_in) {
            Some(WireFault::TruncateFrame)
        } else if self.plan.fires("wire.corrupt_len", key, 1, self.corrupt_len_in) {
            Some(WireFault::CorruptLength)
        } else if self.plan.fires("wire.garbage", key, 1, self.garbage_in) {
            Some(WireFault::GarbageBody)
        } else if self.plan.fires("wire.stall", key, 1, self.stall_in) {
            Some(WireFault::StallMidFrame)
        } else if self.plan.fires("wire.half_open", key, 1, self.half_open_in) {
            Some(WireFault::HalfOpen)
        } else {
            None
        }
    }

    /// Sabotage one encoded frame (4-byte LE length prefix + body).
    /// Frames too small to carry the targeted structure pass through
    /// unharmed rather than panicking the *injector*.
    pub fn apply(&self, key: u64, frame: &[u8]) -> Sabotage {
        match self.verdict(key) {
            None => Sabotage::Deliver(frame.to_vec()),
            Some(WireFault::Disconnect) => Sabotage::Hangup { after: 0 },
            Some(WireFault::TruncateFrame) => {
                if frame.len() < 2 {
                    return Sabotage::Hangup { after: 0 };
                }
                // Cut anywhere in [1, len - 1]: at least one byte goes out
                // (the peer has started reading), at least one is missing.
                let cut = 1 + self.plan.pick("wire.truncate_at", key, frame.len() - 1);
                Sabotage::Hangup { after: cut.min(frame.len() - 1) }
            }
            Some(WireFault::CorruptLength) => {
                let mut out = frame.to_vec();
                if out.len() >= 4 {
                    // Claim ≥ 1 GiB: every sane frame ceiling rejects it.
                    let bogus = (self.plan.draw("wire.bogus_len", key) as u32) | (1 << 30);
                    out[..4].copy_from_slice(&bogus.to_le_bytes());
                }
                Sabotage::Deliver(out)
            }
            Some(WireFault::GarbageBody) => {
                let mut out = frame.to_vec();
                let body = out.len().saturating_sub(4);
                for i in 0..body.min(8) as u64 {
                    let at = 4 + self.plan.pick("wire.garbage_at", key ^ i, body);
                    // XOR with a value ≥ 0x80: the byte always changes,
                    // and high-bit garbage lands outside ASCII JSON.
                    out[at] ^= 0x80 | (self.plan.draw("wire.garbage_val", key ^ i) as u8 & 0x7f);
                }
                Sabotage::Deliver(out)
            }
            Some(WireFault::StallMidFrame) => {
                if frame.len() < 2 {
                    return Sabotage::Deliver(frame.to_vec());
                }
                // Split anywhere in [1, len - 1]: both halves non-empty,
                // so the peer is mid-frame for the whole pause.
                let cut = (1 + self.plan.pick("wire.stall_at", key, frame.len() - 1))
                    .min(frame.len() - 1);
                let pause_ms = 1 + self.plan.draw("wire.stall_ms", key) % self.max_stall_ms.max(1);
                Sabotage::Stall {
                    first: frame[..cut].to_vec(),
                    pause_ms,
                    rest: frame[cut..].to_vec(),
                }
            }
            Some(WireFault::HalfOpen) => {
                if frame.len() < 2 {
                    return Sabotage::Hold { after: 0 };
                }
                let cut = 1 + self.plan.pick("wire.half_open_at", key, frame.len() - 1);
                Sabotage::Hold { after: cut.min(frame.len() - 1) }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(body: &[u8]) -> Vec<u8> {
        let mut f = (body.len() as u32).to_le_bytes().to_vec();
        f.extend_from_slice(body);
        f
    }

    #[test]
    fn disabled_faults_pass_frames_untouched() {
        let w = WireFaults::none(FaultPlan::new(1));
        let f = frame(br#"{"kind":"stats"}"#);
        for key in 0..64 {
            assert_eq!(w.verdict(key), None);
            assert_eq!(w.apply(key, &f), Sabotage::Deliver(f.clone()));
        }
    }

    #[test]
    fn sabotage_is_deterministic_in_seed_and_key() {
        let a = WireFaults::aggressive(FaultPlan::new(77));
        let b = WireFaults::aggressive(FaultPlan::new(77));
        let f = frame(b"{\"kind\":\"scan\",\"tenant\":\"acme\"}");
        for key in 0..256 {
            assert_eq!(a.verdict(key), b.verdict(key));
            assert_eq!(a.apply(key, &f), b.apply(key, &f));
        }
    }

    #[test]
    fn aggressive_plan_exercises_every_fault_kind() {
        let w = WireFaults::aggressive(FaultPlan::new(1337));
        let mut seen = std::collections::HashSet::new();
        for key in 0..512 {
            if let Some(v) = w.verdict(key) {
                seen.insert(format!("{v:?}"));
            }
        }
        assert_eq!(seen.len(), 6, "512 frames at 1-in-8 each must hit all kinds: {seen:?}");
    }

    #[test]
    fn sabotaged_frames_have_the_advertised_shapes() {
        let w = WireFaults::aggressive(FaultPlan::new(9));
        let f = frame(br#"{"kind":"audit","tenant":"t0","image":3}"#);
        for key in 0..512 {
            match (w.verdict(key), w.apply(key, &f)) {
                (None, Sabotage::Deliver(out)) => assert_eq!(out, f),
                (Some(WireFault::Disconnect), Sabotage::Hangup { after }) => assert_eq!(after, 0),
                (Some(WireFault::TruncateFrame), Sabotage::Hangup { after }) => {
                    assert!(after >= 1 && after < f.len(), "partial write, got {after}");
                }
                (Some(WireFault::CorruptLength), Sabotage::Deliver(out)) => {
                    assert_eq!(out.len(), f.len());
                    let claimed = u32::from_le_bytes(out[..4].try_into().unwrap());
                    assert!(claimed >= 1 << 30, "length must be absurd, got {claimed}");
                    assert_eq!(&out[4..], &f[4..], "body untouched");
                }
                (Some(WireFault::GarbageBody), Sabotage::Deliver(out)) => {
                    assert_eq!(out.len(), f.len());
                    assert_eq!(&out[..4], &f[..4], "prefix untouched");
                    assert_ne!(&out[4..], &f[4..], "body mangled");
                }
                (Some(WireFault::StallMidFrame), Sabotage::Stall { first, pause_ms, rest }) => {
                    assert!(!first.is_empty() && !rest.is_empty(), "stall splits mid-frame");
                    let mut whole = first.clone();
                    whole.extend_from_slice(&rest);
                    assert_eq!(whole, f, "a stall delays bytes, never changes them");
                    assert!((1..=200).contains(&pause_ms), "pause bounded, got {pause_ms}");
                }
                (Some(WireFault::HalfOpen), Sabotage::Hold { after }) => {
                    assert!(after >= 1 && after < f.len(), "partial then silence, got {after}");
                }
                (v, s) => panic!("inconsistent verdict {v:?} / sabotage {s:?}"),
            }
        }
    }

    #[test]
    fn degenerate_frames_never_panic_the_injector() {
        let w = WireFaults::aggressive(FaultPlan::new(4));
        for key in 0..256 {
            let _ = w.apply(key, &[]);
            let _ = w.apply(key, &[7]);
            let _ = w.apply(key, &0u32.to_le_bytes()); // empty body
        }
    }
}
