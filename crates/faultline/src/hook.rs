//! Scheduler chaos hooks: seeded worker-death injection through the
//! [`FaultHook`] seam `patchecko_scanhub::schedule` exposes.
//!
//! A "death" preempts a job attempt exactly where a lost worker would:
//! after the job was dequeued, before its scan produced anything. The
//! victim set is a pure function of the plan and each job's identity
//! (image index, CVE, basis) — thread interleaving cannot move a death
//! from one job to another.

use crate::plan::FaultPlan;
use patchecko_core::error::ScanError;
use patchecko_scanhub::schedule::{FaultHook, JobSpec};
use std::sync::Arc;

fn job_key(spec: &JobSpec) -> u64 {
    FaultPlan::key_of(&spec.cve)
        ^ (spec.image as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ FaultPlan::key_of(&format!("{:?}", spec.basis))
}

/// A hook that kills the first `deaths` attempts of roughly 1-in-`die_in`
/// jobs with a transient [`ScanError::Injected`]. With `deaths` below the
/// scheduler's `max_attempts`, every victim job still completes — the
/// setup for the retried-away-faults identity invariant.
pub fn worker_deaths(plan: FaultPlan, die_in: u32, deaths: u32) -> Arc<FaultHook> {
    Arc::new(move |spec: &JobSpec, attempt: u32| {
        let key = job_key(spec);
        if attempt <= deaths && plan.fires("hook.death", key, 1, die_in) {
            scope::inc("fault.injected");
            scope::inc("fault.hook.death");
            Some(ScanError::Injected {
                site: "scheduler".into(),
                detail: format!(
                    "worker death, job {}/{}/{:?} attempt {attempt} (seed {})",
                    spec.image,
                    spec.cve,
                    spec.basis,
                    plan.seed()
                ),
            })
        } else {
            None
        }
    })
}

/// A hook that *panics* on the first `deaths` attempts of roughly
/// 1-in-`die_in` jobs — the rawest failure a worker can produce. The
/// scheduler must contain it (classified as a transient `WorkerPanic`
/// and retried), which is exactly what the no-panic-escapes chaos
/// invariant checks.
pub fn panicking_deaths(plan: FaultPlan, die_in: u32, deaths: u32) -> Arc<FaultHook> {
    Arc::new(move |spec: &JobSpec, attempt: u32| {
        let key = job_key(spec);
        if attempt <= deaths && plan.fires("hook.death", key, 1, die_in) {
            scope::inc("fault.injected");
            scope::inc("fault.hook.panic");
            panic!(
                "faultline: worker died, job {}/{}/{:?} attempt {attempt} (seed {})",
                spec.image,
                spec.cve,
                spec.basis,
                plan.seed()
            );
        }
        None
    })
}

/// The victim jobs `plan` selects out of `jobs` at rate 1-in-`die_in` —
/// what the hooks above will target, computable ahead of the run.
pub fn victims(plan: &FaultPlan, jobs: &[JobSpec], die_in: u32) -> Vec<usize> {
    jobs.iter()
        .enumerate()
        .filter(|(_, spec)| plan.fires("hook.death", job_key(spec), 1, die_in))
        .map(|(i, _)| i)
        .collect()
}
