//! The chaos suite: seeded fault injection against the scan pipeline's
//! resilience claims.
//!
//! Headline invariants (from the failure model in DESIGN.md §9):
//!
//! 1. **No panic escapes the scheduler** — worker deaths, including raw
//!    panics, are contained, classified, and retried.
//! 2. **The cache never serves corrupt features** — whatever happens to
//!    the on-disk layer, a reloaded store's answers are bit-identical to
//!    fresh extraction.
//! 3. **Transient faults leave no trace** — a faulty run whose injected
//!    faults were retried away produces bitwise-identical outcomes to a
//!    clean run.
//! 4. **The dynamic lane fails open to live execution** — sabotage of
//!    `dyn_artifacts.json` quarantines the damage, the next run falls
//!    back to live fuzzing/VM execution with results bitwise-identical
//!    to a cold run, and the following save self-heals the cache.
//!
//! Set `FAULTLINE_SEED=<n>` to pin every test to one seed (CI runs a
//! small fixed-seed matrix); unset, each test sweeps seeds drawn by
//! proptest. Each case appends its seed to a schedule log under
//! `CARGO_TARGET_TMPDIR` before acting, so a red run's last log line
//! identifies the schedule to replay.

use corpus::dataset1::Dataset1Config;
use corpus::vulndb::VulnDb;
use neural::net::TrainConfig;
use patchecko_core::detector::{self, Detector, DetectorConfig};
use patchecko_core::error::ScanError;
use patchecko_core::pipeline::{
    live_profiling, Basis, DirectExtraction, FeatureSource, Patchecko, PipelineConfig,
};
use patchecko_core::dynsource::DynProfileSource;
use patchecko_faultline::{
    disk, hook, image, CacheLane, DiskFault, FaultPlan, FaultyFeatureSource, SourceFaults,
};
use patchecko_scanhub::{full_schedule, ArtifactStore, JobOutcome, RetryPolicy, ScanHub};
use proptest::prelude::*;
use proptest::strategy::BoxedStrategy;
use std::io::Write;
use std::sync::{Arc, OnceLock};

/// The pinned seed, when the suite runs in fixed-seed (CI matrix) mode.
fn pinned_seed() -> Option<u64> {
    std::env::var("FAULTLINE_SEED").ok().and_then(|s| s.parse().ok())
}

/// Seed strategy: the pinned seed, or a proptest sweep.
fn seeds() -> BoxedStrategy<u64> {
    match pinned_seed() {
        Some(seed) => proptest::strategy::boxed(Just(seed)),
        None => proptest::strategy::boxed(0u64..1_000_000),
    }
}

/// Case count: one per pinned seed, a sweep otherwise.
fn cases(sweep: u32) -> ProptestConfig {
    ProptestConfig { cases: if pinned_seed().is_some() { 1 } else { sweep }, ..Default::default() }
}

/// Append this case's schedule to the failure log *before* acting: if the
/// case panics, the last line names the schedule to replay.
fn log_case(test: &str, detail: &str) {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"));
    let _ = std::fs::create_dir_all(dir);
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.join(format!("faultline-{test}.log")))
    {
        let _ = writeln!(f, "{detail}");
    }
}

fn shared_detector() -> &'static Detector {
    static DET: OnceLock<Detector> = OnceLock::new();
    DET.get_or_init(|| {
        let ds = corpus::build_dataset1(&Dataset1Config {
            num_libraries: 10,
            min_functions: 8,
            max_functions: 12,
            seed: 1,
            include_catalog: true,
        });
        let cfg = DetectorConfig {
            pairs_per_function: 6,
            train: TrainConfig { epochs: 10, batch: 256, lr: 1e-3, seed: 7, ..Default::default() },
            ..DetectorConfig::default()
        };
        detector::train(&ds, &cfg).0
    })
}

fn shared_device() -> &'static corpus::DeviceBuild {
    static DEV: OnceLock<corpus::DeviceBuild> = OnceLock::new();
    DEV.get_or_init(|| {
        corpus::build_device(&corpus::android_things_spec(), &corpus::full_catalog(), 0.05)
    })
}

fn small_db() -> VulnDb {
    let mut db = corpus::build_vulndb(0, 1);
    db.entries.truncate(3);
    db
}

fn hub_with(retry: RetryPolicy) -> ScanHub {
    let mut analyzer = Patchecko::new(shared_detector().clone(), PipelineConfig::default());
    analyzer.config.threads = Some(2);
    ScanHub::new(analyzer).with_retry_policy(retry)
}

/// Outcomes only (attempts and wall-clock legitimately differ between a
/// clean and a faulty-but-retried run).
fn outcome_fingerprint(report: &patchecko_scanhub::BatchReport) -> Vec<String> {
    report.records.iter().map(|r| serde_json::to_string(&r.outcome).unwrap()).collect()
}

/// One clean batch run, shared across cases — the identity baseline.
fn clean_fingerprint() -> &'static Vec<String> {
    static CLEAN: OnceLock<Vec<String>> = OnceLock::new();
    CLEAN.get_or_init(|| {
        let hub = Arc::new(hub_with(RetryPolicy::no_retry()));
        let db = Arc::new(small_db());
        let images = Arc::new(vec![shared_device().image.clone()]);
        let jobs = full_schedule(images.len(), &db, &[Basis::Vulnerable]);
        let report = hub.batch_audit(&images, &db, &jobs);
        assert_eq!(report.failed(), 0, "the clean baseline must be clean");
        outcome_fingerprint(&report)
    })
}

fn compile(seed: u64) -> fwbin::format::Binary {
    let lib = fwlang::gen::Generator::new(seed % 64).library_sized("libchaos", 6);
    fwbin::compile_library(&lib, fwbin::isa::Arch::Arm64, fwbin::isa::OptLevel::O1).unwrap()
}

fn feature_bits(source: &impl FeatureSource, bin: &fwbin::format::Binary) -> Vec<Vec<u64>> {
    source
        .features_all(bin)
        .unwrap()
        .iter()
        .map(|f| f.as_slice().iter().map(|v| v.to_bits()).collect())
        .collect()
}

/// A fast fuzzer config for the dynamic-lane properties: same determinism
/// guarantees as the default, a fraction of the executions.
fn small_fuzz() -> vm::FuzzConfig {
    vm::FuzzConfig { rounds: 40, num_envs: 3, ..vm::FuzzConfig::default() }
}

/// Bitwise image of a full dynamic pass over every function of `lb`
/// through `store`'s dynamic lane: per-function ok bits and exact feature
/// bit patterns.
fn dyn_pass_bits(
    store: &ArtifactStore,
    lb: &vm::LoadedBinary,
    fuzz: &vm::FuzzConfig,
    vmc: &vm::VmConfig,
) -> Vec<(Vec<bool>, Vec<Vec<u64>>)> {
    let envs = store.environments(lb, fuzz, vmc).unwrap();
    (0..lb.function_count())
        .map(|f| {
            let p = store.profile(lb, f, &envs, vmc).unwrap();
            let bits = p
                .features
                .iter()
                .map(|v| v.as_slice().iter().map(|x| x.to_bits()).collect())
                .collect();
            (p.ok, bits)
        })
        .collect()
}

proptest! {
    #![proptest_config(cases(4))]

    /// Invariants 1+3: transient worker deaths (typed errors) are retried
    /// away; every job completes and outcomes match the clean run
    /// bitwise.
    #[test]
    fn retried_worker_deaths_leave_no_trace(seed in seeds()) {
        log_case("retried_worker_deaths", &format!("seed {seed}: worker_deaths die_in=2 deaths=2"));
        let plan = FaultPlan::new(seed);
        let retry = RetryPolicy { max_attempts: 4, base_backoff_ms: 0, job_timeout_ms: None };
        let hub = Arc::new(hub_with(retry).with_fault_hook(hook::worker_deaths(plan, 2, 2)));
        let db = Arc::new(small_db());
        let images = Arc::new(vec![shared_device().image.clone()]);
        let jobs = full_schedule(images.len(), &db, &[Basis::Vulnerable]);
        let victims = hook::victims(&plan, &jobs, 2);

        let report = hub.batch_audit(&images, &db, &jobs);
        prop_assert_eq!(report.failed(), 0, "transient deaths must all be retried away");
        for &v in &victims {
            prop_assert_eq!(report.records[v].attempts, 3, "two deaths cost exactly two retries");
        }
        prop_assert_eq!(report.retried().count(), victims.len());
        prop_assert_eq!(&outcome_fingerprint(&report), clean_fingerprint(),
            "a faulty run whose faults were retried away must rank identically");
    }

    /// Invariants 1+3 again, with the rawest fault a worker can produce:
    /// a panic mid-dispatch. Nothing escapes the scheduler, and outcomes
    /// still match the clean run.
    #[test]
    fn panicking_workers_are_contained(seed in seeds()) {
        log_case("panicking_workers", &format!("seed {seed}: panicking_deaths die_in=2 deaths=1"));
        let plan = FaultPlan::new(seed);
        let retry = RetryPolicy { max_attempts: 3, base_backoff_ms: 0, job_timeout_ms: None };
        let hub = Arc::new(hub_with(retry).with_fault_hook(hook::panicking_deaths(plan, 2, 1)));
        let db = Arc::new(small_db());
        let images = Arc::new(vec![shared_device().image.clone()]);
        let jobs = full_schedule(images.len(), &db, &[Basis::Vulnerable]);
        let victims = hook::victims(&plan, &jobs, 2);

        // If a panic escaped the scheduler, this call would abort the test.
        let report = hub.batch_audit(&images, &db, &jobs);
        prop_assert_eq!(report.failed(), 0, "a panicked attempt retries like any transient fault");
        for &v in &victims {
            prop_assert_eq!(report.records[v].attempts, 2);
        }
        prop_assert_eq!(&outcome_fingerprint(&report), clean_fingerprint());
    }

    /// Worker deaths that outlast the retry budget fail *closed*: a typed,
    /// transient-classified error with the full attempt count — and the
    /// healthy jobs still match the clean run.
    #[test]
    fn permanent_deaths_fail_typed_and_contained(seed in seeds()) {
        log_case("permanent_deaths", &format!("seed {seed}: worker_deaths die_in=2 deaths=MAX"));
        let plan = FaultPlan::new(seed);
        let retry = RetryPolicy { max_attempts: 3, base_backoff_ms: 0, job_timeout_ms: None };
        let hub =
            Arc::new(hub_with(retry).with_fault_hook(hook::worker_deaths(plan, 2, u32::MAX)));
        let db = Arc::new(small_db());
        let images = Arc::new(vec![shared_device().image.clone()]);
        let jobs = full_schedule(images.len(), &db, &[Basis::Vulnerable]);
        let victims = hook::victims(&plan, &jobs, 2);

        let report = hub.batch_audit(&images, &db, &jobs);
        prop_assert_eq!(report.failed(), victims.len());
        let clean = clean_fingerprint();
        let fingerprint = outcome_fingerprint(&report);
        for (i, record) in report.records.iter().enumerate() {
            if victims.contains(&i) {
                match &record.outcome {
                    JobOutcome::Failed { error: ScanError::Injected { .. }, attempts: 3 } => {}
                    other => prop_assert!(false, "expected exhausted Injected, got {other:?}"),
                }
            } else {
                prop_assert_eq!(&fingerprint[i], &clean[i], "healthy jobs are untouched");
            }
        }
        prop_assert!(!report.failure_summary().is_empty() || victims.is_empty());
    }
}

proptest! {
    #![proptest_config(cases(16))]

    /// Invariant 2: whatever the saboteur does to the on-disk cache —
    /// garbage, truncation, stale schema, checksum tampering — a reloaded
    /// store quarantines the damage and serves features bit-identical to
    /// fresh extraction.
    #[test]
    fn cache_never_serves_corruption(seed in seeds()) {
        let plan = FaultPlan::new(seed);
        let fault = DiskFault::chosen(&plan, seed);
        log_case("cache_corruption", &format!("seed {seed}: {fault:?}"));
        let dir = std::env::temp_dir()
            .join(format!("faultline-disk-{}-{seed}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let bin = compile(seed);
        let store = ArtifactStore::new();
        let fresh = feature_bits(&DirectExtraction, &bin);
        prop_assert_eq!(&feature_bits(&store, &bin), &fresh);
        store.save(&dir).unwrap();

        let what = disk::sabotage(&dir, fault, &plan).unwrap();
        let reloaded = ArtifactStore::load(&dir).unwrap();
        prop_assert!(reloaded.stats().quarantined >= 1,
            "sabotage ({what}) must be noticed and quarantined");
        prop_assert!(!reloaded.quarantine_records().is_empty());
        prop_assert_eq!(&feature_bits(&reloaded, &bin), &fresh,
            "a sabotaged cache ({what}) must re-extract, bit-identical to fresh");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The loader survives arbitrary container damage: bit flips and
    /// truncation yield `Ok` or a typed `LoadError`, never a panic.
    #[test]
    fn loader_never_panics_on_corrupt_images(seed in seeds(), flips in 1usize..16) {
        log_case("loader_corruption", &format!("seed {seed}: {flips} bit flips + truncation"));
        let plan = FaultPlan::new(seed);
        let bin = compile(seed);
        for bytes in [
            image::corrupted_encoding(&bin, &plan, flips),
            image::truncated_encoding(&bin, &plan),
        ] {
            let outcome = std::panic::catch_unwind(|| {
                vm::LoadedBinary::from_bytes(&bytes).map(|_| ())
            });
            match outcome {
                Ok(Ok(())) => {} // flips landed somewhere harmless
                Ok(Err(_load_error)) => {} // typed rejection: the contract
                Err(_) => prop_assert!(false,
                    "loader panicked on corrupt image (seed {seed}, {flips} flips)"),
            }
        }
    }

    /// Transient extraction faults at the pipeline's feature seam surface
    /// as typed, retriable errors — and once the fault heals, the analysis
    /// is bit-identical to a clean run.
    #[test]
    fn healed_extraction_faults_leave_no_trace(seed in seeds()) {
        log_case("extraction_faults", &format!("seed {seed}: transient_errors 1-in-3"));
        let plan = FaultPlan::new(seed);
        let db = corpus::build_vulndb(0, 1);
        let entry = db.get("CVE-2018-9412").unwrap();
        let device = shared_device();
        let truth = device.truth_for("CVE-2018-9412").unwrap();
        let bin = device.image.binary(&truth.library).unwrap();
        let analyzer = Patchecko::new(shared_detector().clone(), PipelineConfig::default());

        let clean = analyzer
            .analyze_library_with(bin, entry, Basis::Vulnerable, &DirectExtraction, &live_profiling())
            .unwrap();

        let faulty =
            FaultyFeatureSource::new(DirectExtraction, plan, SourceFaults::transient_errors(3));
        let mut result = analyzer.analyze_library_with(bin, entry, Basis::Vulnerable, &faulty, &live_profiling());
        let mut retries = 0;
        while let Err(err) = result {
            prop_assert!(matches!(err, ScanError::Injected { .. }), "unexpected error {err}");
            prop_assert!(err.is_transient(), "injected faults must classify transient");
            retries += 1;
            prop_assert!(retries <= 64, "every fault heals, so retries must converge");
            result = analyzer.analyze_library_with(bin, entry, Basis::Vulnerable, &faulty, &live_profiling());
        }
        let healed = result.unwrap();
        prop_assert_eq!(&healed.scan.probs, &clean.scan.probs);
        prop_assert_eq!(&healed.scan.candidates, &clean.scan.candidates);
        prop_assert_eq!(&healed.dynamic.validated, &clean.dynamic.validated);
        prop_assert_eq!(&healed.dynamic.ranking, &clean.dynamic.ranking,
            "healed run must rank bit-identically to clean");
        prop_assert_eq!(healed.dynamic.confidence, clean.dynamic.confidence);
    }
}

proptest! {
    #![proptest_config(cases(6))]

    /// Invariant 4: whatever the saboteur does to `dyn_artifacts.json`,
    /// a reloaded store quarantines the damage and the next dynamic pass
    /// falls back to live VM execution, bitwise-identical to a cold run.
    /// The static lane never notices.
    #[test]
    fn dyn_cache_never_serves_corruption(seed in seeds()) {
        let plan = FaultPlan::new(seed);
        let fault = DiskFault::chosen(&plan, seed ^ 0xD15C);
        log_case("dyn_cache_corruption", &format!("seed {seed}: {fault:?} on dynamic lane"));
        let dir = std::env::temp_dir()
            .join(format!("faultline-dyndisk-{}-{seed}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let lb = vm::LoadedBinary::load(compile(seed)).unwrap();
        let (fuzz, vmc) = (small_fuzz(), vm::VmConfig::default());
        let store = ArtifactStore::new();
        let cold = dyn_pass_bits(&store, &lb, &fuzz, &vmc);
        store.save(&dir).unwrap();

        let what = disk::sabotage_lane(&dir, CacheLane::Dynamic, fault, &plan).unwrap();
        let reloaded = ArtifactStore::load(&dir).unwrap();
        prop_assert!(reloaded.stats().dyn_quarantined >= 1,
            "dynamic-lane sabotage ({what}) must be noticed and quarantined");
        prop_assert_eq!(reloaded.stats().quarantined, 0,
            "static lane untouched by dynamic-lane damage");
        let warm = dyn_pass_bits(&reloaded, &lb, &fuzz, &vmc);
        prop_assert_eq!(&warm, &cold,
            "a sabotaged dynamic lane ({what}) must fall back to live execution, \
             bit-identical to a cold run");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Engine chaos case through the VM seam: the dynamic lane is
    /// populated under the fast engine, sabotaged on disk, and the
    /// live-execution fallback re-runs under the reference *interpreter*.
    /// Results must still match the fast cold pass bit for bit: cached
    /// profiles are engine-invariant (the engine is deliberately not part
    /// of any cache key), so a mixed pass — some entries served from the
    /// surviving cache, some re-executed live by the other engine — is
    /// indistinguishable from a homogeneous one.
    #[test]
    fn dyn_cache_fallback_is_engine_invariant(seed in seeds()) {
        let plan = FaultPlan::new(seed);
        let fault = DiskFault::chosen(&plan, seed ^ 0xE491);
        log_case("dyn_cache_engine", &format!("seed {seed}: {fault:?} on dynamic lane"));
        let dir = std::env::temp_dir()
            .join(format!("faultline-dyneng-{}-{seed}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let lb = vm::LoadedBinary::load(compile(seed)).unwrap();
        let fuzz = small_fuzz();
        let fast_cfg = vm::VmConfig { engine: vm::Engine::Fast, ..vm::VmConfig::default() };
        let interp_cfg = vm::VmConfig { engine: vm::Engine::Interp, ..vm::VmConfig::default() };
        let store = ArtifactStore::new();
        let cold_fast = dyn_pass_bits(&store, &lb, &fuzz, &fast_cfg);
        store.save(&dir).unwrap();

        let what = disk::sabotage_lane(&dir, CacheLane::Dynamic, fault, &plan).unwrap();
        let reloaded = ArtifactStore::load(&dir).unwrap();
        prop_assert!(reloaded.stats().dyn_quarantined >= 1,
            "dynamic-lane sabotage ({what}) must be noticed and quarantined");
        let warm_interp = dyn_pass_bits(&reloaded, &lb, &fuzz, &interp_cfg);
        prop_assert_eq!(&warm_interp, &cold_fast,
            "interpreter fallback after sabotage ({what}) must match the fast-engine \
             cold pass bit for bit");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Invariant 4, second half: after the fallback pass repaired the lane
    /// in memory, the next save writes a clean document — a third process
    /// loads zero quarantines and serves everything from cache (no live
    /// profiling at all).
    #[test]
    fn sabotaged_dyn_cache_self_heals_on_next_save(seed in seeds()) {
        let plan = FaultPlan::new(seed);
        let fault = DiskFault::chosen(&plan, seed ^ 0x4EA1);
        log_case("dyn_cache_self_heal", &format!("seed {seed}: {fault:?} on dynamic lane"));
        let dir = std::env::temp_dir()
            .join(format!("faultline-dynheal-{}-{seed}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let lb = vm::LoadedBinary::load(compile(seed)).unwrap();
        let (fuzz, vmc) = (small_fuzz(), vm::VmConfig::default());
        let store = ArtifactStore::new();
        let cold = dyn_pass_bits(&store, &lb, &fuzz, &vmc);
        store.save(&dir).unwrap();
        disk::sabotage_lane(&dir, CacheLane::Dynamic, fault, &plan).unwrap();

        // Second process: quarantine + live fallback repairs the lane in
        // memory, then persists the repaired state.
        let repaired = ArtifactStore::load(&dir).unwrap();
        dyn_pass_bits(&repaired, &lb, &fuzz, &vmc);
        repaired.save(&dir).unwrap();

        // Third process: the damage is gone and the whole pass is cache
        // hits — no quarantine, no live profiling.
        let healed = ArtifactStore::load(&dir).unwrap();
        prop_assert_eq!(healed.stats().dyn_quarantined, 0, "re-save heals the lane");
        let warm = dyn_pass_bits(&healed, &lb, &fuzz, &vmc);
        prop_assert_eq!(&warm, &cold);
        let stats = healed.stats();
        prop_assert_eq!(stats.dyn_profiled, 0, "healed warm pass performs no live profiling");
        prop_assert_eq!(stats.dyn_misses, 0, "healed warm pass is all hits");
        prop_assert_eq!(stats.dyn_hits, 1 + lb.function_count() as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
