//! The multi-image job scheduler: fan a queue of (image × CVE × basis)
//! scan jobs across the shared persistent worker pool.
//!
//! Jobs are dispatched to [`neural::pool::global`] — the same pool the
//! GEMM kernels and feature extraction use — so a batch spawns no
//! threads of its own. Workers pull jobs from the pool's shared queue,
//! so long jobs (big libraries, many candidates) don't starve short ones
//! the way static chunking would; a job whose scan reaches a parallel
//! kernel runs that kernel inline on its worker (nested dispatch never
//! deadlocks or oversubscribes). Every job produces a [`JobRecord`] with
//! wall-clock timing and its outcome; a job that panics or names an
//! unknown CVE is recorded as [`JobOutcome::Failed`] without taking down
//! its worker or the batch.

use crate::hub::ScanHub;
use corpus::vulndb::VulnDb;
use fwbin::FirmwareImage;
use patchecko_core::pipeline::{Basis, ImageMatch};
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

/// One scheduled unit of work: scan one image for one CVE under one basis.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Index into the batch's image list.
    pub image: usize,
    /// CVE identifier to search for.
    pub cve: String,
    /// Search basis.
    pub basis: Basis,
}

/// How a job ended.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum JobOutcome {
    /// The scan ran to completion.
    Completed {
        /// Static-stage candidates across the image's libraries.
        candidates: usize,
        /// Candidates surviving execution validation.
        validated: usize,
        /// The image-wide best match, if any candidate survived.
        best: Option<ImageMatch>,
    },
    /// The job could not run or panicked mid-run.
    Failed(String),
}

/// A job plus its measured execution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobRecord {
    /// The scheduled job.
    pub spec: JobSpec,
    /// Wall-clock seconds spent on the job.
    pub seconds: f64,
    /// Outcome.
    pub outcome: JobOutcome,
}

impl JobRecord {
    /// Whether the job completed.
    pub fn is_ok(&self) -> bool {
        matches!(self.outcome, JobOutcome::Completed { .. })
    }
}

/// Every (image × featured-CVE × basis) combination for a batch — the
/// exhaustive audit schedule.
pub fn full_schedule(num_images: usize, db: &VulnDb, bases: &[Basis]) -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for image in 0..num_images {
        for entry in db.featured() {
            for &basis in bases {
                jobs.push(JobSpec { image, cve: entry.entry.cve.clone(), basis });
            }
        }
    }
    jobs
}

fn run_one(hub: &ScanHub, images: &[FirmwareImage], db: &VulnDb, spec: &JobSpec) -> JobOutcome {
    let Some(image) = images.get(spec.image) else {
        return JobOutcome::Failed(format!("image index {} out of range", spec.image));
    };
    let Some(entry) = db.get(&spec.cve) else {
        return JobOutcome::Failed(format!("unknown CVE {}", spec.cve));
    };
    match catch_unwind(AssertUnwindSafe(|| hub.scan_image(image, entry, spec.basis))) {
        Ok(analysis) => JobOutcome::Completed {
            candidates: analysis.analyses.iter().map(|a| a.scan.candidates.len()).sum(),
            validated: analysis.analyses.iter().map(|a| a.dynamic.validated.len()).sum(),
            best: analysis.best,
        },
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "job panicked".to_string());
            JobOutcome::Failed(msg)
        }
    }
}

fn timed(hub: &ScanHub, images: &[FirmwareImage], db: &VulnDb, spec: &JobSpec) -> JobRecord {
    let started = Instant::now();
    let outcome = run_one(hub, images, db, spec);
    JobRecord { spec: spec.clone(), seconds: started.elapsed().as_secs_f64(), outcome }
}

/// Run `jobs` across up to `threads` shared-pool workers, returning
/// records in job order. `threads == 1` runs inline (no dispatch);
/// individual failures are recorded, never propagated. The hub, images,
/// and database arrive behind `Arc` because pool tasks are `'static` —
/// each job holds its own handle for the duration of the batch.
pub fn run_jobs(
    hub: &Arc<ScanHub>,
    images: &Arc<Vec<FirmwareImage>>,
    db: &Arc<VulnDb>,
    jobs: &[JobSpec],
    threads: usize,
) -> Vec<JobRecord> {
    if threads <= 1 || jobs.len() <= 1 {
        return jobs.iter().map(|spec| timed(hub, images, db, spec)).collect();
    }
    let tasks: Vec<Box<dyn FnOnce() -> JobRecord + Send>> = jobs
        .iter()
        .map(|spec| {
            let (hub, images, db, spec) = (hub.clone(), images.clone(), db.clone(), spec.clone());
            Box::new(move || timed(&hub, &images, &db, &spec))
                as Box<dyn FnOnce() -> JobRecord + Send>
        })
        .collect();
    neural::pool::global().run(tasks)
}
