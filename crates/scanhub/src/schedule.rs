//! The multi-image job scheduler: fan a queue of (image × CVE × basis)
//! scan jobs across the shared persistent worker pool.
//!
//! Jobs are dispatched to [`neural::pool::global`] — the same pool the
//! GEMM kernels and feature extraction use — so a batch spawns no
//! threads of its own. Workers pull jobs from the pool's shared queue,
//! so long jobs (big libraries, many candidates) don't starve short ones
//! the way static chunking would; a job whose scan reaches a parallel
//! kernel runs that kernel inline on its worker (nested dispatch never
//! deadlocks or oversubscribes).
//!
//! ## Failure handling
//!
//! Every job produces a [`JobRecord`] with wall-clock timing, its attempt
//! count, and a typed outcome. A failing attempt yields a
//! [`ScanError`]; transient errors (corrupt cache artifacts, worker
//! panics, injected faults, I/O) are retried with exponential backoff up
//! to [`RetryPolicy::max_attempts`], while permanent errors (bad input,
//! unknown CVE) fail immediately. No panic escapes the scheduler: a
//! panicking scan is caught, classified as [`ScanError::WorkerPanic`],
//! and retried like any other transient fault. The optional fault hook is
//! the seam the `faultline` chaos harness uses to inject simulated worker
//! deaths ahead of an attempt.

use crate::hub::ScanHub;
use corpus::vulndb::VulnDb;
use fwbin::FirmwareImage;
use patchecko_core::error::ScanError;
use patchecko_core::pipeline::{Basis, ImageMatch};
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One scheduled unit of work: scan one image for one CVE under one basis.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Index into the batch's image list.
    pub image: usize,
    /// CVE identifier to search for.
    pub cve: String,
    /// Search basis.
    pub basis: Basis,
}

/// Bounded retry with exponential backoff for transient job failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts per job (first try included). `1` disables retry.
    pub max_attempts: u32,
    /// Backoff before retry `n` is `base_backoff_ms << min(n - 1, 10)` —
    /// exponential doubling capped at 1024× the base (see
    /// [`RetryPolicy::backoff`]).
    pub base_backoff_ms: u64,
    /// Wall-clock budget per *attempt*, milliseconds. An attempt
    /// exceeding it is abandoned and yields a transient
    /// [`ScanError::Timeout`] — retried like any other transient fault,
    /// and a permanent [`JobOutcome::Failed`] once attempts are spent —
    /// so one hung scan can't stall the batch (or wedge the daemon's
    /// fair scheduler). `None` (the default) disables the budget.
    #[serde(default)]
    pub job_timeout_ms: Option<u64>,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy { max_attempts: 3, base_backoff_ms: 5, job_timeout_ms: None }
    }
}

impl RetryPolicy {
    /// Fail on the first error, transient or not.
    pub fn no_retry() -> RetryPolicy {
        RetryPolicy { max_attempts: 1, base_backoff_ms: 0, job_timeout_ms: None }
    }

    /// This policy with a per-attempt wall-clock budget.
    pub fn with_job_timeout_ms(mut self, budget_ms: u64) -> RetryPolicy {
        self.job_timeout_ms = Some(budget_ms);
        self
    }

    /// Pause before re-running a job that has failed `attempt` times:
    /// `base_backoff_ms << min(attempt - 1, 10)` milliseconds. The shift
    /// is capped at 10 (1024× base) so arbitrarily high attempt counts
    /// neither overflow the shift (`1 << 64` would be UB-adjacent debug
    /// panic territory) nor produce absurd multi-hour sleeps; the
    /// multiplication additionally saturates at `u64::MAX` ms for
    /// pathological bases. The scheduler only ever sleeps *between*
    /// attempts — after the final failed attempt the job returns
    /// immediately, with no trailing backoff.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let shift = attempt.saturating_sub(1).min(10);
        Duration::from_millis(self.base_backoff_ms.saturating_mul(1 << shift))
    }
}

/// Pre-attempt fault seam: given the job and the 1-based attempt number,
/// return `Some(error)` to make that attempt fail before it runs — how
/// the chaos harness simulates a worker dying mid-batch. Production runs
/// leave it unset.
pub type FaultHook = dyn Fn(&JobSpec, u32) -> Option<ScanError> + Send + Sync;

/// How a job ended.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum JobOutcome {
    /// The scan ran to completion.
    Completed {
        /// Static-stage candidates across the image's libraries.
        candidates: usize,
        /// Candidates surviving execution validation.
        validated: usize,
        /// The image-wide best match, if any candidate survived.
        best: Option<ImageMatch>,
    },
    /// The job failed permanently: a permanent error, or a transient one
    /// that survived every retry.
    Failed {
        /// The final attempt's error.
        error: ScanError,
        /// Attempts spent, retries included.
        attempts: u32,
    },
}

fn one_attempt() -> u32 {
    1
}

/// A job plus its measured execution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobRecord {
    /// The scheduled job.
    pub spec: JobSpec,
    /// Wall-clock seconds spent on the job, retries included.
    pub seconds: f64,
    /// Attempts spent (1 = first try succeeded).
    #[serde(default = "one_attempt")]
    pub attempts: u32,
    /// Outcome.
    pub outcome: JobOutcome,
}

impl JobRecord {
    /// Whether the job completed.
    pub fn is_ok(&self) -> bool {
        matches!(self.outcome, JobOutcome::Completed { .. })
    }

    /// The failure, if the job failed.
    pub fn error(&self) -> Option<&ScanError> {
        match &self.outcome {
            JobOutcome::Failed { error, .. } => Some(error),
            JobOutcome::Completed { .. } => None,
        }
    }
}

/// Every (image × featured-CVE × basis) combination for a batch — the
/// exhaustive audit schedule.
pub fn full_schedule(num_images: usize, db: &VulnDb, bases: &[Basis]) -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for image in 0..num_images {
        for entry in db.featured() {
            for &basis in bases {
                jobs.push(JobSpec { image, cve: entry.entry.cve.clone(), basis });
            }
        }
    }
    jobs
}

/// One attempt of one job. The fault hook fires first so injected worker
/// deaths preempt real work, exactly like a worker lost mid-scan.
fn run_attempt(
    hub: &ScanHub,
    images: &[FirmwareImage],
    db: &VulnDb,
    spec: &JobSpec,
    hook: Option<&Arc<FaultHook>>,
    attempt: u32,
) -> Result<JobOutcome, ScanError> {
    if let Some(hook) = hook {
        if let Some(err) = hook(spec, attempt) {
            return Err(err);
        }
    }
    let image = images
        .get(spec.image)
        .ok_or(ScanError::ImageOutOfRange { index: spec.image, images: images.len() })?;
    let entry = db.get(&spec.cve).ok_or_else(|| ScanError::UnknownCve(spec.cve.clone()))?;
    let analysis = hub.scan_image(image, entry, spec.basis)?;
    Ok(JobOutcome::Completed {
        candidates: analysis.analyses.iter().map(|a| a.scan.candidates.len()).sum(),
        validated: analysis.analyses.iter().map(|a| a.dynamic.validated.len()).sum(),
        best: analysis.best,
    })
}

/// One attempt, panic-contained. The whole attempt — fault hook included
/// — runs under `catch_unwind`, so nothing a worker does can take down
/// the batch; a panic is just a transient `WorkerPanic` to the retry
/// loop.
fn contained_attempt(
    hub: &ScanHub,
    images: &[FirmwareImage],
    db: &VulnDb,
    spec: &JobSpec,
    hook: Option<&Arc<FaultHook>>,
    attempt: u32,
) -> Result<JobOutcome, ScanError> {
    catch_unwind(AssertUnwindSafe(|| run_attempt(hub, images, db, spec, hook, attempt)))
        .unwrap_or_else(|payload| Err(ScanError::from_panic(payload.as_ref())))
}

/// One attempt under a wall-clock budget: the attempt runs on a spawned
/// watcher-side thread and the scheduler waits at most `budget_ms` for
/// its result. On expiry the attempt is *abandoned* — the thread finishes
/// (or hangs) off to the side, its late result discarded, and the
/// scheduler moves on with a transient [`ScanError::Timeout`]. An
/// abandoned extraction that eventually completes still publishes into
/// the content-addressed store, which is harmless (same key, same value).
fn budgeted_attempt(
    hub: &Arc<ScanHub>,
    images: &Arc<Vec<FirmwareImage>>,
    db: &Arc<VulnDb>,
    spec: &JobSpec,
    hook: Option<&Arc<FaultHook>>,
    attempt: u32,
    budget_ms: u64,
) -> Result<JobOutcome, ScanError> {
    let (tx, rx) = std::sync::mpsc::channel();
    let (hub2, images2, db2) = (Arc::clone(hub), Arc::clone(images), Arc::clone(db));
    let (spec2, hook2) = (spec.clone(), hook.cloned());
    std::thread::spawn(move || {
        let _ = tx.send(contained_attempt(&hub2, &images2, &db2, &spec2, hook2.as_ref(), attempt));
    });
    match rx.recv_timeout(Duration::from_millis(budget_ms)) {
        Ok(result) => result,
        Err(_) => {
            hub.store().registry().add("sched.timeouts", 1);
            Err(ScanError::Timeout { budget_ms })
        }
    }
}

fn run_one(
    hub: &Arc<ScanHub>,
    images: &Arc<Vec<FirmwareImage>>,
    db: &Arc<VulnDb>,
    spec: &JobSpec,
    retry: &RetryPolicy,
    hook: Option<&Arc<FaultHook>>,
) -> (JobOutcome, u32) {
    let max = retry.max_attempts.max(1);
    let registry = Arc::clone(hub.store().registry());
    let mut attempt = 1;
    loop {
        registry.add("sched.attempts", 1);
        let attempted = match retry.job_timeout_ms {
            Some(budget_ms) => budgeted_attempt(hub, images, db, spec, hook, attempt, budget_ms),
            None => contained_attempt(hub, images, db, spec, hook, attempt),
        };
        match attempted {
            Ok(done) => return (done, attempt),
            Err(error) if error.is_transient() && attempt < max => {
                let pause = retry.backoff(attempt);
                registry.add("sched.retries", 1);
                registry.add("sched.backoff_ms", pause.as_millis() as u64);
                std::thread::sleep(pause);
                attempt += 1;
            }
            Err(error) => return (JobOutcome::Failed { error, attempts: attempt }, attempt),
        }
    }
}

fn timed(
    hub: &Arc<ScanHub>,
    images: &Arc<Vec<FirmwareImage>>,
    db: &Arc<VulnDb>,
    spec: &JobSpec,
    retry: &RetryPolicy,
    hook: Option<&Arc<FaultHook>>,
) -> JobRecord {
    let _span = scope::SpanGuard::enter("sched.job")
        .with_detail(format!("image {} / {} / {:?}", spec.image, spec.cve, spec.basis));
    let started = Instant::now();
    let (outcome, attempts) = run_one(hub, images, db, spec, retry, hook);
    hub.store().registry().add("sched.jobs", 1);
    JobRecord { spec: spec.clone(), seconds: started.elapsed().as_secs_f64(), attempts, outcome }
}

/// Run `jobs` across up to `threads` shared-pool workers, returning
/// records in job order. `threads == 1` runs inline (no dispatch);
/// individual failures are recorded, never propagated. The hub, images,
/// and database arrive behind `Arc` because pool tasks are `'static` —
/// each job holds its own handle for the duration of the batch.
pub fn run_jobs(
    hub: &Arc<ScanHub>,
    images: &Arc<Vec<FirmwareImage>>,
    db: &Arc<VulnDb>,
    jobs: &[JobSpec],
    threads: usize,
) -> Vec<JobRecord> {
    run_jobs_with(hub, images, db, jobs, threads, RetryPolicy::default(), None)
}

/// [`run_jobs`] with an explicit retry policy and optional fault hook.
pub fn run_jobs_with(
    hub: &Arc<ScanHub>,
    images: &Arc<Vec<FirmwareImage>>,
    db: &Arc<VulnDb>,
    jobs: &[JobSpec],
    threads: usize,
    retry: RetryPolicy,
    hook: Option<Arc<FaultHook>>,
) -> Vec<JobRecord> {
    if threads <= 1 || jobs.len() <= 1 {
        return jobs
            .iter()
            .map(|spec| timed(hub, images, db, spec, &retry, hook.as_ref()))
            .collect();
    }
    let tasks: Vec<Box<dyn FnOnce() -> JobRecord + Send>> = jobs
        .iter()
        .map(|spec| {
            let (hub, images, db, spec) = (hub.clone(), images.clone(), db.clone(), spec.clone());
            let hook = hook.clone();
            Box::new(move || timed(&hub, &images, &db, &spec, &retry, hook.as_ref()))
                as Box<dyn FnOnce() -> JobRecord + Send>
        })
        .collect();
    neural::pool::global().run(tasks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_then_caps_at_shift_ten() {
        let retry = RetryPolicy { max_attempts: 100, base_backoff_ms: 3, ..RetryPolicy::default() };
        assert_eq!(retry.backoff(1), Duration::from_millis(3));
        assert_eq!(retry.backoff(2), Duration::from_millis(6));
        assert_eq!(retry.backoff(11), Duration::from_millis(3 * 1024));
        // Every attempt past the cap gets the same ceiling — no shift
        // overflow, no runaway sleeps.
        assert_eq!(retry.backoff(12), retry.backoff(11));
        assert_eq!(retry.backoff(u32::MAX), retry.backoff(11));
        // attempt 0 is out-of-contract but must not underflow the shift.
        assert_eq!(retry.backoff(0), Duration::from_millis(3));
    }

    #[test]
    fn retry_policy_timeout_is_optional_and_serde_defaulted() {
        // Policies persisted before the budget existed still deserialize.
        let p: RetryPolicy =
            serde_json::from_str(r#"{"max_attempts":2,"base_backoff_ms":10}"#).unwrap();
        assert_eq!(p.job_timeout_ms, None);
        let q = RetryPolicy::default().with_job_timeout_ms(500);
        assert_eq!(q.job_timeout_ms, Some(500));
        let back: RetryPolicy = serde_json::from_str(&serde_json::to_string(&q).unwrap()).unwrap();
        assert_eq!(back, q);
    }

    #[test]
    fn backoff_saturates_on_pathological_base() {
        let retry =
            RetryPolicy { max_attempts: 3, base_backoff_ms: u64::MAX / 2, ..RetryPolicy::default() };
        assert_eq!(retry.backoff(40), Duration::from_millis(u64::MAX));
    }
}
