//! The multi-image job scheduler: fan a queue of (image × CVE × basis)
//! scan jobs across a crossbeam worker pool.
//!
//! Workers pull jobs from a shared channel, so long jobs (big libraries,
//! many candidates) don't starve short ones the way static chunking would.
//! Every job produces a [`JobRecord`] with wall-clock timing and its
//! outcome; a job that panics or names an unknown CVE is recorded as
//! [`JobOutcome::Failed`] without taking down its worker or the batch.

use crate::hub::ScanHub;
use corpus::vulndb::VulnDb;
use fwbin::FirmwareImage;
use patchecko_core::pipeline::{Basis, ImageMatch};
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// One scheduled unit of work: scan one image for one CVE under one basis.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Index into the batch's image list.
    pub image: usize,
    /// CVE identifier to search for.
    pub cve: String,
    /// Search basis.
    pub basis: Basis,
}

/// How a job ended.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum JobOutcome {
    /// The scan ran to completion.
    Completed {
        /// Static-stage candidates across the image's libraries.
        candidates: usize,
        /// Candidates surviving execution validation.
        validated: usize,
        /// The image-wide best match, if any candidate survived.
        best: Option<ImageMatch>,
    },
    /// The job could not run or panicked mid-run.
    Failed(String),
}

/// A job plus its measured execution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobRecord {
    /// The scheduled job.
    pub spec: JobSpec,
    /// Wall-clock seconds spent on the job.
    pub seconds: f64,
    /// Outcome.
    pub outcome: JobOutcome,
}

impl JobRecord {
    /// Whether the job completed.
    pub fn is_ok(&self) -> bool {
        matches!(self.outcome, JobOutcome::Completed { .. })
    }
}

/// Every (image × featured-CVE × basis) combination for a batch — the
/// exhaustive audit schedule.
pub fn full_schedule(num_images: usize, db: &VulnDb, bases: &[Basis]) -> Vec<JobSpec> {
    let mut jobs = Vec::new();
    for image in 0..num_images {
        for entry in db.featured() {
            for &basis in bases {
                jobs.push(JobSpec { image, cve: entry.entry.cve.clone(), basis });
            }
        }
    }
    jobs
}

fn run_one(hub: &ScanHub, images: &[FirmwareImage], db: &VulnDb, spec: &JobSpec) -> JobOutcome {
    let Some(image) = images.get(spec.image) else {
        return JobOutcome::Failed(format!("image index {} out of range", spec.image));
    };
    let Some(entry) = db.get(&spec.cve) else {
        return JobOutcome::Failed(format!("unknown CVE {}", spec.cve));
    };
    match catch_unwind(AssertUnwindSafe(|| hub.scan_image(image, entry, spec.basis))) {
        Ok(analysis) => JobOutcome::Completed {
            candidates: analysis.analyses.iter().map(|a| a.scan.candidates.len()).sum(),
            validated: analysis.analyses.iter().map(|a| a.dynamic.validated.len()).sum(),
            best: analysis.best,
        },
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "job panicked".to_string());
            JobOutcome::Failed(msg)
        }
    }
}

/// Run `jobs` across `threads` workers, returning records in job order.
/// `threads == 1` runs inline (no pool); individual failures are recorded,
/// never propagated.
pub fn run_jobs(
    hub: &ScanHub,
    images: &[FirmwareImage],
    db: &VulnDb,
    jobs: &[JobSpec],
    threads: usize,
) -> Vec<JobRecord> {
    let timed = |spec: &JobSpec| -> JobRecord {
        let started = Instant::now();
        let outcome = run_one(hub, images, db, spec);
        JobRecord { spec: spec.clone(), seconds: started.elapsed().as_secs_f64(), outcome }
    };
    if threads <= 1 || jobs.len() <= 1 {
        return jobs.iter().map(timed).collect();
    }

    let (job_tx, job_rx) = crossbeam::channel::unbounded::<(usize, JobSpec)>();
    let (rec_tx, rec_rx) = crossbeam::channel::unbounded::<(usize, JobRecord)>();
    for (i, spec) in jobs.iter().enumerate() {
        job_tx.send((i, spec.clone())).expect("queue accepts jobs");
    }
    drop(job_tx);

    crossbeam::thread::scope(|s| {
        for _ in 0..threads.min(jobs.len()) {
            let job_rx = job_rx.clone();
            let rec_tx = rec_tx.clone();
            let timed = &timed;
            s.spawn(move |_| {
                while let Ok((i, spec)) = job_rx.recv() {
                    let record = timed(&spec);
                    if rec_tx.send((i, record)).is_err() {
                        break;
                    }
                }
            });
        }
    })
    .expect("scheduler workers joined");
    drop(rec_tx);

    let mut slots: Vec<Option<JobRecord>> = vec![None; jobs.len()];
    while let Ok((i, record)) = rec_rx.recv() {
        slots[i] = Some(record);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, r)| {
            r.unwrap_or_else(|| JobRecord {
                spec: jobs[i].clone(),
                seconds: 0.0,
                outcome: JobOutcome::Failed("job record lost".into()),
            })
        })
        .collect()
}
