//! The content-addressed artifact store: a sharded in-memory map in front
//! of an optional on-disk layer.
//!
//! Each entry holds the per-function artifacts the static stage would
//! otherwise re-derive on every scan — the Table-I feature vector and the
//! condensed CFG — keyed by [`ArtifactKey`]. Lookups are sharded across
//! independent `parking_lot` mutexes so scheduler workers rarely contend,
//! and the hit/miss/extraction counters make cache behaviour observable
//! (the `--cache-stats` CLI flag and the warm-re-audit acceptance test
//! both read them).
//!
//! ## Disk-layer hardening
//!
//! The on-disk layer trusts nothing it reads back. Every persisted entry
//! carries a structural checksum over the feature bits and CFG summary;
//! on load, entries whose checksum or key fails to validate are
//! **quarantined** — evicted and recorded, never served — and the scan
//! falls back to re-extraction. Unparseable or truncated cache files are
//! quarantined whole (renamed aside, so the next save starts clean), and
//! a schema-version mismatch discards the stale entries. Saves go through
//! a temp file + rename so a crash mid-write can't leave a truncated
//! `artifacts.json` behind.
//!
//! ## Single-flight extraction
//!
//! Concurrent misses on the same key coalesce: the first requester claims
//! the key in an in-flight table and computes; later requesters block on
//! a condvar until the winner publishes, then serve the cached value.
//! This matters most in the dynamic lane — a profile is a whole batch of
//! VM executions — and is the single-process form of the scan daemon's
//! request dedup (two clients auditing the same image trigger one
//! extraction). A winner that fails releases its claim on unwind, so
//! waiters retry rather than hang.
//!
//! ## Tenant namespaces
//!
//! Every lookup/extract entry point has a `*_ns` variant taking a
//! namespace salt ([`crate::key::tenant_salt`]): keys are relocated by
//! XOR before touching the shards, so tenants sharing one store (and one
//! persisted cache) never observe each other's artifacts. The plain
//! entry points are the zero-salt (identity) namespace.

use crate::dynstore::DynLane;
use crate::index::SignatureIndex;
use crate::key::{ArtifactKey, SCHEMA_VERSION};
use disasm::CfgSummary;
use fwbin::format::Binary;
use parking_lot::Mutex;
use patchecko_core::dynsource::{self, DynProfile, DynProfileSource, EnvSet};
use patchecko_core::error::ScanError;
use patchecko_core::features::{self, StaticFeatures};
use patchecko_core::pipeline::FeatureSource;
use patchecko_core::retrieval::FunctionSignature;
use scope::{Counter, MetricsRegistry};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::path::Path;
use std::sync::Arc;
use vm::exec::VmConfig;
use vm::fuzz::FuzzConfig;
use vm::loader::LoadedBinary;

/// Shard count of the in-memory map. Power of two, comfortably above the
/// worker counts the scheduler runs with.
const NUM_SHARDS: usize = 16;

/// The cached artifacts of one function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Artifact {
    /// Table-I static feature vector.
    pub features: StaticFeatures,
    /// Condensed control-flow graph.
    pub cfg: CfgSummary,
}

/// Structural checksum of an artifact: FNV-1a over the exact bit patterns
/// of the feature vector (`f64::to_bits`, immune to JSON float round-trip
/// concerns) and every CFG-summary field. A persisted entry whose bytes
/// were tampered with or truncated mid-value fails this check on load.
pub fn artifact_checksum(a: &Artifact) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h = (h ^ b as u64).wrapping_mul(PRIME);
        }
    };
    for &f in a.features.as_slice() {
        eat(&f.to_bits().to_le_bytes());
    }
    eat(&a.cfg.num_blocks.to_le_bytes());
    eat(&a.cfg.num_edges.to_le_bytes());
    eat(&a.cfg.cyclomatic.to_le_bytes());
    for k in a.cfg.kind_counts {
        eat(&k.to_le_bytes());
    }
    eat(&a.cfg.max_block_len.to_le_bytes());
    eat(&a.cfg.byte_size.to_le_bytes());
    h
}

/// A point-in-time snapshot of the store's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups served from the map.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Disassembly + feature extractions actually performed.
    pub extractions: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// Persisted entries (or whole cache files) evicted because they
    /// failed checksum/schema/parse validation on load.
    #[serde(default)]
    pub quarantined: u64,
    /// Dynamic-lane lookups (environment sets and profiles) served from
    /// the cache — each one is a batch of VM executions *not* performed.
    #[serde(default)]
    pub dyn_hits: u64,
    /// Dynamic-lane lookups that found nothing.
    #[serde(default)]
    pub dyn_misses: u64,
    /// Dynamic profiles actually computed by live VM execution.
    #[serde(default)]
    pub dyn_profiled: u64,
    /// Dynamic-lane entries currently resident (env sets + profiles).
    #[serde(default)]
    pub dyn_entries: u64,
    /// Dynamic-lane entries (or the whole `dyn_artifacts.json`) evicted on
    /// load for failing checksum/schema/parse validation.
    #[serde(default)]
    pub dyn_quarantined: u64,
    /// Signature-lane lookups served from the cache (a retrieval
    /// signature *not* recomputed from its features).
    #[serde(default)]
    pub sig_hits: u64,
    /// Signature-lane lookups that found nothing.
    #[serde(default)]
    pub sig_misses: u64,
    /// Signature-lane entries currently resident.
    #[serde(default)]
    pub sig_entries: u64,
    /// Signature-lane entries (or the whole `sig_index.json`) evicted on
    /// load for failing checksum/schema/parse validation.
    #[serde(default)]
    pub sig_quarantined: u64,
}

impl CacheStats {
    /// Hit fraction in [0, 1]; 0 when no lookups happened yet.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter deltas since an earlier snapshot.
    ///
    /// Saturating: when `earlier` is not actually earlier — it came from
    /// a different store, or from before a quarantine/reload replaced the
    /// store behind the same cache dir — each counter clamps at zero
    /// instead of panicking in debug builds (or wrapping to ~2⁶⁴ in
    /// release and reporting nonsense like "18446744073709551615 hits").
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            extractions: self.extractions.saturating_sub(earlier.extractions),
            entries: self.entries,
            quarantined: self.quarantined.saturating_sub(earlier.quarantined),
            dyn_hits: self.dyn_hits.saturating_sub(earlier.dyn_hits),
            dyn_misses: self.dyn_misses.saturating_sub(earlier.dyn_misses),
            dyn_profiled: self.dyn_profiled.saturating_sub(earlier.dyn_profiled),
            dyn_entries: self.dyn_entries,
            dyn_quarantined: self.dyn_quarantined.saturating_sub(earlier.dyn_quarantined),
            sig_hits: self.sig_hits.saturating_sub(earlier.sig_hits),
            sig_misses: self.sig_misses.saturating_sub(earlier.sig_misses),
            sig_entries: self.sig_entries,
            sig_quarantined: self.sig_quarantined.saturating_sub(earlier.sig_quarantined),
        }
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} hits / {} misses ({:.1}% hit rate), {} extractions, {} entries, {} quarantined; \
             dyn: {} hits / {} misses, {} profiled, {} entries, {} quarantined; \
             sig: {} hits / {} misses, {} entries, {} quarantined",
            self.hits,
            self.misses,
            self.hit_rate() * 100.0,
            self.extractions,
            self.entries,
            self.quarantined,
            self.dyn_hits,
            self.dyn_misses,
            self.dyn_profiled,
            self.dyn_entries,
            self.dyn_quarantined,
            self.sig_hits,
            self.sig_misses,
            self.sig_entries,
            self.sig_quarantined
        )
    }
}

/// One persisted entry: the artifact plus its structural checksum, so a
/// byte flipped on disk is detected (and the entry quarantined) on load.
#[derive(Serialize, Deserialize)]
struct PersistedEntry {
    /// [`artifact_checksum`] of `artifact` at save time.
    checksum: u64,
    /// The cached artifact.
    artifact: Artifact,
}

/// On-disk image of the store (one JSON document per cache directory).
#[derive(Serialize, Deserialize)]
struct PersistedStore {
    /// Feature-schema version the artifacts were extracted under.
    schema: u32,
    /// Hex key → checksummed artifact.
    artifacts: BTreeMap<String, PersistedEntry>,
}

/// The in-flight table behind single-flight extraction. One table covers
/// every lane — static artifacts, env sets, profiles — because their key
/// spaces are already domain-separated by construction.
///
/// `std::sync::Condvar` (not `parking_lot`, which vendors no condvar):
/// waiters sleep until the current winner for their key publishes or
/// fails, instead of burning a core polling the shards.
struct Flight {
    inflight: std::sync::Mutex<std::collections::HashSet<ArtifactKey>>,
    done: std::sync::Condvar,
}

/// RAII claim on one in-flight key: dropping it — on success *or* unwind
/// — releases the key and wakes every waiter, so a panicking winner can
/// never strand losers on the condvar.
struct FlightClaim<'a> {
    flight: &'a Flight,
    key: ArtifactKey,
}

impl Flight {
    fn new() -> Flight {
        Flight { inflight: std::sync::Mutex::new(std::collections::HashSet::new()), done: std::sync::Condvar::new() }
    }

    /// Try to become the computer for `key`. `Some(claim)` means this
    /// caller won and must compute + publish (the claim releases on
    /// drop). `None` means another caller was already computing; by the
    /// time `None` is returned that computation has finished (published
    /// or failed) — re-check the cache.
    fn claim(&self, key: ArtifactKey) -> Option<FlightClaim<'_>> {
        let mut set = self.inflight.lock().expect("flight lock");
        if set.insert(key) {
            return Some(FlightClaim { flight: self, key });
        }
        while set.contains(&key) {
            set = self.done.wait(set).expect("flight lock");
        }
        None
    }
}

impl Drop for FlightClaim<'_> {
    fn drop(&mut self) {
        self.flight.inflight.lock().expect("flight lock").remove(&self.key);
        self.flight.done.notify_all();
    }
}

/// The sharded artifact store.
///
/// Cache counters are `scope` registry counters (`cache.hits`,
/// `cache.misses`, `cache.extractions`, `cache.quarantined`), resolved
/// once at construction and bumped through lock-free handles on the hot
/// path. Each store owns its registry — a fresh private one by default,
/// so concurrent stores never see each other's counts — and the CLI
/// passes `scope::global_shared()` in so cache activity lands in the
/// same snapshot as span timings and scheduler counters.
pub struct ArtifactStore {
    shards: Vec<Mutex<HashMap<ArtifactKey, Arc<Artifact>>>>,
    registry: Arc<MetricsRegistry>,
    hits: Counter,
    misses: Counter,
    extractions: Counter,
    quarantined: Counter,
    quarantine_log: Mutex<Vec<String>>,
    dyn_lane: DynLane,
    sig_lane: SignatureIndex,
    flight: Flight,
}

impl Default for ArtifactStore {
    fn default() -> ArtifactStore {
        ArtifactStore::new()
    }
}

impl ArtifactStore {
    /// An empty store with a fresh private metrics registry.
    pub fn new() -> ArtifactStore {
        ArtifactStore::with_registry(Arc::new(MetricsRegistry::new()))
    }

    /// An empty store recording its cache counters into `registry`.
    pub fn with_registry(registry: Arc<MetricsRegistry>) -> ArtifactStore {
        ArtifactStore {
            shards: (0..NUM_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: registry.counter("cache.hits"),
            misses: registry.counter("cache.misses"),
            extractions: registry.counter("cache.extractions"),
            quarantined: registry.counter("cache.quarantined"),
            dyn_lane: DynLane::with_registry(&registry),
            sig_lane: SignatureIndex::with_registry(&registry),
            registry,
            quarantine_log: Mutex::new(Vec::new()),
            flight: Flight::new(),
        }
    }

    /// The registry this store's counters live in.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            extractions: self.extractions.get(),
            entries: self.shards.iter().map(|s| s.lock().len() as u64).sum(),
            quarantined: self.quarantined.get(),
            dyn_hits: self.dyn_lane.hits.get(),
            dyn_misses: self.dyn_lane.misses.get(),
            dyn_profiled: self.dyn_lane.profiled.get(),
            dyn_entries: self.dyn_lane.entries(),
            dyn_quarantined: self.dyn_lane.quarantined.get(),
            sig_hits: self.sig_lane.hits.get(),
            sig_misses: self.sig_lane.misses.get(),
            sig_entries: self.sig_lane.entries(),
            sig_quarantined: self.sig_lane.quarantined.get(),
        }
    }

    /// Record a quarantine event: the offending entry is never inserted
    /// (evicted by construction), the counter moves, and the detail is
    /// kept for reports and tests.
    fn quarantine(&self, detail: String) {
        self.quarantined.inc();
        self.quarantine_log.lock().push(detail);
    }

    /// Details of every quarantine event since construction (validation
    /// failures found while loading the disk layer, all lanes).
    pub fn quarantine_records(&self) -> Vec<String> {
        let mut records = self.quarantine_log.lock().clone();
        records.extend(self.dyn_lane.quarantine_records());
        records.extend(self.sig_lane.quarantine_records());
        records
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lookup(&self, key: ArtifactKey) -> Option<Arc<Artifact>> {
        let found = self.shards[key.shard(NUM_SHARDS)].lock().get(&key).cloned();
        match &found {
            Some(_) => self.hits.inc(),
            None => self.misses.inc(),
        };
        found
    }

    fn insert(&self, key: ArtifactKey, artifact: Artifact) -> Arc<Artifact> {
        let arc = Arc::new(artifact);
        self.shards[key.shard(NUM_SHARDS)].lock().insert(key, Arc::clone(&arc));
        arc
    }

    fn extract(&self, bin: &Binary, idx: usize) -> Result<Artifact, ScanError> {
        self.extractions.inc();
        let dis = disasm::disassemble(bin, idx)
            .map_err(|e| ScanError::extraction(&bin.lib_name, idx, &e))?;
        Ok(Artifact {
            features: features::extract(&dis, &bin.functions[idx]),
            cfg: dis.cfg.summary(),
        })
    }

    /// The artifacts of function `idx` of `bin`, extracting and caching on
    /// first sight. Concurrent misses on one key single-flight: exactly
    /// one caller extracts (outside every lock), the rest wait and serve
    /// the published entry — so `cache.extractions` counts distinct
    /// extractions even under a racing scheduler.
    ///
    /// # Errors
    /// [`ScanError::Extraction`] when the function's code fails to decode.
    pub fn get_or_extract(&self, bin: &Binary, idx: usize) -> Result<Arc<Artifact>, ScanError> {
        self.get_or_extract_ns(bin, idx, (0, 0))
    }

    /// [`ArtifactStore::get_or_extract`] in the cache namespace named by
    /// `salt` (see [`crate::key::tenant_salt`]; `(0, 0)` is the base
    /// namespace).
    ///
    /// # Errors
    /// As for [`ArtifactStore::get_or_extract`].
    pub fn get_or_extract_ns(
        &self,
        bin: &Binary,
        idx: usize,
        salt: (u64, u64),
    ) -> Result<Arc<Artifact>, ScanError> {
        let key = ArtifactKey::for_function(bin, idx).namespaced(salt);
        loop {
            if let Some(found) = self.lookup(key) {
                return Ok(found);
            }
            if let Some(_claim) = self.flight.claim(key) {
                let artifact = self.extract(bin, idx)?;
                return Ok(self.insert(key, artifact));
            }
            // A concurrent winner just finished this key: loop to serve
            // its published entry (or claim the flight ourselves if it
            // failed and published nothing).
        }
    }

    /// Pre-populate the store with every function of an image. Returns the
    /// number of functions visited.
    ///
    /// # Errors
    /// The first extraction failure, if any function fails to decode.
    pub fn warm_image(&self, image: &fwbin::FirmwareImage) -> Result<usize, ScanError> {
        self.warm_image_ns(image, (0, 0))
    }

    /// [`ArtifactStore::warm_image`] in the namespace named by `salt`.
    ///
    /// # Errors
    /// The first extraction failure, if any function fails to decode.
    pub fn warm_image_ns(
        &self,
        image: &fwbin::FirmwareImage,
        salt: (u64, u64),
    ) -> Result<usize, ScanError> {
        let mut n = 0;
        for bin in &image.binaries {
            for idx in 0..bin.function_count() {
                self.get_or_extract_ns(bin, idx, salt)?;
                n += 1;
            }
        }
        Ok(n)
    }

    /// Write the store to `dir/artifacts.json` (creating `dir` as needed).
    /// The write goes to a temp file first and is renamed into place, so a
    /// crash mid-save leaves the previous cache intact rather than a
    /// truncated document.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn save(&self, dir: &Path) -> std::io::Result<()> {
        let mut artifacts = BTreeMap::new();
        for shard in &self.shards {
            for (k, v) in shard.lock().iter() {
                let entry =
                    PersistedEntry { checksum: artifact_checksum(v), artifact: (**v).clone() };
                artifacts.insert(k.to_hex(), entry);
            }
        }
        let doc = PersistedStore { schema: SCHEMA_VERSION, artifacts };
        std::fs::create_dir_all(dir)?;
        let json = serde_json::to_string(&doc)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        let tmp = dir.join(format!("artifacts.json.tmp.{}", std::process::id()));
        std::fs::write(&tmp, json)?;
        std::fs::rename(&tmp, dir.join("artifacts.json"))?;
        // The dynamic and signature lanes persist beside the static one,
        // each in its own document — corruption in one file never takes
        // down the others.
        self.dyn_lane.save(dir)?;
        self.sig_lane.save(dir)
    }

    /// Load a store persisted by [`ArtifactStore::save`]. The disk layer
    /// is untrusted:
    ///
    /// * a missing file yields an empty store;
    /// * an unparseable (garbage or truncated) file is quarantined whole —
    ///   renamed to `artifacts.json.quarantined` and recorded — and the
    ///   store starts empty instead of erroring the scan;
    /// * a schema-version mismatch discards the stale entries (they would
    ///   desynchronize from the extractor);
    /// * an entry with an invalid key or a checksum mismatch is evicted
    ///   and recorded; the rest of the cache still loads.
    ///
    /// # Errors
    /// Propagates filesystem errors other than `NotFound`.
    pub fn load(dir: &Path) -> std::io::Result<ArtifactStore> {
        ArtifactStore::load_with_registry(dir, Arc::new(MetricsRegistry::new()))
    }

    /// [`ArtifactStore::load`] recording cache counters into `registry`
    /// (quarantines found during the load are counted there too).
    ///
    /// # Errors
    /// Propagates filesystem errors other than `NotFound`.
    pub fn load_with_registry(
        dir: &Path,
        registry: Arc<MetricsRegistry>,
    ) -> std::io::Result<ArtifactStore> {
        let path = dir.join("artifacts.json");
        let store = ArtifactStore::with_registry(registry);
        // The dynamic and signature lanes load first from their own files;
        // their quarantines are independent of the static document's fate
        // below.
        store.dyn_lane.load(dir)?;
        store.sig_lane.load(dir)?;
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(store),
            Err(e) => return Err(e),
        };
        // Non-UTF-8 bytes are just another flavour of on-disk corruption:
        // quarantine, same as unparseable JSON.
        let json = match String::from_utf8(bytes) {
            Ok(s) => s,
            Err(_) => {
                let _ = std::fs::rename(&path, dir.join("artifacts.json.quarantined"));
                store.quarantine(format!(
                    "cache file {}: unparseable (invalid UTF-8)",
                    path.display()
                ));
                return Ok(store);
            }
        };
        let doc: PersistedStore = match serde_json::from_str(&json) {
            Ok(doc) => doc,
            Err(e) => {
                // Evict the whole file so the next save starts clean; keep
                // the bytes aside for post-mortem.
                let _ = std::fs::rename(&path, dir.join("artifacts.json.quarantined"));
                store.quarantine(format!("cache file {}: unparseable ({e})", path.display()));
                return Ok(store);
            }
        };
        if doc.schema != SCHEMA_VERSION {
            store.quarantine(format!(
                "cache file {}: stale schema v{} (current v{SCHEMA_VERSION}), {} entries discarded",
                path.display(),
                doc.schema,
                doc.artifacts.len()
            ));
            return Ok(store);
        }
        for (hex, entry) in doc.artifacts {
            let Some(key) = ArtifactKey::from_hex(&hex) else {
                store.quarantine(format!("entry {hex}: invalid key"));
                continue;
            };
            let expect = artifact_checksum(&entry.artifact);
            if entry.checksum != expect {
                store.quarantine(format!(
                    "entry {hex}: checksum mismatch (stored {:#018x}, computed {expect:#018x})",
                    entry.checksum
                ));
                continue;
            }
            store.insert(key, entry.artifact);
        }
        Ok(store)
    }
}

impl ArtifactStore {
    /// [`FeatureSource::features_all`] in the namespace named by `salt`.
    ///
    /// # Errors
    /// The first extraction failure, if any function fails to decode.
    pub fn features_all_ns(
        &self,
        bin: &Binary,
        salt: (u64, u64),
    ) -> Result<Vec<StaticFeatures>, ScanError> {
        (0..bin.function_count())
            .map(|i| Ok(self.get_or_extract_ns(bin, i, salt)?.features.clone()))
            .collect()
    }

    /// [`FeatureSource::features_one`] in the namespace named by `salt`.
    ///
    /// # Errors
    /// [`ScanError::Extraction`] when the function's code fails to decode.
    pub fn features_one_ns(
        &self,
        bin: &Binary,
        idx: usize,
        salt: (u64, u64),
    ) -> Result<StaticFeatures, ScanError> {
        Ok(self.get_or_extract_ns(bin, idx, salt)?.features.clone())
    }

    /// [`FeatureSource::signatures_all`] in the namespace named by `salt`:
    /// retrieval signatures for every function of `bin`, served from the
    /// persistent signature lane when cached, computed from `feats` and
    /// inserted otherwise. `feats` must be the binary's full feature
    /// vector list (as returned by `features_all`); the signature under a
    /// key is a pure function of the features under the same key, so the
    /// lanes can never disagree.
    pub fn signatures_all_ns(
        &self,
        bin: &Binary,
        feats: &[StaticFeatures],
        salt: (u64, u64),
    ) -> Vec<FunctionSignature> {
        feats
            .iter()
            .enumerate()
            .map(|(idx, f)| {
                let key = ArtifactKey::for_function(bin, idx).namespaced(salt);
                match self.sig_lane.lookup(key) {
                    Some(sig) => (*sig).clone(),
                    None => {
                        let sig = FunctionSignature::of(f);
                        self.sig_lane.insert(key, sig.clone());
                        sig
                    }
                }
            })
            .collect()
    }

    /// [`DynProfileSource::environments`] in the namespace named by
    /// `salt`. Concurrent misses single-flight like the static lane.
    ///
    /// # Errors
    /// Infallible today (live generation cannot fail); `Result` for
    /// seam-compatibility with [`DynProfileSource`].
    pub fn environments_ns(
        &self,
        reference: &LoadedBinary,
        fuzz_cfg: &FuzzConfig,
        vm: &VmConfig,
        salt: (u64, u64),
    ) -> Result<EnvSet, ScanError> {
        let key = ArtifactKey::for_env_set(reference.binary(), fuzz_cfg, vm).namespaced(salt);
        loop {
            if let Some(envs) = self.dyn_lane.lookup_envs(key) {
                // Recomputing the fingerprint from the stored contents
                // (rather than persisting it) keeps the env-set → profile
                // linkage self-validating: a tampered env list that
                // somehow survived the checksum would fingerprint
                // differently and miss every profile derived from the
                // original.
                return Ok(EnvSet::new((*envs).clone(), vm));
            }
            if let Some(_claim) = self.flight.claim(key) {
                let set = dynsource::live_environments(reference, fuzz_cfg, vm);
                self.dyn_lane.insert_envs(key, set.envs.clone());
                return Ok(set);
            }
        }
    }

    /// [`DynProfileSource::profile`] in the namespace named by `salt`.
    /// Concurrent misses single-flight: one live profiling run (a whole
    /// batch of VM executions) serves every concurrent requester.
    ///
    /// # Errors
    /// Infallible today; `Result` for seam-compatibility.
    ///
    /// # Panics
    /// When `func` is out of range for `target`'s function table (same
    /// contract as `LoadedBinary::run_any`).
    pub fn profile_ns(
        &self,
        target: &LoadedBinary,
        func: usize,
        envs: &EnvSet,
        vm: &VmConfig,
        salt: (u64, u64),
    ) -> Result<DynProfile, ScanError> {
        // Same contract (and same message) as `LoadedBinary::run_any` and
        // `LiveProfiling`, checked before key derivation so an
        // out-of-range candidate produces identical degradation
        // diagnostics whether the lane is warm or cold.
        assert!(
            func < target.function_count(),
            "function index {func} out of range (table holds {})",
            target.function_count()
        );
        let key =
            ArtifactKey::for_dyn_profile(target.binary(), func, envs.fingerprint).namespaced(salt);
        loop {
            if let Some(profile) = self.dyn_lane.lookup_profile(key) {
                return Ok((*profile).clone());
            }
            if let Some(_claim) = self.flight.claim(key) {
                self.dyn_lane.profiled.inc();
                let profile = dynsource::live_profile(target, func, &envs.envs, vm);
                self.dyn_lane.insert_profile(key, profile.clone());
                return Ok(profile);
            }
        }
    }
}

impl FeatureSource for ArtifactStore {
    fn features_all(&self, bin: &Binary) -> Result<Vec<StaticFeatures>, ScanError> {
        self.features_all_ns(bin, (0, 0))
    }

    fn features_one(&self, bin: &Binary, idx: usize) -> Result<StaticFeatures, ScanError> {
        self.features_one_ns(bin, idx, (0, 0))
    }

    fn signatures_all(&self, bin: &Binary, feats: &[StaticFeatures]) -> Vec<FunctionSignature> {
        self.signatures_all_ns(bin, feats, (0, 0))
    }
}

/// The dynamic lane served through the pipeline's [`DynProfileSource`]
/// seam. Both methods are infallible by construction: a damaged or
/// missing cache entry was already quarantined at load time and is simply
/// a miss here, answered by live fuzzing/execution — so cache trouble
/// degrades to cold-run behaviour (bitwise-identical results, more VM
/// executions), never to an error.
impl DynProfileSource for ArtifactStore {
    fn environments(
        &self,
        reference: &LoadedBinary,
        fuzz_cfg: &FuzzConfig,
        vm: &VmConfig,
    ) -> Result<EnvSet, ScanError> {
        self.environments_ns(reference, fuzz_cfg, vm, (0, 0))
    }

    fn profile(
        &self,
        target: &LoadedBinary,
        func: usize,
        envs: &EnvSet,
        vm: &VmConfig,
    ) -> Result<DynProfile, ScanError> {
        self.profile_ns(target, func, envs, vm, (0, 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testfix::{dyn_fixture, store_binary as sample_binary};
    use patchecko_core::pipeline::DirectExtraction;

    #[test]
    fn second_lookup_hits_and_skips_extraction() {
        let store = ArtifactStore::new();
        let bin = sample_binary();
        let cold = store.features_all(&bin).unwrap();
        let s1 = store.stats();
        assert_eq!(s1.hits, 0);
        assert_eq!(s1.misses, bin.function_count() as u64);
        assert_eq!(s1.extractions, bin.function_count() as u64);

        let warm = store.features_all(&bin).unwrap();
        let s2 = store.stats();
        assert_eq!(s2.extractions, s1.extractions, "warm pass extracts nothing");
        assert_eq!(s2.hits, bin.function_count() as u64);
        assert_eq!(cold, warm);
        assert!(s2.hit_rate() > 0.49 && s2.hit_rate() < 0.51);
    }

    #[test]
    fn cached_features_match_direct_extraction() {
        let store = ArtifactStore::new();
        let bin = sample_binary();
        let direct = DirectExtraction.features_all(&bin).unwrap();
        // Twice: once populating, once from cache.
        assert_eq!(store.features_all(&bin).unwrap(), direct);
        assert_eq!(store.features_all(&bin).unwrap(), direct);
        for (idx, expected) in direct.iter().enumerate() {
            assert_eq!(&store.features_one(&bin, idx).unwrap(), expected);
        }
    }

    #[test]
    fn corrupt_binary_extraction_is_typed_not_a_panic() {
        let store = ArtifactStore::new();
        let mut bin = sample_binary();
        bin.functions[2].code = vec![0xEE, 0xEE, 0xEE];
        match store.features_all(&bin) {
            Err(ScanError::Extraction { function: 2, .. }) => {}
            other => panic!("expected typed extraction error, got {other:?}"),
        }
        // Healthy functions are still servable individually.
        assert!(store.features_one(&bin, 0).is_ok());
    }

    #[test]
    fn persistence_roundtrip_preserves_artifacts() {
        let dir = std::env::temp_dir().join(format!("scanhub-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ArtifactStore::new();
        let bin = sample_binary();
        store.features_all(&bin).unwrap();
        store.save(&dir).unwrap();

        let reloaded = ArtifactStore::load(&dir).unwrap();
        assert_eq!(reloaded.len(), store.len());
        assert_eq!(reloaded.stats().quarantined, 0, "a clean cache quarantines nothing");
        let before = reloaded.stats();
        let feats = reloaded.features_all(&bin).unwrap();
        let after = reloaded.stats();
        assert_eq!(after.extractions, before.extractions, "reloaded store serves from cache");
        assert_eq!(after.misses, before.misses);
        assert_eq!(feats, DirectExtraction.features_all(&bin).unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_cache_dir_loads_empty() {
        let dir = std::env::temp_dir().join("scanhub-store-definitely-missing");
        let store = ArtifactStore::load(&dir).unwrap();
        assert!(store.is_empty());
    }

    /// A fresh temp cache dir, cleaned before use.
    fn temp_cache(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("scanhub-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn garbage_cache_file_quarantined_and_reextracted() {
        let dir = temp_cache("garbage");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("artifacts.json"), b"{ not json at all \xff\xfe").unwrap();

        let store = ArtifactStore::load(&dir).unwrap();
        assert!(store.is_empty(), "garbage must never be served");
        assert_eq!(store.stats().quarantined, 1);
        assert!(store.quarantine_records()[0].contains("unparseable"));
        // The bad file was moved aside, so the store can save cleanly.
        assert!(dir.join("artifacts.json.quarantined").exists());
        assert!(!dir.join("artifacts.json").exists());

        // Warm scan falls back to re-extraction, matching a cold scan bitwise.
        let bin = sample_binary();
        let recovered = store.features_all(&bin).unwrap();
        assert_eq!(recovered, DirectExtraction.features_all(&bin).unwrap());
        assert_eq!(store.stats().extractions, bin.function_count() as u64);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_cache_file_quarantined_and_reextracted() {
        let dir = temp_cache("truncated");
        let bin = sample_binary();
        let store = ArtifactStore::new();
        let cold = store.features_all(&bin).unwrap();
        store.save(&dir).unwrap();
        // Simulate a crash mid-write of a non-atomic writer: cut the file.
        let path = dir.join("artifacts.json");
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

        let reloaded = ArtifactStore::load(&dir).unwrap();
        assert!(reloaded.is_empty(), "truncated JSON must never be served");
        assert_eq!(reloaded.stats().quarantined, 1);
        let warm = reloaded.features_all(&bin).unwrap();
        assert_eq!(warm, cold, "recovery matches the cold scan bitwise");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_schema_cache_discarded() {
        let dir = temp_cache("stale-schema");
        let bin = sample_binary();
        let store = ArtifactStore::new();
        store.features_all(&bin).unwrap();
        store.save(&dir).unwrap();
        // Rewrite the document under an old schema version.
        let path = dir.join("artifacts.json");
        let json = std::fs::read_to_string(&path).unwrap();
        let stale = json.replacen(
            &format!("\"schema\":{SCHEMA_VERSION}"),
            "\"schema\":1",
            1,
        );
        assert_ne!(json, stale, "schema field rewritten");
        std::fs::write(&path, stale).unwrap();

        let reloaded = ArtifactStore::load(&dir).unwrap();
        assert!(reloaded.is_empty(), "stale-schema artifacts are discarded");
        assert_eq!(reloaded.stats().quarantined, 1);
        assert!(reloaded.quarantine_records()[0].contains("stale schema"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checksum_mismatch_evicts_only_the_tampered_entry() {
        let dir = temp_cache("tampered");
        let bin = sample_binary();
        let store = ArtifactStore::new();
        let cold = store.features_all(&bin).unwrap();
        store.save(&dir).unwrap();
        // Corrupt one entry's checksum so its artifact no longer validates
        // (equivalent to the artifact bytes having been tampered with).
        let path = dir.join("artifacts.json");
        let mut doc: PersistedStore =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let n_entries = doc.artifacts.len();
        doc.artifacts.values_mut().next().unwrap().checksum ^= 1;
        std::fs::write(&path, serde_json::to_string(&doc).unwrap()).unwrap();

        let reloaded = ArtifactStore::load(&dir).unwrap();
        assert_eq!(reloaded.len(), n_entries - 1, "only the tampered entry is evicted");
        assert_eq!(reloaded.stats().quarantined, 1);
        assert!(reloaded.quarantine_records()[0].contains("checksum mismatch"));
        // The tampered value is never served: the warm scan re-extracts it
        // and matches the cold scan bitwise.
        let warm = reloaded.features_all(&bin).unwrap();
        assert_eq!(warm, cold);
        assert_eq!(reloaded.stats().extractions, 1, "exactly the evicted entry re-extracts");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_delta_saturates_across_quarantine_reload() {
        // Snapshot a warmed store, then quarantine-reload the cache dir
        // (the reloaded store's counters restart at zero). A delta taken
        // across that boundary used to underflow — panicking in debug,
        // reporting ~2^64 hits in release. It must clamp at zero.
        let dir = temp_cache("delta-saturate");
        let bin = sample_binary();
        let store = ArtifactStore::new();
        store.features_all(&bin).unwrap();
        store.features_all(&bin).unwrap();
        store.save(&dir).unwrap();
        let before = store.stats();
        assert!(before.hits > 0 && before.extractions > 0);

        // Corrupt the cache so the reload starts from an empty store.
        std::fs::write(dir.join("artifacts.json"), b"garbage").unwrap();
        let reloaded = ArtifactStore::load(&dir).unwrap();
        let after = reloaded.stats();
        let delta = after.since(&before);
        assert_eq!(delta.hits, 0, "saturates instead of underflowing");
        assert_eq!(delta.misses, 0);
        assert_eq!(delta.extractions, 0);
        assert_eq!(delta.quarantined, 1, "the quarantine itself still shows");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_delta_on_same_store_is_exact() {
        let store = ArtifactStore::new();
        let bin = sample_binary();
        store.features_all(&bin).unwrap();
        let mid = store.stats();
        store.features_all(&bin).unwrap();
        let delta = store.stats().since(&mid);
        assert_eq!(delta.hits, bin.function_count() as u64);
        assert_eq!(delta.misses, 0);
        assert_eq!(delta.extractions, 0);
    }

    #[test]
    fn counters_live_in_the_supplied_registry() {
        let reg = Arc::new(scope::MetricsRegistry::new());
        let store = ArtifactStore::with_registry(Arc::clone(&reg));
        let bin = sample_binary();
        store.features_all(&bin).unwrap();
        store.features_all(&bin).unwrap();
        let snap = reg.snapshot();
        let n = bin.function_count() as u64;
        assert_eq!(snap.counter("cache.misses"), n);
        assert_eq!(snap.counter("cache.extractions"), n);
        assert_eq!(snap.counter("cache.hits"), n);
        // stats() reads the very same counters.
        let stats = store.stats();
        assert_eq!(stats.hits, snap.counter("cache.hits"));
        assert!(Arc::ptr_eq(store.registry(), &reg));
    }

    #[test]
    fn dyn_lane_roundtrip_serves_cached_envs_and_profiles() {
        let dir = temp_cache("dyn-roundtrip");
        let (lb, fuzz, vmc) = dyn_fixture();
        let store = ArtifactStore::new();
        let envs = store.environments(&lb, &fuzz, &vmc).unwrap();
        let cold = store.profile(&lb, 1, &envs, &vmc).unwrap();
        let s = store.stats();
        assert_eq!((s.dyn_hits, s.dyn_misses, s.dyn_profiled), (0, 2, 1));
        assert_eq!(s.dyn_entries, 2, "one env set + one profile resident");
        store.save(&dir).unwrap();

        let reloaded = ArtifactStore::load(&dir).unwrap();
        assert_eq!(reloaded.stats().dyn_entries, 2);
        assert_eq!(reloaded.stats().dyn_quarantined, 0, "a clean dyn cache quarantines nothing");
        let envs2 = reloaded.environments(&lb, &fuzz, &vmc).unwrap();
        assert_eq!(envs2.envs, envs.envs);
        assert_eq!(envs2.fingerprint, envs.fingerprint, "recomputed fingerprint matches");
        let warm = reloaded.profile(&lb, 1, &envs2, &vmc).unwrap();
        assert_eq!(warm, cold, "cached profile is bitwise-identical to the live one");
        let s = reloaded.stats();
        assert_eq!((s.dyn_hits, s.dyn_misses), (2, 0), "warm pass is all hits");
        assert_eq!(s.dyn_profiled, 0, "warm pass executes nothing");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sig_lane_roundtrip_serves_cached_signatures() {
        let dir = temp_cache("sig-roundtrip");
        let store = ArtifactStore::new();
        let bin = sample_binary();
        let n = bin.function_count() as u64;
        let feats = store.features_all(&bin).unwrap();
        let sigs = store.signatures_all(&bin, &feats);
        let s = store.stats();
        assert_eq!((s.sig_hits, s.sig_misses, s.sig_entries), (0, n, n));
        assert_eq!(store.signatures_all(&bin, &feats), sigs, "warm pass serves the same values");
        assert_eq!(store.stats().sig_hits, n);
        store.save(&dir).unwrap();

        let reloaded = ArtifactStore::load(&dir).unwrap();
        let s = reloaded.stats();
        assert_eq!(s.sig_entries, n);
        assert_eq!(s.sig_quarantined, 0, "a clean sig index quarantines nothing");
        assert_eq!(reloaded.signatures_all(&bin, &feats), sigs);
        let s = reloaded.stats();
        assert_eq!((s.sig_hits, s.sig_misses), (n, 0), "reloaded lane is warm");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tampered_dyn_entry_evicted_and_recomputed() {
        let dir = temp_cache("dyn-tampered");
        let (lb, fuzz, vmc) = dyn_fixture();
        let store = ArtifactStore::new();
        let envs = store.environments(&lb, &fuzz, &vmc).unwrap();
        let cold = store.profile(&lb, 0, &envs, &vmc).unwrap();
        store.save(&dir).unwrap();

        // Flip one profile checksum so the entry no longer validates.
        let path = dir.join(crate::dynstore::DYN_CACHE_FILE);
        let mut doc: crate::dynstore::PersistedDynStore =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        doc.profiles.values_mut().next().unwrap().checksum ^= 1;
        std::fs::write(&path, serde_json::to_string(&doc).unwrap()).unwrap();

        let reloaded = ArtifactStore::load(&dir).unwrap();
        assert_eq!(reloaded.stats().dyn_quarantined, 1, "only the tampered entry is evicted");
        assert!(reloaded
            .quarantine_records()
            .iter()
            .any(|r| r.contains("dyn profile") && r.contains("checksum mismatch")));
        // The evicted profile is recomputed live, bitwise-identical.
        let envs2 = reloaded.environments(&lb, &fuzz, &vmc).unwrap();
        let warm = reloaded.profile(&lb, 0, &envs2, &vmc).unwrap();
        assert_eq!(warm, cold);
        assert_eq!(reloaded.stats().dyn_profiled, 1, "exactly the evicted profile re-executes");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_dyn_schema_discarded_independently_of_static_lane() {
        let dir = temp_cache("dyn-stale");
        let (lb, fuzz, vmc) = dyn_fixture();
        let store = ArtifactStore::new();
        store.features_all(lb.binary()).unwrap();
        let envs = store.environments(&lb, &fuzz, &vmc).unwrap();
        store.profile(&lb, 0, &envs, &vmc).unwrap();
        store.save(&dir).unwrap();

        let path = dir.join(crate::dynstore::DYN_CACHE_FILE);
        let json = std::fs::read_to_string(&path).unwrap();
        let stale = json.replacen(&format!("\"schema\":{SCHEMA_VERSION}"), "\"schema\":2", 1);
        assert_ne!(json, stale, "schema field rewritten");
        std::fs::write(&path, stale).unwrap();

        let reloaded = ArtifactStore::load(&dir).unwrap();
        assert_eq!(reloaded.stats().dyn_entries, 0, "stale dyn entries are discarded");
        assert_eq!(reloaded.stats().dyn_quarantined, 1);
        assert!(reloaded.quarantine_records().iter().any(|r| r.contains("stale schema")));
        // The static lane is untouched by dynamic-lane staleness.
        assert_eq!(reloaded.len(), store.len());
        assert_eq!(reloaded.stats().quarantined, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn dyn_profile_out_of_range_panics_like_run_any() {
        let (lb, fuzz, vmc) = dyn_fixture();
        let store = ArtifactStore::new();
        let envs = store.environments(&lb, &fuzz, &vmc).unwrap();
        let _ = store.profile(&lb, lb.function_count() + 1, &envs, &vmc);
    }

    #[test]
    fn concurrent_same_key_misses_single_flight_to_one_extraction() {
        let store = Arc::new(ArtifactStore::new());
        let bin = Arc::new(sample_binary());
        let n = bin.function_count() as u64;
        std::thread::scope(|s| {
            for _ in 0..4 {
                let (store, bin) = (Arc::clone(&store), Arc::clone(&bin));
                s.spawn(move || store.features_all(&bin).unwrap());
            }
        });
        let stats = store.stats();
        assert_eq!(stats.extractions, n, "one extraction per function, regardless of racers");
        assert_eq!(stats.entries, n);
    }

    #[test]
    fn failed_winner_releases_the_flight_for_waiters() {
        // Every racer must get the typed error back — a panicking or
        // failing winner may not strand waiters on the condvar.
        let store = Arc::new(ArtifactStore::new());
        let mut bin = sample_binary();
        bin.functions[2].code = vec![0xEE, 0xEE, 0xEE];
        let bin = Arc::new(bin);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let (store, bin) = (Arc::clone(&store), Arc::clone(&bin));
                    s.spawn(move || store.features_one(&bin, 2))
                })
                .collect();
            for h in handles {
                match h.join().unwrap() {
                    Err(ScanError::Extraction { function: 2, .. }) => {}
                    other => panic!("expected typed extraction error, got {other:?}"),
                }
            }
        });
    }

    #[test]
    fn checksum_is_structural_and_stable() {
        let bin = sample_binary();
        let store = ArtifactStore::new();
        let a = store.get_or_extract(&bin, 0).unwrap();
        let c1 = artifact_checksum(&a);
        // A JSON round-trip preserves the checksum (bit-exact floats).
        let json = serde_json::to_string(&*a).unwrap();
        let back: Artifact = serde_json::from_str(&json).unwrap();
        assert_eq!(artifact_checksum(&back), c1);
        // Any field change moves it.
        let mut tampered = back.clone();
        tampered.cfg.num_blocks += 1;
        assert_ne!(artifact_checksum(&tampered), c1);
    }
}
