//! The content-addressed artifact store: a sharded in-memory map in front
//! of an optional on-disk layer.
//!
//! Each entry holds the per-function artifacts the static stage would
//! otherwise re-derive on every scan — the Table-I feature vector and the
//! condensed CFG — keyed by [`ArtifactKey`]. Lookups are sharded across
//! independent `parking_lot` mutexes so scheduler workers rarely contend,
//! and the hit/miss/extraction counters make cache behaviour observable
//! (the `--cache-stats` CLI flag and the warm-re-audit acceptance test
//! both read them).

use crate::key::{ArtifactKey, SCHEMA_VERSION};
use disasm::CfgSummary;
use fwbin::format::Binary;
use parking_lot::Mutex;
use patchecko_core::features::{self, StaticFeatures};
use patchecko_core::pipeline::FeatureSource;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shard count of the in-memory map. Power of two, comfortably above the
/// worker counts the scheduler runs with.
const NUM_SHARDS: usize = 16;

/// The cached artifacts of one function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Artifact {
    /// Table-I static feature vector.
    pub features: StaticFeatures,
    /// Condensed control-flow graph.
    pub cfg: CfgSummary,
}

/// A point-in-time snapshot of the store's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups served from the map.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Disassembly + feature extractions actually performed.
    pub extractions: u64,
    /// Entries currently resident.
    pub entries: u64,
}

impl CacheStats {
    /// Hit fraction in [0, 1]; 0 when no lookups happened yet.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter deltas since an earlier snapshot.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            extractions: self.extractions - earlier.extractions,
            entries: self.entries,
        }
    }
}

impl std::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} hits / {} misses ({:.1}% hit rate), {} extractions, {} entries",
            self.hits,
            self.misses,
            self.hit_rate() * 100.0,
            self.extractions,
            self.entries
        )
    }
}

/// On-disk image of the store (one JSON document per cache directory).
#[derive(Serialize, Deserialize)]
struct PersistedStore {
    /// Feature-schema version the artifacts were extracted under.
    schema: u32,
    /// Hex key → artifact.
    artifacts: BTreeMap<String, Artifact>,
}

/// The sharded artifact store.
pub struct ArtifactStore {
    shards: Vec<Mutex<HashMap<ArtifactKey, Arc<Artifact>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    extractions: AtomicU64,
}

impl Default for ArtifactStore {
    fn default() -> ArtifactStore {
        ArtifactStore::new()
    }
}

impl ArtifactStore {
    /// An empty store.
    pub fn new() -> ArtifactStore {
        ArtifactStore {
            shards: (0..NUM_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            extractions: AtomicU64::new(0),
        }
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            extractions: self.extractions.load(Ordering::Relaxed),
            entries: self.shards.iter().map(|s| s.lock().len() as u64).sum(),
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lookup(&self, key: ArtifactKey) -> Option<Arc<Artifact>> {
        let found = self.shards[key.shard(NUM_SHARDS)].lock().get(&key).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    fn insert(&self, key: ArtifactKey, artifact: Artifact) -> Arc<Artifact> {
        let arc = Arc::new(artifact);
        self.shards[key.shard(NUM_SHARDS)].lock().insert(key, Arc::clone(&arc));
        arc
    }

    fn extract(&self, bin: &Binary, idx: usize) -> Artifact {
        self.extractions.fetch_add(1, Ordering::Relaxed);
        let dis = disasm::disassemble(bin, idx).expect("target binaries decode");
        Artifact {
            features: features::extract(&dis, &bin.functions[idx]),
            cfg: dis.cfg.summary(),
        }
    }

    /// The artifacts of function `idx` of `bin`, extracting and caching on
    /// first sight. Extraction runs outside the shard lock, so a racing
    /// duplicate extraction is possible (and harmless — both compute the
    /// same value); the counters still record exactly what happened.
    pub fn get_or_extract(&self, bin: &Binary, idx: usize) -> Arc<Artifact> {
        let key = ArtifactKey::for_function(bin, idx);
        if let Some(found) = self.lookup(key) {
            return found;
        }
        let artifact = self.extract(bin, idx);
        self.insert(key, artifact)
    }

    /// Pre-populate the store with every function of an image. Returns the
    /// number of functions visited.
    pub fn warm_image(&self, image: &fwbin::FirmwareImage) -> usize {
        let mut n = 0;
        for bin in &image.binaries {
            for idx in 0..bin.function_count() {
                self.get_or_extract(bin, idx);
                n += 1;
            }
        }
        n
    }

    /// Write the store to `dir/artifacts.json` (creating `dir` as needed).
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn save(&self, dir: &Path) -> std::io::Result<()> {
        let mut artifacts = BTreeMap::new();
        for shard in &self.shards {
            for (k, v) in shard.lock().iter() {
                artifacts.insert(k.to_hex(), (**v).clone());
            }
        }
        let doc = PersistedStore { schema: SCHEMA_VERSION, artifacts };
        std::fs::create_dir_all(dir)?;
        let json = serde_json::to_string(&doc)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        std::fs::write(dir.join("artifacts.json"), json)
    }

    /// Load a store persisted by [`ArtifactStore::save`]. A missing file
    /// yields an empty store; a schema-version mismatch discards the stale
    /// entries (they would desynchronize from the extractor).
    ///
    /// # Errors
    /// Propagates filesystem and parse errors for existing files.
    pub fn load(dir: &Path) -> std::io::Result<ArtifactStore> {
        let path = dir.join("artifacts.json");
        let store = ArtifactStore::new();
        let json = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(store),
            Err(e) => return Err(e),
        };
        let doc: PersistedStore = serde_json::from_str(&json)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        if doc.schema != SCHEMA_VERSION {
            return Ok(store);
        }
        for (hex, artifact) in doc.artifacts {
            if let Some(key) = ArtifactKey::from_hex(&hex) {
                store.insert(key, artifact);
            }
        }
        Ok(store)
    }
}

impl FeatureSource for ArtifactStore {
    fn features_all(&self, bin: &Binary) -> Vec<StaticFeatures> {
        (0..bin.function_count()).map(|i| self.get_or_extract(bin, i).features.clone()).collect()
    }

    fn features_one(&self, bin: &Binary, idx: usize) -> StaticFeatures {
        self.get_or_extract(bin, idx).features.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fwbin::isa::{Arch, OptLevel};
    use fwlang::gen::Generator;
    use patchecko_core::pipeline::DirectExtraction;

    fn sample_binary() -> Binary {
        let lib = Generator::new(4).library_sized("libs", 6);
        fwbin::compile_library(&lib, Arch::Arm32, OptLevel::O1).unwrap()
    }

    #[test]
    fn second_lookup_hits_and_skips_extraction() {
        let store = ArtifactStore::new();
        let bin = sample_binary();
        let cold = store.features_all(&bin);
        let s1 = store.stats();
        assert_eq!(s1.hits, 0);
        assert_eq!(s1.misses, bin.function_count() as u64);
        assert_eq!(s1.extractions, bin.function_count() as u64);

        let warm = store.features_all(&bin);
        let s2 = store.stats();
        assert_eq!(s2.extractions, s1.extractions, "warm pass extracts nothing");
        assert_eq!(s2.hits, bin.function_count() as u64);
        assert_eq!(cold, warm);
        assert!(s2.hit_rate() > 0.49 && s2.hit_rate() < 0.51);
    }

    #[test]
    fn cached_features_match_direct_extraction() {
        let store = ArtifactStore::new();
        let bin = sample_binary();
        let direct = DirectExtraction.features_all(&bin);
        // Twice: once populating, once from cache.
        assert_eq!(store.features_all(&bin), direct);
        assert_eq!(store.features_all(&bin), direct);
        for (idx, expected) in direct.iter().enumerate() {
            assert_eq!(&store.features_one(&bin, idx), expected);
        }
    }

    #[test]
    fn persistence_roundtrip_preserves_artifacts() {
        let dir = std::env::temp_dir().join(format!("scanhub-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ArtifactStore::new();
        let bin = sample_binary();
        store.features_all(&bin);
        store.save(&dir).unwrap();

        let reloaded = ArtifactStore::load(&dir).unwrap();
        assert_eq!(reloaded.len(), store.len());
        let before = reloaded.stats();
        let feats = reloaded.features_all(&bin);
        let after = reloaded.stats();
        assert_eq!(after.extractions, before.extractions, "reloaded store serves from cache");
        assert_eq!(after.misses, before.misses);
        assert_eq!(feats, DirectExtraction.features_all(&bin));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_cache_dir_loads_empty() {
        let dir = std::env::temp_dir().join("scanhub-store-definitely-missing");
        let store = ArtifactStore::load(&dir).unwrap();
        assert!(store.is_empty());
    }
}
