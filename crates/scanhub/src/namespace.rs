//! Per-tenant views over one shared artifact store.
//!
//! The scan daemon keeps a single warm [`ArtifactStore`] (one in-memory
//! map, one persisted cache directory) for every client, but tenants must
//! not observe each other's cache state — a hit timing side-channel, or
//! worse a poisoned artifact, must stay confined to the tenant that
//! caused it. A [`TenantView`] is the seam: it implements the pipeline's
//! [`FeatureSource`] and [`DynProfileSource`] traits by delegating to the
//! store's `*_ns` entry points with the tenant's key salt
//! ([`crate::key::tenant_salt`]), so the same content cached by two
//! tenants lives under two disjoint key sets — in memory and in the one
//! persisted document. The anonymous tenant (`""`) salts to zero and
//! shares the base namespace with un-namespaced callers (the one-shot
//! CLI).

use crate::key::tenant_salt;
use crate::store::ArtifactStore;
use fwbin::format::Binary;
use patchecko_core::dynsource::{DynProfile, DynProfileSource, EnvSet};
use patchecko_core::error::ScanError;
use patchecko_core::features::StaticFeatures;
use patchecko_core::pipeline::FeatureSource;
use patchecko_core::retrieval::FunctionSignature;
use std::sync::Arc;
use vm::exec::VmConfig;
use vm::fuzz::FuzzConfig;
use vm::loader::LoadedBinary;

/// One tenant's view of a shared [`ArtifactStore`]: the store's full
/// [`FeatureSource`] + [`DynProfileSource`] surface, with every key
/// relocated into the tenant's cache namespace. Cheap to construct (the
/// salt is a 16-byte hash of the tenant name) and cheap to clone (one
/// `Arc` bump), so the daemon builds one per request.
#[derive(Clone)]
pub struct TenantView {
    store: Arc<ArtifactStore>,
    tenant: String,
    salt: (u64, u64),
}

impl TenantView {
    /// `tenant`'s view of `store`. The empty tenant is the identity view
    /// (base namespace).
    pub fn new(store: Arc<ArtifactStore>, tenant: &str) -> TenantView {
        TenantView { salt: tenant_salt(tenant), store, tenant: tenant.to_string() }
    }

    /// The tenant name this view salts with.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// The namespace salt ([`crate::key::tenant_salt`] of the name).
    pub fn salt(&self) -> (u64, u64) {
        self.salt
    }

    /// The shared store behind the view.
    pub fn store(&self) -> &Arc<ArtifactStore> {
        &self.store
    }
}

impl FeatureSource for TenantView {
    fn features_all(&self, bin: &Binary) -> Result<Vec<StaticFeatures>, ScanError> {
        self.store.features_all_ns(bin, self.salt)
    }

    fn features_one(&self, bin: &Binary, idx: usize) -> Result<StaticFeatures, ScanError> {
        self.store.features_one_ns(bin, idx, self.salt)
    }

    fn signatures_all(&self, bin: &Binary, feats: &[StaticFeatures]) -> Vec<FunctionSignature> {
        self.store.signatures_all_ns(bin, feats, self.salt)
    }
}

impl DynProfileSource for TenantView {
    fn environments(
        &self,
        reference: &LoadedBinary,
        fuzz_cfg: &FuzzConfig,
        vm: &VmConfig,
    ) -> Result<EnvSet, ScanError> {
        self.store.environments_ns(reference, fuzz_cfg, vm, self.salt)
    }

    fn profile(
        &self,
        target: &LoadedBinary,
        func: usize,
        envs: &EnvSet,
        vm: &VmConfig,
    ) -> Result<DynProfile, ScanError> {
        self.store.profile_ns(target, func, envs, vm, self.salt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testfix;

    #[test]
    fn tenants_partition_one_store_and_the_anonymous_view_is_identity() {
        let store = Arc::new(ArtifactStore::new());
        let bin = testfix::store_binary();
        let n = bin.function_count() as u64;

        let acme = TenantView::new(Arc::clone(&store), "acme");
        let feats = acme.features_all(&bin).unwrap();
        let s1 = store.stats();
        assert_eq!((s1.extractions, s1.entries), (n, n));

        // Same tenant again: pure cache hits, no new entries.
        assert_eq!(acme.features_all(&bin).unwrap(), feats);
        assert_eq!(store.stats().extractions, n);

        // A different tenant re-extracts into its own key set: identical
        // values, disjoint entries in the same store.
        let rival = TenantView::new(Arc::clone(&store), "rival");
        assert_eq!(rival.features_all(&bin).unwrap(), feats);
        let s2 = store.stats();
        assert_eq!((s2.extractions, s2.entries), (2 * n, 2 * n));

        // The anonymous tenant shares the base namespace with the plain
        // (un-namespaced) store surface.
        let anon = TenantView::new(Arc::clone(&store), "");
        assert_eq!(anon.salt(), (0, 0));
        anon.features_all(&bin).unwrap();
        assert_eq!(store.stats().entries, 3 * n);
        store.features_all(&bin).unwrap();
        assert_eq!(store.stats().extractions, 3 * n, "plain surface hits anon's entries");
    }

    #[test]
    fn namespaced_entries_survive_persistence_per_tenant() {
        let dir = std::env::temp_dir().join(format!("scanhub-ns-persist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(ArtifactStore::new());
        let bin = testfix::store_binary();
        let n = bin.function_count() as u64;
        TenantView::new(Arc::clone(&store), "acme").features_all(&bin).unwrap();
        store.save(&dir).unwrap();

        let reloaded = Arc::new(ArtifactStore::load(&dir).unwrap());
        assert_eq!(reloaded.stats().quarantined, 0);
        // acme is warm after reload; rival is still cold.
        TenantView::new(Arc::clone(&reloaded), "acme").features_all(&bin).unwrap();
        assert_eq!(reloaded.stats().extractions, 0);
        TenantView::new(Arc::clone(&reloaded), "rival").features_all(&bin).unwrap();
        assert_eq!(reloaded.stats().extractions, n);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sig_lane_respects_tenant_namespaces() {
        let store = Arc::new(ArtifactStore::new());
        let bin = testfix::store_binary();
        let n = bin.function_count() as u64;
        let acme = TenantView::new(Arc::clone(&store), "acme");
        let feats = acme.features_all(&bin).unwrap();
        let sigs = acme.signatures_all(&bin, &feats);
        assert_eq!(store.stats().sig_entries, n);

        // Same tenant: cached. Other tenant: recomputed into disjoint keys
        // (identical values — the signature is a pure feature function).
        assert_eq!(acme.signatures_all(&bin, &feats), sigs);
        assert_eq!(store.stats().sig_hits, n);
        let rival = TenantView::new(Arc::clone(&store), "rival");
        assert_eq!(rival.signatures_all(&bin, &feats), sigs, "values identical across tenants");
        assert_eq!(store.stats().sig_entries, 2 * n, "key sets disjoint across tenants");
    }

    #[test]
    fn dyn_lane_respects_tenant_namespaces() {
        let store = Arc::new(ArtifactStore::new());
        let (lb, fuzz, vmc) = testfix::dyn_fixture();
        let acme = TenantView::new(Arc::clone(&store), "acme");
        let envs = acme.environments(&lb, &fuzz, &vmc).unwrap();
        let p = acme.profile(&lb, 0, &envs, &vmc).unwrap();
        assert_eq!(store.stats().dyn_profiled, 1);

        // Same tenant: cached. Other tenant: recomputed (bitwise equal).
        assert_eq!(acme.profile(&lb, 0, &envs, &vmc).unwrap(), p);
        assert_eq!(store.stats().dyn_profiled, 1);
        let rival = TenantView::new(Arc::clone(&store), "rival");
        let envs2 = rival.environments(&lb, &fuzz, &vmc).unwrap();
        assert_eq!(envs2.fingerprint, envs.fingerprint, "contents identical across tenants");
        assert_eq!(rival.profile(&lb, 0, &envs2, &vmc).unwrap(), p);
        assert_eq!(store.stats().dyn_profiled, 2, "rival's cold lane profiles live");
    }
}
