//! The signature lane of the artifact store: the persistent retrieval
//! index in front of the NN scan.
//!
//! Indexed retrieval (`--retrieval topk`) needs a
//! [`FunctionSignature`] for every target function. The signature is a
//! pure function of the Table-I features — cheap, but not free at
//! image scale — so the store caches one per function under the same
//! [`ArtifactKey`] discipline as the feature lane, populated
//! incrementally: the first scan of a binary computes and inserts its
//! signatures, every later scan (same tenant namespace) serves them
//! from the lane.
//!
//! The lane persists to `sig_index.json` beside `artifacts.json` and
//! `dyn_artifacts.json`, with identical hardening: per-entry structural
//! checksums, whole-file quarantine of unparseable documents,
//! stale-schema discard, and temp-file + rename saves. A quarantined or
//! missing signature is just a miss — the scan recomputes it from the
//! features and repopulates the lane, never surfacing cache damage as
//! an error or a behaviour change.

use crate::key::{ArtifactKey, Fnv2, SCHEMA_VERSION};
use parking_lot::Mutex;
use patchecko_core::retrieval::FunctionSignature;
use scope::{Counter, MetricsRegistry};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::path::Path;
use std::sync::Arc;

/// Shard count of the in-memory map (matches the other lanes).
const NUM_SHARDS: usize = 16;

/// On-disk file name of the signature lane.
pub const SIG_INDEX_FILE: &str = "sig_index.json";

/// Structural checksum of a signature: FNV-1a over the quantized vector
/// and the MinHash values, length-prefixed so truncation is detected.
pub fn signature_checksum(sig: &FunctionSignature) -> u64 {
    let mut h = Fnv2::new();
    h.update_u64(sig.q.len() as u64);
    for &q in &sig.q {
        h.update_u64(q as i64 as u64);
    }
    h.update_u64(sig.minhash.len() as u64);
    for &m in &sig.minhash {
        h.update_u32(m);
    }
    h.hi
}

/// One persisted signature, checksummed like the other lanes' entries.
#[derive(Serialize, Deserialize)]
pub(crate) struct PersistedSignature {
    /// [`signature_checksum`] of `signature` at save time.
    pub(crate) checksum: u64,
    /// The cached signature.
    pub(crate) signature: FunctionSignature,
}

/// On-disk image of the signature lane (one JSON document per cache dir).
#[derive(Serialize, Deserialize)]
pub(crate) struct PersistedSigIndex {
    /// Schema version the signatures were derived under (shared with the
    /// feature lane: signature derivation depends on feature extraction).
    pub(crate) schema: u32,
    /// Hex function key → checksummed signature.
    pub(crate) signatures: BTreeMap<String, PersistedSignature>,
}

/// The persistent signature index: a sharded map of per-function
/// retrieval signatures with its own counters (`index.hits`,
/// `index.misses`, `index.quarantined`) in the owning store's registry.
pub struct SignatureIndex {
    shards: Vec<Mutex<HashMap<ArtifactKey, Arc<FunctionSignature>>>>,
    pub(crate) hits: Counter,
    pub(crate) misses: Counter,
    pub(crate) quarantined: Counter,
    quarantine_log: Mutex<Vec<String>>,
}

impl SignatureIndex {
    /// An empty index recording its counters into `registry`.
    pub(crate) fn with_registry(registry: &MetricsRegistry) -> SignatureIndex {
        SignatureIndex {
            shards: (0..NUM_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: registry.counter("index.hits"),
            misses: registry.counter("index.misses"),
            quarantined: registry.counter("index.quarantined"),
            quarantine_log: Mutex::new(Vec::new()),
        }
    }

    /// Record a quarantine event (mirrors the other lanes: the offending
    /// entry is never inserted, the counter moves, the detail is kept).
    fn quarantine(&self, detail: String) {
        self.quarantined.inc();
        self.quarantine_log.lock().push(detail);
    }

    /// Details of every signature-lane quarantine since construction.
    pub(crate) fn quarantine_records(&self) -> Vec<String> {
        self.quarantine_log.lock().clone()
    }

    /// Resident signatures.
    pub fn entries(&self) -> u64 {
        self.shards.iter().map(|s| s.lock().len() as u64).sum()
    }

    /// The cached signature under `key`, counting a hit or a miss.
    pub(crate) fn lookup(&self, key: ArtifactKey) -> Option<Arc<FunctionSignature>> {
        let found = self.shards[key.shard(NUM_SHARDS)].lock().get(&key).cloned();
        match &found {
            Some(_) => self.hits.inc(),
            None => self.misses.inc(),
        };
        found
    }

    /// Insert (or replace) the signature under `key` — the incremental
    /// half of the index: every first-sight scan populates the lane.
    pub(crate) fn insert(&self, key: ArtifactKey, sig: FunctionSignature) -> Arc<FunctionSignature> {
        let arc = Arc::new(sig);
        self.shards[key.shard(NUM_SHARDS)].lock().insert(key, Arc::clone(&arc));
        arc
    }

    /// Write the lane to `dir/sig_index.json`, temp-file + rename like the
    /// other lanes so a crash mid-save can't truncate the document.
    pub(crate) fn save(&self, dir: &Path) -> std::io::Result<()> {
        let mut signatures = BTreeMap::new();
        for shard in &self.shards {
            for (k, v) in shard.lock().iter() {
                signatures.insert(
                    k.to_hex(),
                    PersistedSignature { checksum: signature_checksum(v), signature: (**v).clone() },
                );
            }
        }
        let doc = PersistedSigIndex { schema: SCHEMA_VERSION, signatures };
        std::fs::create_dir_all(dir)?;
        let json = serde_json::to_string(&doc)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        let tmp = dir.join(format!("{SIG_INDEX_FILE}.tmp.{}", std::process::id()));
        std::fs::write(&tmp, json)?;
        std::fs::rename(&tmp, dir.join(SIG_INDEX_FILE))
    }

    /// Load `dir/sig_index.json` into this (empty) lane with the
    /// trust-nothing policy of the other lanes: missing file → empty
    /// lane; unparseable file → quarantined whole (renamed aside); stale
    /// schema → discarded; invalid key or checksum mismatch → that entry
    /// evicted, the rest still load. A quarantined signature is just a
    /// future miss: the scan recomputes it from the features.
    ///
    /// # Errors
    /// Propagates filesystem errors other than `NotFound`.
    pub(crate) fn load(&self, dir: &Path) -> std::io::Result<()> {
        let path = dir.join(SIG_INDEX_FILE);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(e),
        };
        let json = match String::from_utf8(bytes) {
            Ok(s) => s,
            Err(_) => {
                let _ = std::fs::rename(&path, dir.join(format!("{SIG_INDEX_FILE}.quarantined")));
                self.quarantine(format!(
                    "sig index file {}: unparseable (invalid UTF-8)",
                    path.display()
                ));
                return Ok(());
            }
        };
        let doc: PersistedSigIndex = match serde_json::from_str(&json) {
            Ok(doc) => doc,
            Err(e) => {
                let _ = std::fs::rename(&path, dir.join(format!("{SIG_INDEX_FILE}.quarantined")));
                self.quarantine(format!("sig index file {}: unparseable ({e})", path.display()));
                return Ok(());
            }
        };
        if doc.schema != SCHEMA_VERSION {
            self.quarantine(format!(
                "sig index file {}: stale schema v{} (current v{SCHEMA_VERSION}), {} entries discarded",
                path.display(),
                doc.schema,
                doc.signatures.len()
            ));
            return Ok(());
        }
        for (hex, entry) in doc.signatures {
            let Some(key) = ArtifactKey::from_hex(&hex) else {
                self.quarantine(format!("signature {hex}: invalid key"));
                continue;
            };
            let expect = signature_checksum(&entry.signature);
            if entry.checksum != expect {
                self.quarantine(format!(
                    "signature {hex}: checksum mismatch (stored {:#018x}, computed {expect:#018x})",
                    entry.checksum
                ));
                continue;
            }
            self.insert(key, entry.signature);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testfix::store_binary;
    use patchecko_core::features;

    fn sample_signatures() -> Vec<FunctionSignature> {
        let bin = store_binary();
        features::extract_all(&bin).unwrap().iter().map(FunctionSignature::of).collect()
    }

    #[test]
    fn signature_checksum_is_content_sensitive_and_json_stable() {
        let sigs = sample_signatures();
        let c = signature_checksum(&sigs[0]);
        let json = serde_json::to_string(&sigs[0]).unwrap();
        let back: FunctionSignature = serde_json::from_str(&json).unwrap();
        assert_eq!(back, sigs[0], "JSON round-trip preserves the signature");
        assert_eq!(signature_checksum(&back), c);

        let mut tampered = sigs[0].clone();
        tampered.q[7] ^= 1;
        assert_ne!(signature_checksum(&tampered), c);
        let mut rehashed = sigs[0].clone();
        rehashed.minhash[3] ^= 1;
        assert_ne!(signature_checksum(&rehashed), c);
    }

    #[test]
    fn roundtrip_preserves_signatures() {
        let dir = std::env::temp_dir().join(format!("scanhub-sig-rt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let reg = MetricsRegistry::new();
        let lane = SignatureIndex::with_registry(&reg);
        let bin = store_binary();
        let sigs = sample_signatures();
        for (i, sig) in sigs.iter().enumerate() {
            lane.insert(ArtifactKey::for_function(&bin, i), sig.clone());
        }
        lane.save(&dir).unwrap();

        let reloaded = SignatureIndex::with_registry(&MetricsRegistry::new());
        reloaded.load(&dir).unwrap();
        assert_eq!(reloaded.entries(), sigs.len() as u64);
        assert_eq!(reloaded.quarantined.get(), 0, "a clean index quarantines nothing");
        for (i, sig) in sigs.iter().enumerate() {
            let got = reloaded.lookup(ArtifactKey::for_function(&bin, i)).unwrap();
            assert_eq!(&*got, sig);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tampered_signature_evicted_on_load() {
        let dir = std::env::temp_dir().join(format!("scanhub-sig-tamper-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let lane = SignatureIndex::with_registry(&MetricsRegistry::new());
        let bin = store_binary();
        let sigs = sample_signatures();
        for (i, sig) in sigs.iter().enumerate() {
            lane.insert(ArtifactKey::for_function(&bin, i), sig.clone());
        }
        lane.save(&dir).unwrap();

        let path = dir.join(SIG_INDEX_FILE);
        let mut doc: PersistedSigIndex =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        doc.signatures.values_mut().next().unwrap().checksum ^= 1;
        std::fs::write(&path, serde_json::to_string(&doc).unwrap()).unwrap();

        let reloaded = SignatureIndex::with_registry(&MetricsRegistry::new());
        reloaded.load(&dir).unwrap();
        assert_eq!(reloaded.entries(), sigs.len() as u64 - 1, "only the tampered entry evicted");
        assert_eq!(reloaded.quarantined.get(), 1);
        assert!(reloaded.quarantine_records()[0].contains("checksum mismatch"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_schema_discarded_and_garbage_quarantined_whole() {
        let dir = std::env::temp_dir().join(format!("scanhub-sig-stale-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let lane = SignatureIndex::with_registry(&MetricsRegistry::new());
        let bin = store_binary();
        lane.insert(ArtifactKey::for_function(&bin, 0), sample_signatures()[0].clone());
        lane.save(&dir).unwrap();

        let path = dir.join(SIG_INDEX_FILE);
        let json = std::fs::read_to_string(&path).unwrap();
        let stale = json.replacen(&format!("\"schema\":{SCHEMA_VERSION}"), "\"schema\":1", 1);
        assert_ne!(json, stale, "schema field rewritten");
        std::fs::write(&path, stale).unwrap();
        let reloaded = SignatureIndex::with_registry(&MetricsRegistry::new());
        reloaded.load(&dir).unwrap();
        assert_eq!(reloaded.entries(), 0, "stale signatures are discarded");
        assert!(reloaded.quarantine_records()[0].contains("stale schema"));

        std::fs::write(&path, b"{ not json \xff").unwrap();
        let garbage = SignatureIndex::with_registry(&MetricsRegistry::new());
        garbage.load(&dir).unwrap();
        assert_eq!(garbage.entries(), 0);
        assert!(garbage.quarantine_records()[0].contains("unparseable"));
        assert!(dir.join(format!("{SIG_INDEX_FILE}.quarantined")).exists());
        assert!(!path.exists(), "the bad file was moved aside");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_file_loads_empty() {
        let lane = SignatureIndex::with_registry(&MetricsRegistry::new());
        lane.load(Path::new("/definitely/not/a/cache/dir")).unwrap();
        assert_eq!(lane.entries(), 0);
        assert!(lane.quarantine_records().is_empty());
    }
}
