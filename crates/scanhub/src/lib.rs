//! # patchecko-scanhub — the persistent scan service
//!
//! The one-shot pipeline in `patchecko-core` re-disassembles every
//! function, re-extracts all 48 Table-I features, and classifies pairs on
//! every invocation. At fleet scale — many CVEs against many firmware
//! images, most functions byte-identical between image revisions — that
//! repeated work dominates. This crate turns the pipeline into a reusable
//! service:
//!
//! * [`key`] — content-addressed [`ArtifactKey`]s: a stable 128-bit hash
//!   of a function's code bytes, architecture, extractor-relevant record
//!   metadata, and the feature-schema version;
//! * [`store`] — the sharded [`ArtifactStore`] caching
//!   [`StaticFeatures`](patchecko_core::features::StaticFeatures) +
//!   [`CfgSummary`](disasm::CfgSummary) per key, with hit/miss/extraction
//!   counters and an on-disk JSON layer;
//! * [`dynstore`] — the store's dynamic lane: cached execution-environment
//!   sets and per-function dynamic profiles, so a warm re-audit performs
//!   zero VM executions (the store implements
//!   [`DynProfileSource`](patchecko_core::dynsource::DynProfileSource));
//! * [`index`] — the store's signature lane: persistent per-function
//!   retrieval signatures behind the sub-linear candidate pre-filter
//!   (`--retrieval topk`), populated incrementally as binaries are
//!   scanned;
//! * [`namespace`] — per-tenant [`TenantView`]s over one shared store:
//!   content keys are relocated by a tenant salt so co-resident tenants
//!   (the scan daemon's clients) never observe each other's artifacts;
//! * [`schedule`] — the (image × CVE × basis) job scheduler over the
//!   shared persistent worker pool ([`neural::pool`]), with per-job
//!   wall-clock budgets, timing, and graceful failure records;
//! * [`hub`] — [`ScanHub`], binding a trained
//!   [`Patchecko`](patchecko_core::pipeline::Patchecko) analyzer to a
//!   store so scans, audits, and batches all reuse cached artifacts.
//!
//! ## Example
//!
//! ```no_run
//! use patchecko_core::pipeline::{Basis, Patchecko, PipelineConfig};
//! use patchecko_scanhub::{schedule, ScanHub};
//!
//! # fn main() -> std::io::Result<()> {
//! # let detector: patchecko_core::detector::Detector = unimplemented!();
//! use std::sync::Arc;
//! let hub = Arc::new(ScanHub::with_cache_dir(
//!     Patchecko::new(detector, PipelineConfig::default()),
//!     "/var/cache/patchecko",
//! )?);
//! let db = Arc::new(corpus::build_vulndb(0, 1));
//! let images = Arc::new(vec![/* loaded FirmwareImages */]);
//! let jobs = schedule::full_schedule(images.len(), &db, &[Basis::Vulnerable]);
//! let report = hub.batch_audit(&images, &db, &jobs);
//! println!("{} jobs, cache {}", report.records.len(), report.cache);
//! hub.persist()?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dynstore;
pub mod hub;
pub mod index;
pub mod key;
pub mod namespace;
pub mod schedule;
pub mod store;
#[cfg(test)]
pub(crate) mod testfix;

pub use dynstore::{env_set_checksum, profile_checksum, DYN_CACHE_FILE};
pub use hub::{BatchReport, ScanHub};
pub use index::{signature_checksum, SignatureIndex, SIG_INDEX_FILE};
pub use key::{tenant_salt, ArtifactKey, SCHEMA_VERSION};
pub use namespace::TenantView;
pub use schedule::{
    full_schedule, run_jobs, run_jobs_with, FaultHook, JobOutcome, JobRecord, JobSpec, RetryPolicy,
};
pub use store::{artifact_checksum, Artifact, ArtifactStore, CacheStats};
