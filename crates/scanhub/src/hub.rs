//! The scan service: a trained analyzer bound to an artifact store.
//!
//! `ScanHub` is the long-lived object a deployment keeps between requests.
//! Every static-stage feature lookup — target functions, reference
//! variants, the differential engine's three-way comparison — routes
//! through the content-addressed store, so the first scan of an image pays
//! for disassembly and feature extraction once and every later scan (new
//! CVE, other basis, re-audit after reboot via the on-disk layer) reuses
//! the artifacts. The dynamic stage routes through the store's dynamic
//! lane the same way ([`ScanHub::dyn_source`]): environment sets and
//! per-function dynamic profiles are cached by content, so a warm
//! re-audit performs zero VM executions. Scan entry points return typed [`ScanError`]s rather
//! than panicking; batch scheduling retries transient failures per the
//! hub's [`RetryPolicy`].

use crate::namespace::TenantView;
use crate::schedule::{self, FaultHook, JobRecord, JobSpec, RetryPolicy};
use crate::store::{ArtifactStore, CacheStats};
use corpus::vulndb::{DbEntry, VulnDb};
use fwbin::format::Binary;
use fwbin::FirmwareImage;
use patchecko_core::cancel::CancelToken;
use patchecko_core::differential::DifferentialConfig;
use patchecko_core::dynsource::DynProfileSource;
use patchecko_core::error::ScanError;
use patchecko_core::features::StaticFeatures;
use patchecko_core::pipeline::{Basis, CveAnalysis, ImageAnalysis, Patchecko, StaticScan};
use patchecko_core::report::AuditReport;
use patchecko_core::stream::{StreamScanReport, WorkingSet};
use scope::{MetricsRegistry, TelemetrySnapshot};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// The persistent scan service.
pub struct ScanHub {
    /// The trained analyzer (detector + pipeline settings).
    pub analyzer: Patchecko,
    // Behind `Arc` so the store can also serve as the pipeline's shared
    // `Arc<dyn DynProfileSource>` (see [`ScanHub::dyn_source`]).
    store: Arc<ArtifactStore>,
    cache_dir: Option<PathBuf>,
    retry: RetryPolicy,
    fault_hook: Option<Arc<FaultHook>>,
}

impl ScanHub {
    /// A hub with a fresh in-memory store (and a fresh private metrics
    /// registry — see [`ScanHub::with_registry`]).
    pub fn new(analyzer: Patchecko) -> ScanHub {
        ScanHub {
            analyzer,
            store: Arc::new(ArtifactStore::new()),
            cache_dir: None,
            retry: RetryPolicy::default(),
            fault_hook: None,
        }
    }

    /// A hub whose cache and scheduler counters record into `registry`.
    /// The CLI passes `scope::global_shared()` here so the whole
    /// command's telemetry — cache counters, scheduler counters, stage
    /// spans — lands in one registry and prints as one table.
    pub fn with_registry(analyzer: Patchecko, registry: Arc<MetricsRegistry>) -> ScanHub {
        ScanHub {
            analyzer,
            store: Arc::new(ArtifactStore::with_registry(registry)),
            cache_dir: None,
            retry: RetryPolicy::default(),
            fault_hook: None,
        }
    }

    /// A hub whose store persists under `dir`: existing artifacts are
    /// loaded now, and [`ScanHub::persist`] writes back. Corrupt cache
    /// contents are quarantined during the load (see
    /// [`ArtifactStore::load`]), not propagated as errors.
    ///
    /// # Errors
    /// Propagates filesystem errors from reading the cache directory.
    pub fn with_cache_dir(analyzer: Patchecko, dir: impl Into<PathBuf>) -> std::io::Result<ScanHub> {
        ScanHub::with_cache_dir_and_registry(analyzer, dir, Arc::new(MetricsRegistry::new()))
    }

    /// [`ScanHub::with_cache_dir`] recording telemetry into `registry`.
    ///
    /// # Errors
    /// Propagates filesystem errors from reading the cache directory.
    pub fn with_cache_dir_and_registry(
        analyzer: Patchecko,
        dir: impl Into<PathBuf>,
        registry: Arc<MetricsRegistry>,
    ) -> std::io::Result<ScanHub> {
        let dir = dir.into();
        let store = Arc::new(ArtifactStore::load_with_registry(&dir, registry)?);
        Ok(ScanHub {
            analyzer,
            store,
            cache_dir: Some(dir),
            retry: RetryPolicy::default(),
            fault_hook: None,
        })
    }

    /// A hub around an *injected* store. This is the scan daemon's
    /// constructor: the daemon loads/owns the store itself (so it can
    /// also hand out per-tenant views of it) and tells the hub where
    /// [`ScanHub::persist`] should write (`None` disables persistence).
    pub fn with_store(
        analyzer: Patchecko,
        store: Arc<ArtifactStore>,
        cache_dir: Option<PathBuf>,
    ) -> ScanHub {
        ScanHub { analyzer, store, cache_dir, retry: RetryPolicy::default(), fault_hook: None }
    }

    /// The registry the hub's cache and scheduler counters live in.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        self.store.registry()
    }

    /// Replace the batch retry policy.
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> ScanHub {
        self.retry = retry;
        self
    }

    /// The batch retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Install a pre-attempt fault hook (chaos testing seam — see
    /// [`schedule::FaultHook`]). Production deployments leave this unset.
    pub fn with_fault_hook(mut self, hook: Arc<FaultHook>) -> ScanHub {
        self.fault_hook = Some(hook);
        self
    }

    /// The artifact store.
    pub fn store(&self) -> &ArtifactStore {
        &self.store
    }

    /// The store viewed as the pipeline's dynamic-profile source: cached
    /// environment sets and profiles, live fuzzing/execution on miss.
    /// This is what makes a warm re-audit perform zero VM executions.
    pub fn dyn_source(&self) -> Arc<dyn DynProfileSource> {
        Arc::clone(&self.store) as Arc<dyn DynProfileSource>
    }

    /// Current cache counters.
    pub fn stats(&self) -> CacheStats {
        self.store.stats()
    }

    /// Write the store to the configured cache directory (no-op without
    /// one). Returns whether anything was written.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn persist(&self) -> std::io::Result<bool> {
        match &self.cache_dir {
            Some(dir) => {
                self.store.save(dir)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Pre-extract artifacts for every function of `image`; returns the
    /// function count visited.
    ///
    /// # Errors
    /// Returns the first extraction failure.
    pub fn warm_image(&self, image: &FirmwareImage) -> Result<usize, ScanError> {
        self.store.warm_image(image)
    }

    /// Static-stage scan of one library through the cache.
    ///
    /// # Errors
    /// Returns extraction failures from the target or reference builds.
    pub fn scan_library(
        &self,
        bin: &Binary,
        entry: &DbEntry,
        basis: Basis,
    ) -> Result<StaticScan, ScanError> {
        let references = Patchecko::reference_feature_set_with(entry, basis, &*self.store)?;
        self.analyzer.scan_library_with(bin, &references, &*self.store)
    }

    /// Ingest a stream of compiled units into the cache lanes (features
    /// plus retrieval signatures), holding at most `working_set` units in
    /// memory at any point. Later scans of the same content are served
    /// from the cache. Returns `(units, functions, peak_live)` — the peak
    /// comes from the same live-entry accounting as
    /// [`Patchecko::scan_stream`], so boundedness is provable, not
    /// inferred from RSS.
    ///
    /// # Errors
    /// Returns the first extraction failure; units already ingested stay
    /// cached.
    pub fn ingest_stream<I>(
        &self,
        units: I,
        working_set: usize,
    ) -> Result<(usize, usize, usize), ScanError>
    where
        I: IntoIterator<Item = Binary>,
    {
        use patchecko_core::pipeline::FeatureSource;
        let _span = scope::SpanGuard::enter("stream_ingest");
        let working_set = working_set.max(1);
        let tracker = WorkingSet::new();
        let mut iter = units.into_iter();
        let mut n_units = 0usize;
        let mut n_functions = 0usize;
        loop {
            let batch: Vec<_> = iter
                .by_ref()
                .take(working_set)
                .map(|bin| (bin, tracker.acquire()))
                .collect();
            if batch.is_empty() {
                break;
            }
            for (bin, permit) in batch {
                let feats = self.store.features_all(&bin)?;
                let _sigs = self.store.signatures_all(&bin, &feats);
                n_units += 1;
                n_functions += feats.len();
                drop(bin);
                drop(permit);
            }
        }
        Ok((n_units, n_functions, tracker.peak()))
    }

    /// Streaming scan through the cache: scan every unit of a stream
    /// against `references` with a bounded working set. Thin wrapper over
    /// [`Patchecko::scan_stream_with`] with the hub's store as the
    /// feature source, so previously ingested units skip extraction.
    ///
    /// # Errors
    /// Propagates the first extraction failure.
    pub fn scan_stream<I>(
        &self,
        units: I,
        references: &[StaticFeatures],
        working_set: usize,
    ) -> Result<StreamScanReport, ScanError>
    where
        I: IntoIterator<Item = Binary>,
    {
        self.analyzer.scan_stream_with(units, references, working_set, &*self.store)
    }

    /// Full hybrid analysis of one library through the cache.
    ///
    /// # Errors
    /// Returns static-stage failures; dynamic-stage trouble degrades the
    /// analysis instead (see [`patchecko_core::pipeline::Confidence`]).
    pub fn analyze_library(
        &self,
        bin: &Binary,
        entry: &DbEntry,
        basis: Basis,
    ) -> Result<CveAnalysis, ScanError> {
        self.analyzer.analyze_library_with(bin, entry, basis, &*self.store, &self.dyn_source())
    }

    /// Full hybrid analysis of a whole image through the cache.
    ///
    /// # Errors
    /// Returns static-stage failures for any library in the image.
    pub fn scan_image(
        &self,
        image: &FirmwareImage,
        entry: &DbEntry,
        basis: Basis,
    ) -> Result<ImageAnalysis, ScanError> {
        self.analyzer.analyze_image_with(image, entry, basis, &*self.store, &self.dyn_source())
    }

    /// `tenant`'s view of this hub's store: the full feature/dyn-profile
    /// surface with every cache key relocated into the tenant's
    /// namespace. The empty tenant is the identity view.
    pub fn tenant_view(&self, tenant: &str) -> TenantView {
        TenantView::new(Arc::clone(&self.store), tenant)
    }

    /// [`ScanHub::scan_image`] through `tenant`'s cache namespace.
    ///
    /// # Errors
    /// Returns static-stage failures for any library in the image.
    pub fn scan_image_tenant(
        &self,
        image: &FirmwareImage,
        entry: &DbEntry,
        basis: Basis,
        tenant: &str,
    ) -> Result<ImageAnalysis, ScanError> {
        self.scan_image_tenant_ctl(image, entry, basis, tenant, None, &CancelToken::unbounded())
    }

    /// [`ScanHub::scan_image_tenant`] under service control: an optional
    /// dynamic-profile source override (the scan daemon's circuit breaker
    /// substitutes a refusing source to force static-only degradation)
    /// and a cancellation token checked between pipeline stages.
    ///
    /// # Errors
    /// [`ScanError::DeadlineExceeded`] on token expiry; otherwise as for
    /// [`ScanHub::scan_image_tenant`].
    pub fn scan_image_tenant_ctl(
        &self,
        image: &FirmwareImage,
        entry: &DbEntry,
        basis: Basis,
        tenant: &str,
        dynsrc_override: Option<Arc<dyn DynProfileSource>>,
        cancel: &CancelToken,
    ) -> Result<ImageAnalysis, ScanError> {
        let view = Arc::new(self.tenant_view(tenant));
        let dynsrc =
            dynsrc_override.unwrap_or_else(|| Arc::clone(&view) as Arc<dyn DynProfileSource>);
        self.analyzer.analyze_image_ctl(image, entry, basis, &*view, &dynsrc, cancel)
    }

    /// [`ScanHub::audit`] through `tenant`'s cache namespace: the same
    /// shared warm store serves the request, but every artifact the audit
    /// touches lives under the tenant's keys.
    ///
    /// # Errors
    /// As for [`ScanHub::audit`].
    pub fn audit_tenant(
        &self,
        db: &VulnDb,
        image: &FirmwareImage,
        diff: &DifferentialConfig,
        tenant: &str,
    ) -> Result<AuditReport, ScanError> {
        self.audit_tenant_ctl(db, image, diff, tenant, None, &CancelToken::unbounded())
    }

    /// [`ScanHub::audit_tenant`] under service control: an optional
    /// dynamic-profile source override (circuit breaker → static-only
    /// degraded findings) and a cancellation token checked per CVE and
    /// between per-library stages. The tenant's *static* cache namespace
    /// is served normally either way, so a breaker-tripped tenant still
    /// gets warm static artifacts and its dynamic lane is left untouched
    /// rather than poisoned.
    ///
    /// # Errors
    /// [`ScanError::DeadlineExceeded`] on token expiry; otherwise as for
    /// [`ScanHub::audit_tenant`].
    pub fn audit_tenant_ctl(
        &self,
        db: &VulnDb,
        image: &FirmwareImage,
        diff: &DifferentialConfig,
        tenant: &str,
        dynsrc_override: Option<Arc<dyn DynProfileSource>>,
        cancel: &CancelToken,
    ) -> Result<AuditReport, ScanError> {
        let view = Arc::new(self.tenant_view(tenant));
        let dynsrc =
            dynsrc_override.unwrap_or_else(|| Arc::clone(&view) as Arc<dyn DynProfileSource>);
        patchecko_core::eval::audit_image_ctl(
            &self.analyzer,
            db,
            image,
            diff,
            &*view,
            &dynsrc,
            cancel,
        )
    }

    /// Whole-image audit against the vulnerability database through the
    /// cache — [`patchecko_core::eval::audit_image`] with every static
    /// feature served by the store.
    ///
    /// # Errors
    /// Returns transient failures (the caller may retry); permanent
    /// per-CVE failures are recorded inside the report instead.
    pub fn audit(
        &self,
        db: &VulnDb,
        image: &FirmwareImage,
        diff: &DifferentialConfig,
    ) -> Result<AuditReport, ScanError> {
        patchecko_core::eval::audit_image_with(
            &self.analyzer,
            db,
            image,
            diff,
            &*self.store,
            &self.dyn_source(),
        )
    }

    /// [`ScanHub::audit`], with the report's `telemetry` field filled by
    /// the movement of this hub's registry over the audit (merged with
    /// the global registry's movement — stage spans — when the hub uses a
    /// private registry). Plain [`ScanHub::audit`] leaves telemetry
    /// `None`, keeping warm/cold report bytes identical for callers that
    /// diff them.
    ///
    /// # Errors
    /// As for [`ScanHub::audit`].
    pub fn audit_with_telemetry(
        &self,
        db: &VulnDb,
        image: &FirmwareImage,
        diff: &DifferentialConfig,
    ) -> Result<AuditReport, ScanError> {
        let before = self.telemetry_snapshot();
        let mut report = self.audit(db, image, diff)?;
        report.telemetry = Some(self.telemetry_snapshot().since(&before));
        Ok(report)
    }

    /// One snapshot covering this hub's registry and — when the hub's
    /// registry is *not* already the global one — the global registry,
    /// where stage spans and library counters record. The `Arc::ptr_eq`
    /// guard prevents double-counting when the CLI wires the hub to
    /// `scope::global_shared()`.
    pub fn telemetry_snapshot(&self) -> TelemetrySnapshot {
        let own = self.registry().snapshot();
        if Arc::ptr_eq(self.registry(), &scope::global_shared()) {
            own
        } else {
            own.merged(&scope::snapshot())
        }
    }

    /// Run a batch of scan jobs across the shared persistent worker pool
    /// (the same pool the GEMM kernels use — no per-batch thread
    /// spawning). The worker count honours `PipelineConfig::threads`
    /// ([`patchecko_core::pipeline::PipelineConfig::effective_threads`]).
    /// The hub, images, and database are taken behind `Arc` because pool
    /// tasks are `'static`. Transient job failures are retried per the
    /// hub's [`RetryPolicy`]; no job failure or panic propagates out of
    /// the batch.
    pub fn batch_audit(
        self: &Arc<Self>,
        images: &Arc<Vec<FirmwareImage>>,
        db: &Arc<VulnDb>,
        jobs: &[JobSpec],
    ) -> BatchReport {
        let _span = scope::SpanGuard::enter("batch_audit")
            .with_detail(format!("{} jobs / {} images", jobs.len(), images.len()));
        let started = Instant::now();
        let before = self.stats();
        let telemetry_before = self.telemetry_snapshot();
        let threads = self.analyzer.config.effective_threads();
        let records = schedule::run_jobs_with(
            self,
            images,
            db,
            jobs,
            threads,
            self.retry,
            self.fault_hook.clone(),
        );
        let seconds = started.elapsed().as_secs_f64();
        let functions: usize = images.iter().map(|i| i.total_functions()).sum();
        BatchReport {
            records,
            seconds,
            threads,
            images: images.len(),
            functions,
            cache: self.stats(),
            cache_delta: self.stats().since(&before),
            telemetry: Some(self.telemetry_snapshot().since(&telemetry_before)),
        }
    }
}

/// The outcome of one [`ScanHub::batch_audit`] run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchReport {
    /// Per-job records, in schedule order.
    pub records: Vec<JobRecord>,
    /// Batch wall-clock seconds.
    pub seconds: f64,
    /// Worker threads used.
    pub threads: usize,
    /// Images in the batch.
    pub images: usize,
    /// Total functions across those images.
    pub functions: usize,
    /// Store counters after the batch.
    pub cache: CacheStats,
    /// Counter movement caused by the batch alone.
    pub cache_delta: CacheStats,
    /// Registry movement caused by the batch alone: scheduler counters,
    /// cache counters, and stage-span timings (see
    /// [`ScanHub::telemetry_snapshot`]). `None` only in legacy persisted
    /// reports.
    #[serde(default)]
    pub telemetry: Option<scope::TelemetrySnapshot>,
}

impl BatchReport {
    /// Completed-job count.
    pub fn completed(&self) -> usize {
        self.records.iter().filter(|r| r.is_ok()).count()
    }

    /// Failed-job count. Failures are permanent by construction: the
    /// scheduler already retried every transient error.
    pub fn failed(&self) -> usize {
        self.records.len() - self.completed()
    }

    /// Records of jobs that failed permanently.
    pub fn failures(&self) -> impl Iterator<Item = &JobRecord> {
        self.records.iter().filter(|r| !r.is_ok())
    }

    /// Jobs that completed only after retries.
    pub fn retried(&self) -> impl Iterator<Item = &JobRecord> {
        self.records.iter().filter(|r| r.is_ok() && r.attempts > 1)
    }

    /// One line per failed job: `image/CVE/basis: error (after N attempts)`.
    pub fn failure_summary(&self) -> String {
        let mut out = String::new();
        for r in self.failures() {
            let error = r.error().map(ScanError::to_string).unwrap_or_default();
            out.push_str(&format!(
                "image {} / {} / {:?}: {} (after {} attempt{})\n",
                r.spec.image,
                r.spec.cve,
                r.spec.basis,
                error,
                r.attempts,
                if r.attempts == 1 { "" } else { "s" }
            ));
        }
        out
    }

    /// Jobs finished per wall-clock second.
    pub fn jobs_per_second(&self) -> f64 {
        if self.seconds > 0.0 {
            self.records.len() as f64 / self.seconds
        } else {
            0.0
        }
    }

    /// Sum of per-job seconds (CPU-side throughput view: with N workers
    /// this exceeds wall-clock by up to N×).
    pub fn job_seconds(&self) -> f64 {
        self.records.iter().map(|r| r.seconds).sum()
    }
}
