//! The scan service: a trained analyzer bound to an artifact store.
//!
//! `ScanHub` is the long-lived object a deployment keeps between requests.
//! Every static-stage feature lookup — target functions, reference
//! variants, the differential engine's three-way comparison — routes
//! through the content-addressed store, so the first scan of an image pays
//! for disassembly and feature extraction once and every later scan (new
//! CVE, other basis, re-audit after reboot via the on-disk layer) reuses
//! the artifacts.

use crate::schedule::{self, JobRecord, JobSpec};
use crate::store::{ArtifactStore, CacheStats};
use corpus::vulndb::{DbEntry, VulnDb};
use fwbin::format::Binary;
use fwbin::FirmwareImage;
use patchecko_core::differential::DifferentialConfig;
use patchecko_core::pipeline::{Basis, CveAnalysis, ImageAnalysis, Patchecko, StaticScan};
use patchecko_core::report::AuditReport;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::time::Instant;

/// The persistent scan service.
pub struct ScanHub {
    /// The trained analyzer (detector + pipeline settings).
    pub analyzer: Patchecko,
    store: ArtifactStore,
    cache_dir: Option<PathBuf>,
}

impl ScanHub {
    /// A hub with a fresh in-memory store.
    pub fn new(analyzer: Patchecko) -> ScanHub {
        ScanHub { analyzer, store: ArtifactStore::new(), cache_dir: None }
    }

    /// A hub whose store persists under `dir`: existing artifacts are
    /// loaded now, and [`ScanHub::persist`] writes back.
    ///
    /// # Errors
    /// Propagates filesystem/parse errors from loading the cache.
    pub fn with_cache_dir(analyzer: Patchecko, dir: impl Into<PathBuf>) -> std::io::Result<ScanHub> {
        let dir = dir.into();
        let store = ArtifactStore::load(&dir)?;
        Ok(ScanHub { analyzer, store, cache_dir: Some(dir) })
    }

    /// The artifact store.
    pub fn store(&self) -> &ArtifactStore {
        &self.store
    }

    /// Current cache counters.
    pub fn stats(&self) -> CacheStats {
        self.store.stats()
    }

    /// Write the store to the configured cache directory (no-op without
    /// one). Returns whether anything was written.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn persist(&self) -> std::io::Result<bool> {
        match &self.cache_dir {
            Some(dir) => {
                self.store.save(dir)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Pre-extract artifacts for every function of `image`; returns the
    /// function count visited.
    pub fn warm_image(&self, image: &FirmwareImage) -> usize {
        self.store.warm_image(image)
    }

    /// Static-stage scan of one library through the cache.
    pub fn scan_library(&self, bin: &Binary, entry: &DbEntry, basis: Basis) -> StaticScan {
        let references = Patchecko::reference_feature_set_with(entry, basis, &self.store);
        self.analyzer.scan_library_with(bin, &references, &self.store)
    }

    /// Full hybrid analysis of one library through the cache.
    pub fn analyze_library(&self, bin: &Binary, entry: &DbEntry, basis: Basis) -> CveAnalysis {
        self.analyzer.analyze_library_with(bin, entry, basis, &self.store)
    }

    /// Full hybrid analysis of a whole image through the cache.
    pub fn scan_image(&self, image: &FirmwareImage, entry: &DbEntry, basis: Basis) -> ImageAnalysis {
        self.analyzer.analyze_image_with(image, entry, basis, &self.store)
    }

    /// Whole-image audit against the vulnerability database through the
    /// cache — [`patchecko_core::eval::audit_image`] with every static
    /// feature served by the store.
    pub fn audit(&self, db: &VulnDb, image: &FirmwareImage, diff: &DifferentialConfig) -> AuditReport {
        patchecko_core::eval::audit_image_with(&self.analyzer, db, image, diff, &self.store)
    }

    /// Run a batch of scan jobs across the shared persistent worker pool
    /// (the same pool the GEMM kernels use — no per-batch thread
    /// spawning). The worker count honours `PipelineConfig::threads`
    /// ([`patchecko_core::pipeline::PipelineConfig::effective_threads`]).
    /// The hub, images, and database are taken behind `Arc` because pool
    /// tasks are `'static`.
    pub fn batch_audit(
        self: &std::sync::Arc<Self>,
        images: &std::sync::Arc<Vec<FirmwareImage>>,
        db: &std::sync::Arc<VulnDb>,
        jobs: &[JobSpec],
    ) -> BatchReport {
        let started = Instant::now();
        let before = self.stats();
        let threads = self.analyzer.config.effective_threads();
        let records = schedule::run_jobs(self, images, db, jobs, threads);
        let seconds = started.elapsed().as_secs_f64();
        let functions: usize = images.iter().map(|i| i.total_functions()).sum();
        BatchReport {
            records,
            seconds,
            threads,
            images: images.len(),
            functions,
            cache: self.stats(),
            cache_delta: self.stats().since(&before),
        }
    }
}

/// The outcome of one [`ScanHub::batch_audit`] run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchReport {
    /// Per-job records, in schedule order.
    pub records: Vec<JobRecord>,
    /// Batch wall-clock seconds.
    pub seconds: f64,
    /// Worker threads used.
    pub threads: usize,
    /// Images in the batch.
    pub images: usize,
    /// Total functions across those images.
    pub functions: usize,
    /// Store counters after the batch.
    pub cache: CacheStats,
    /// Counter movement caused by the batch alone.
    pub cache_delta: CacheStats,
}

impl BatchReport {
    /// Completed-job count.
    pub fn completed(&self) -> usize {
        self.records.iter().filter(|r| r.is_ok()).count()
    }

    /// Failed-job count.
    pub fn failed(&self) -> usize {
        self.records.len() - self.completed()
    }

    /// Jobs finished per wall-clock second.
    pub fn jobs_per_second(&self) -> f64 {
        if self.seconds > 0.0 {
            self.records.len() as f64 / self.seconds
        } else {
            0.0
        }
    }

    /// Sum of per-job seconds (CPU-side throughput view: with N workers
    /// this exceeds wall-clock by up to N×).
    pub fn job_seconds(&self) -> f64 {
        self.records.iter().map(|r| r.seconds).sum()
    }
}
