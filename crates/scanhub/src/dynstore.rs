//! The dynamic lane of the artifact store: cached execution-environment
//! sets and dynamic profiles.
//!
//! The dynamic stage is the pipeline's dominant cost (Table VII: hours of
//! on-device execution against seconds of static scanning), and both of
//! its products are pure functions of content — an environment set of
//! (reference code, fuzzer knobs, interpreter limits), a profile of
//! (target code, environment-set contents, interpreter limits). This
//! module caches both under [`ArtifactKey`]s
//! ([`ArtifactKey::for_env_set`] / [`ArtifactKey::for_dyn_profile`]), so
//! a warm re-audit replays cached profiles and performs **zero** VM
//! executions (`vm.executions` stays flat; the `dyncache.*` counters show
//! the lane working).
//!
//! The lane persists to `dyn_artifacts.json` next to the static lane's
//! `artifacts.json`, with the same hardening: per-entry structural
//! checksums, whole-file quarantine of unparseable documents, stale-schema
//! discard, and temp-file + rename saves. A quarantined or missing
//! dynamic entry is just a miss — the store falls back to live fuzzing
//! and execution internally and never surfaces cache damage as an error.

use crate::key::{ArtifactKey, Fnv2, SCHEMA_VERSION};
use parking_lot::Mutex;
use patchecko_core::dynsource::DynProfile;
use scope::{Counter, MetricsRegistry};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::path::Path;
use std::sync::Arc;
use vm::env::{ArgSpec, ExecEnv};

/// Shard count of the in-memory maps (matches the static lane).
const NUM_SHARDS: usize = 16;

/// On-disk file name of the dynamic lane.
pub const DYN_CACHE_FILE: &str = "dyn_artifacts.json";

/// Structural checksum of an environment set: FNV-1a over every
/// environment's full contents (input bytes, argument specs with exact
/// float bits, global overrides). Length-prefixed per field, so
/// truncation or field-boundary shifts are detected, and float bits go in
/// via `to_bits` — immune to JSON round-trip concerns.
pub fn env_set_checksum(envs: &[ExecEnv]) -> u64 {
    let mut h = Fnv2::new();
    h.update_u64(envs.len() as u64);
    for env in envs {
        h.update_u64(env.input.len() as u64);
        h.update(&env.input);
        h.update_u64(env.args.len() as u64);
        for arg in &env.args {
            match arg {
                ArgSpec::InputPtr => h.update(&[1]),
                ArgSpec::Int(v) => {
                    h.update(&[2]);
                    h.update_u64(*v as u64);
                }
                ArgSpec::Float(v) => {
                    h.update(&[3]);
                    h.update_u64(v.to_bits());
                }
            }
        }
        h.update_u64(env.global_overrides.len() as u64);
        for &(gid, v) in &env.global_overrides {
            h.update_u64(u64::from(gid));
            h.update_u64(v as u64);
        }
    }
    h.hi
}

/// Structural checksum of a dynamic profile: FNV-1a over the ok bits and
/// the exact bit patterns of every per-environment feature vector.
pub fn profile_checksum(p: &DynProfile) -> u64 {
    let mut h = Fnv2::new();
    h.update_u64(p.ok.len() as u64);
    for &b in &p.ok {
        h.update(&[b as u8]);
    }
    h.update_u64(p.features.len() as u64);
    for f in &p.features {
        for &x in f.as_slice() {
            h.update_u64(x.to_bits());
        }
    }
    h.hi
}

/// One persisted environment set, checksummed like the static lane's
/// entries.
#[derive(Serialize, Deserialize)]
pub(crate) struct PersistedEnvSet {
    /// [`env_set_checksum`] of `envs` at save time.
    pub(crate) checksum: u64,
    /// The cached environments, in generation order.
    pub(crate) envs: Vec<ExecEnv>,
}

/// One persisted dynamic profile.
#[derive(Serialize, Deserialize)]
pub(crate) struct PersistedProfile {
    /// [`profile_checksum`] of `profile` at save time.
    pub(crate) checksum: u64,
    /// The cached profile.
    pub(crate) profile: DynProfile,
}

/// On-disk image of the dynamic lane (one JSON document per cache dir).
#[derive(Serialize, Deserialize)]
pub(crate) struct PersistedDynStore {
    /// Schema version the entries were produced under.
    pub(crate) schema: u32,
    /// Hex env-set key → checksummed environment set.
    pub(crate) envsets: BTreeMap<String, PersistedEnvSet>,
    /// Hex profile key → checksummed dynamic profile.
    pub(crate) profiles: BTreeMap<String, PersistedProfile>,
}

/// The dynamic lane: sharded maps for environment sets and profiles, with
/// its own counters (`dyncache.hits`, `dyncache.misses`,
/// `dyncache.profiled`, `dyncache.quarantined`) in the owning store's
/// registry.
pub(crate) struct DynLane {
    env_shards: Vec<Mutex<HashMap<ArtifactKey, Arc<Vec<ExecEnv>>>>>,
    prof_shards: Vec<Mutex<HashMap<ArtifactKey, Arc<DynProfile>>>>,
    pub(crate) hits: Counter,
    pub(crate) misses: Counter,
    pub(crate) profiled: Counter,
    pub(crate) quarantined: Counter,
    quarantine_log: Mutex<Vec<String>>,
}

impl DynLane {
    /// An empty lane recording its counters into `registry`.
    pub(crate) fn with_registry(registry: &MetricsRegistry) -> DynLane {
        DynLane {
            env_shards: (0..NUM_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            prof_shards: (0..NUM_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: registry.counter("dyncache.hits"),
            misses: registry.counter("dyncache.misses"),
            profiled: registry.counter("dyncache.profiled"),
            quarantined: registry.counter("dyncache.quarantined"),
            quarantine_log: Mutex::new(Vec::new()),
        }
    }

    /// Record a quarantine event (mirrors the static lane: the offending
    /// entry is never inserted, the counter moves, the detail is kept).
    fn quarantine(&self, detail: String) {
        self.quarantined.inc();
        self.quarantine_log.lock().push(detail);
    }

    /// Details of every dynamic-lane quarantine since construction.
    pub(crate) fn quarantine_records(&self) -> Vec<String> {
        self.quarantine_log.lock().clone()
    }

    /// Resident entries across both maps.
    pub(crate) fn entries(&self) -> u64 {
        let e: usize = self.env_shards.iter().map(|s| s.lock().len()).sum();
        let p: usize = self.prof_shards.iter().map(|s| s.lock().len()).sum();
        (e + p) as u64
    }

    pub(crate) fn lookup_envs(&self, key: ArtifactKey) -> Option<Arc<Vec<ExecEnv>>> {
        let found = self.env_shards[key.shard(NUM_SHARDS)].lock().get(&key).cloned();
        match &found {
            Some(_) => self.hits.inc(),
            None => self.misses.inc(),
        };
        found
    }

    pub(crate) fn insert_envs(&self, key: ArtifactKey, envs: Vec<ExecEnv>) -> Arc<Vec<ExecEnv>> {
        let arc = Arc::new(envs);
        self.env_shards[key.shard(NUM_SHARDS)].lock().insert(key, Arc::clone(&arc));
        arc
    }

    pub(crate) fn lookup_profile(&self, key: ArtifactKey) -> Option<Arc<DynProfile>> {
        let found = self.prof_shards[key.shard(NUM_SHARDS)].lock().get(&key).cloned();
        match &found {
            Some(_) => self.hits.inc(),
            None => self.misses.inc(),
        };
        found
    }

    pub(crate) fn insert_profile(&self, key: ArtifactKey, profile: DynProfile) -> Arc<DynProfile> {
        let arc = Arc::new(profile);
        self.prof_shards[key.shard(NUM_SHARDS)].lock().insert(key, Arc::clone(&arc));
        arc
    }

    /// Write the lane to `dir/dyn_artifacts.json`, temp-file + rename like
    /// the static lane so a crash mid-save can't truncate the document.
    pub(crate) fn save(&self, dir: &Path) -> std::io::Result<()> {
        let mut envsets = BTreeMap::new();
        for shard in &self.env_shards {
            for (k, v) in shard.lock().iter() {
                envsets.insert(
                    k.to_hex(),
                    PersistedEnvSet { checksum: env_set_checksum(v), envs: (**v).clone() },
                );
            }
        }
        let mut profiles = BTreeMap::new();
        for shard in &self.prof_shards {
            for (k, v) in shard.lock().iter() {
                profiles.insert(
                    k.to_hex(),
                    PersistedProfile { checksum: profile_checksum(v), profile: (**v).clone() },
                );
            }
        }
        let doc = PersistedDynStore { schema: SCHEMA_VERSION, envsets, profiles };
        std::fs::create_dir_all(dir)?;
        let json = serde_json::to_string(&doc)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        let tmp = dir.join(format!("{DYN_CACHE_FILE}.tmp.{}", std::process::id()));
        std::fs::write(&tmp, json)?;
        std::fs::rename(&tmp, dir.join(DYN_CACHE_FILE))
    }

    /// Load `dir/dyn_artifacts.json` into this (empty) lane, with the
    /// static lane's trust-nothing policy: missing file → empty lane;
    /// unparseable file → quarantined whole (renamed aside); stale schema
    /// → discarded; invalid key or checksum mismatch → that entry evicted,
    /// the rest still load. A quarantined entry is just a future cache
    /// miss: the store falls back to live execution for it.
    ///
    /// # Errors
    /// Propagates filesystem errors other than `NotFound`.
    pub(crate) fn load(&self, dir: &Path) -> std::io::Result<()> {
        let path = dir.join(DYN_CACHE_FILE);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
            Err(e) => return Err(e),
        };
        let json = match String::from_utf8(bytes) {
            Ok(s) => s,
            Err(_) => {
                let _ = std::fs::rename(&path, dir.join(format!("{DYN_CACHE_FILE}.quarantined")));
                self.quarantine(format!(
                    "dyn cache file {}: unparseable (invalid UTF-8)",
                    path.display()
                ));
                return Ok(());
            }
        };
        let doc: PersistedDynStore = match serde_json::from_str(&json) {
            Ok(doc) => doc,
            Err(e) => {
                let _ = std::fs::rename(&path, dir.join(format!("{DYN_CACHE_FILE}.quarantined")));
                self.quarantine(format!("dyn cache file {}: unparseable ({e})", path.display()));
                return Ok(());
            }
        };
        if doc.schema != SCHEMA_VERSION {
            self.quarantine(format!(
                "dyn cache file {}: stale schema v{} (current v{SCHEMA_VERSION}), {} entries discarded",
                path.display(),
                doc.schema,
                doc.envsets.len() + doc.profiles.len()
            ));
            return Ok(());
        }
        for (hex, entry) in doc.envsets {
            let Some(key) = ArtifactKey::from_hex(&hex) else {
                self.quarantine(format!("dyn envset {hex}: invalid key"));
                continue;
            };
            let expect = env_set_checksum(&entry.envs);
            if entry.checksum != expect {
                self.quarantine(format!(
                    "dyn envset {hex}: checksum mismatch (stored {:#018x}, computed {expect:#018x})",
                    entry.checksum
                ));
                continue;
            }
            self.insert_envs(key, entry.envs);
        }
        for (hex, entry) in doc.profiles {
            let Some(key) = ArtifactKey::from_hex(&hex) else {
                self.quarantine(format!("dyn profile {hex}: invalid key"));
                continue;
            };
            let expect = profile_checksum(&entry.profile);
            if entry.checksum != expect {
                self.quarantine(format!(
                    "dyn profile {hex}: checksum mismatch (stored {:#018x}, computed {expect:#018x})",
                    entry.checksum
                ));
                continue;
            }
            self.insert_profile(key, entry.profile);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_set_checksum_is_content_sensitive_and_json_stable() {
        let envs = vec![
            ExecEnv::for_buffer(vec![1, 2, 3], &[7]),
            ExecEnv {
                input: vec![9; 4],
                args: vec![ArgSpec::InputPtr, ArgSpec::Float(0.1 + 0.2)],
                global_overrides: vec![(2, -5)],
            },
        ];
        let c = env_set_checksum(&envs);
        let json = serde_json::to_string(&envs).unwrap();
        let back: Vec<ExecEnv> = serde_json::from_str(&json).unwrap();
        assert_eq!(env_set_checksum(&back), c, "JSON round-trip preserves the checksum");

        let mut tampered = envs.clone();
        tampered[0].input[1] ^= 1;
        assert_ne!(env_set_checksum(&tampered), c);
        let mut reargued = envs.clone();
        reargued[1].args.pop();
        assert_ne!(env_set_checksum(&reargued), c);
    }

    #[test]
    fn profile_checksum_is_content_sensitive_and_json_stable() {
        let mut f = vm::DynFeatures([0.0; vm::NUM_DYN_FEATURES]);
        f.0[0] = 1.25;
        f.0[3] = -0.000_1;
        let p = DynProfile { ok: vec![true, false], features: vec![f.clone(), f] };
        let c = profile_checksum(&p);
        let json = serde_json::to_string(&p).unwrap();
        let back: DynProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(profile_checksum(&back), c, "JSON round-trip preserves the checksum");

        let mut flipped = p.clone();
        flipped.ok[1] = true;
        assert_ne!(profile_checksum(&flipped), c);
        let mut nudged = p.clone();
        nudged.features[0].0[0] = 1.250_000_001;
        assert_ne!(profile_checksum(&nudged), c);
    }
}
