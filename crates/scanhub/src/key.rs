//! Content-addressed artifact keys.
//!
//! A key identifies everything the static stage derives from one function:
//! its disassembly, recovered CFG, and Table-I feature vector. Those
//! artifacts are fully determined by the function's code bytes, the
//! architecture they decode under, the function-record metadata that feeds
//! the extractor (export flag, frame size), and the binary's no-return
//! import indices (which steer CFG block typing) — so the key hashes
//! exactly those inputs plus the feature-schema version. Two binaries
//! that share a byte-identical function (the common case across firmware
//! revisions of one component) share the cache entry; re-encoding and
//! decoding a binary through the FWB wire format preserves every hashed
//! input, so keys are stable across serialization round-trips.

use fwbin::format::Binary;
use fwbin::isa::Arch;
use vm::exec::VmConfig;
use vm::fuzz::FuzzConfig;

/// Version of the cached-artifact schema. Bump whenever
/// `patchecko_core::features::extract`, [`disasm::CfgSummary`], or the
/// dynamic-lane shapes (`vm::env::ExecEnv`,
/// `patchecko_core::dynsource::DynProfile`) change so stale on-disk
/// caches miss instead of serving wrong vectors.
///
/// v2: the persisted form carries a per-entry structural checksum
/// (`crate::store`), so v1 caches are discarded on load.
///
/// v3: the store grows a dynamic lane (`dyn_artifacts.json` — cached
/// environment sets and dynamic profiles, see `crate::dynstore`); v2
/// static caches are discarded on load rather than mixed with
/// dynamic-lane entries keyed under a different version.
///
/// v4: VM correctness fixes change cached dynamic profiles — `LoadStr`
/// with an out-of-range string id and `FBin` with an integer-only
/// operator now fault (`BadString`/`BadFloatOp`) instead of silently
/// producing offset-0 / `0.0` — and env-set generation became
/// edge-coverage-guided, so cached environment sets shrink. v3 dynamic
/// entries would replay the old semantics; discard them. (The engine
/// choice itself is deliberately NOT keyed: both engines produce
/// bitwise-identical profiles.)
pub const SCHEMA_VERSION: u32 = 4;

/// A 128-bit content hash naming one function's cached artifacts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArtifactKey {
    /// High 64 bits.
    pub hi: u64,
    /// Low 64 bits.
    pub lo: u64,
}

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
const FNV_OFFSET_HI: u64 = 0xcbf2_9ce4_8422_2325;
// Independent second lane: a different non-zero offset basis decorrelates
// the two 64-bit FNV streams enough for a corpus-scale 128-bit name.
const FNV_OFFSET_LO: u64 = 0x6c62_272e_07bb_0142;

pub(crate) struct Fnv2 {
    pub(crate) hi: u64,
    pub(crate) lo: u64,
}

impl Fnv2 {
    pub(crate) fn new() -> Fnv2 {
        Fnv2 { hi: FNV_OFFSET_HI, lo: FNV_OFFSET_LO }
    }

    pub(crate) fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.hi = (self.hi ^ b as u64).wrapping_mul(FNV_PRIME);
            self.lo = (self.lo ^ b.rotate_left(3) as u64).wrapping_mul(FNV_PRIME);
        }
    }

    pub(crate) fn update_u32(&mut self, v: u32) {
        self.update(&v.to_le_bytes());
    }

    pub(crate) fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }
}

fn arch_tag(arch: Arch) -> u8 {
    match arch {
        Arch::X86 => 0,
        Arch::Amd64 => 1,
        Arch::Arm32 => 2,
        Arch::Arm64 => 3,
    }
}

impl ArtifactKey {
    /// Key of function `idx` of `bin`.
    pub fn for_function(bin: &Binary, idx: usize) -> ArtifactKey {
        let rec = &bin.functions[idx];
        let mut h = Fnv2::new();
        h.update_u32(SCHEMA_VERSION);
        h.update(&[arch_tag(bin.arch), rec.exported as u8, rec.n_params]);
        h.update_u32(rec.frame_slots);
        // No-return import indices shape the CFG (ExternNoRet typing).
        let noret = disasm::noreturn_imports(bin);
        h.update_u32(noret.len() as u32);
        for i in noret {
            h.update_u32(i);
        }
        h.update_u32(rec.code.len() as u32);
        h.update(&rec.code);
        ArtifactKey { hi: h.hi, lo: h.lo }
    }

    /// Key of the environment set the dynamic stage derives from
    /// `reference`'s function 0 under `fuzz` and `vm`.
    ///
    /// Hashes the reference-function content key (so a recompiled or
    /// different reference misses), every fuzzer knob (the generated
    /// environments are a pure function of them), and the interpreter
    /// limits (survival filtering executes the reference, so limits shape
    /// which environments survive).
    pub fn for_env_set(reference: &Binary, fuzz: &FuzzConfig, vm: &VmConfig) -> ArtifactKey {
        let base = ArtifactKey::for_function(reference, 0);
        let mut h = Fnv2::new();
        h.update_u32(SCHEMA_VERSION);
        h.update(b"envset");
        h.update_u64(base.hi);
        h.update_u64(base.lo);
        h.update_u64(fuzz.rounds as u64);
        h.update_u64(fuzz.max_len as u64);
        h.update_u64(fuzz.num_envs as u64);
        h.update_u64(fuzz.seed);
        h.update_u64(fuzz.extra_args.len() as u64);
        for &a in &fuzz.extra_args {
            h.update_u64(a as u64);
        }
        h.update_u64(vm.max_instructions);
        h.update_u64(vm.max_depth as u64);
        h.update_u64(vm.heap_limit as u64);
        ArtifactKey { hi: h.hi, lo: h.lo }
    }

    /// Key of the dynamic profile of function `func` of `target` over an
    /// environment set with content fingerprint `env_fingerprint`
    /// (`patchecko_core::dynsource::EnvSet::fingerprint`, which already
    /// digests the interpreter limits and every environment's contents).
    pub fn for_dyn_profile(
        target: &Binary,
        func: usize,
        env_fingerprint: (u64, u64),
    ) -> ArtifactKey {
        let base = ArtifactKey::for_function(target, func);
        let mut h = Fnv2::new();
        h.update_u32(SCHEMA_VERSION);
        h.update(b"dynprof");
        h.update_u64(base.hi);
        h.update_u64(base.lo);
        h.update_u64(env_fingerprint.0);
        h.update_u64(env_fingerprint.1);
        ArtifactKey { hi: h.hi, lo: h.lo }
    }

    /// This key translated into a tenant's cache namespace: each half is
    /// XORed with the corresponding half of `salt`. XOR with a fixed salt
    /// is a bijection on the 128-bit key space, so within one namespace
    /// keys collide exactly when the underlying content keys collide, and
    /// distinct salts map the same content to disjoint names. The zero
    /// salt (see [`tenant_salt`]) is the identity — unsalted callers and
    /// the anonymous tenant share the base namespace.
    pub fn namespaced(self, salt: (u64, u64)) -> ArtifactKey {
        ArtifactKey { hi: self.hi ^ salt.0, lo: self.lo ^ salt.1 }
    }

    /// 32-character lowercase hex form (the on-disk map key).
    pub fn to_hex(self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }

    /// Parse [`ArtifactKey::to_hex`] output.
    pub fn from_hex(s: &str) -> Option<ArtifactKey> {
        if s.len() != 32 {
            return None;
        }
        let hi = u64::from_str_radix(&s[..16], 16).ok()?;
        let lo = u64::from_str_radix(&s[16..], 16).ok()?;
        Some(ArtifactKey { hi, lo })
    }

    /// Shard selector in `[0, shards)`.
    pub fn shard(self, shards: usize) -> usize {
        (self.lo as usize) % shards.max(1)
    }
}

/// Cache-namespace salt for a tenant id: a domain-separated [`Fnv2`]
/// digest of the tenant name, with the empty tenant mapped to the zero
/// salt so anonymous (CLI, single-tenant) callers address the base
/// namespace unchanged. Applied via [`ArtifactKey::namespaced`].
pub fn tenant_salt(tenant: &str) -> (u64, u64) {
    if tenant.is_empty() {
        return (0, 0);
    }
    let mut h = Fnv2::new();
    h.update(b"tenant-ns");
    h.update(tenant.as_bytes());
    (h.hi, h.lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testfix::keyed_binary as sample_binary;
    use fwbin::isa::OptLevel;
    use fwlang::gen::Generator;

    #[test]
    fn keys_distinguish_functions_and_arches() {
        let bin = sample_binary();
        let mut keys: Vec<ArtifactKey> =
            (0..bin.function_count()).map(|i| ArtifactKey::for_function(&bin, i)).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), bin.function_count(), "all functions hash distinctly");

        let lib = Generator::new(11).library_sized("libk", 8);
        let other = fwbin::compile_library(&lib, Arch::X86, OptLevel::O2).unwrap();
        assert_ne!(
            ArtifactKey::for_function(&bin, 0),
            ArtifactKey::for_function(&other, 0),
            "same source, different arch, different key"
        );
    }

    #[test]
    fn key_is_stable_across_wire_roundtrip() {
        let bin = sample_binary();
        let back = Binary::from_bytes(&bin.to_bytes()).unwrap();
        for i in 0..bin.function_count() {
            assert_eq!(ArtifactKey::for_function(&bin, i), ArtifactKey::for_function(&back, i));
        }
    }

    #[test]
    fn dyn_keys_are_input_sensitive() {
        let bin = sample_binary();
        let fuzz = FuzzConfig::default();
        let vmc = VmConfig::default();
        let k = ArtifactKey::for_env_set(&bin, &fuzz, &vmc);
        assert_eq!(k, ArtifactKey::for_env_set(&bin, &fuzz, &vmc), "deterministic");
        let reseeded = FuzzConfig { seed: fuzz.seed + 1, ..fuzz.clone() };
        assert_ne!(ArtifactKey::for_env_set(&bin, &reseeded, &vmc), k, "fuzz knobs hashed");
        let tighter = VmConfig { max_instructions: 1, ..vmc };
        assert_ne!(ArtifactKey::for_env_set(&bin, &fuzz, &tighter), k, "vm limits hashed");

        let p = ArtifactKey::for_dyn_profile(&bin, 0, (1, 2));
        assert_ne!(ArtifactKey::for_dyn_profile(&bin, 1, (1, 2)), p, "function hashed");
        assert_ne!(ArtifactKey::for_dyn_profile(&bin, 0, (1, 3)), p, "fingerprint hashed");
        assert_ne!(p, k, "lanes are domain-separated");
    }

    #[test]
    fn tenant_salts_partition_the_key_space() {
        let bin = sample_binary();
        let k = ArtifactKey::for_function(&bin, 0);

        // Empty tenant is the identity namespace.
        assert_eq!(tenant_salt(""), (0, 0));
        assert_eq!(k.namespaced(tenant_salt("")), k);

        // Distinct tenants relocate the same content to distinct names,
        // deterministically, and the mapping is invertible.
        let acme = tenant_salt("acme");
        let rival = tenant_salt("rival");
        assert_ne!(acme, rival);
        assert_eq!(tenant_salt("acme"), acme, "salt is deterministic");
        assert_ne!(k.namespaced(acme), k);
        assert_ne!(k.namespaced(acme), k.namespaced(rival));
        assert_eq!(k.namespaced(acme).namespaced(acme), k, "XOR salting inverts");

        // Within one namespace, distinct content stays distinct.
        let k1 = ArtifactKey::for_function(&bin, 1);
        assert_ne!(k.namespaced(acme), k1.namespaced(acme));
    }

    #[test]
    fn hex_roundtrip() {
        let k = ArtifactKey { hi: 0x0123_4567_89ab_cdef, lo: 0xfedc_ba98_7654_3210 };
        assert_eq!(ArtifactKey::from_hex(&k.to_hex()), Some(k));
        assert_eq!(ArtifactKey::from_hex("nope"), None);
        assert_eq!(ArtifactKey::from_hex(&"0".repeat(31)), None);
    }
}
