//! Shared test fixtures for scanhub's unit-test modules.
//!
//! `key`, `store`, and `dynstore` tests all need small deterministic
//! compiled libraries; the `fwlang` generate → `compile_library` dance
//! lives here once instead of being copy-pasted per module. The named
//! fixtures keep their historical (seed, name, size, arch, opt) tuples so
//! every existing assertion — exact counter values, function counts,
//! checksum behaviours — still holds.

use fwbin::format::Binary;
use fwbin::isa::{Arch, OptLevel};
use fwlang::gen::Generator;
use vm::exec::VmConfig;
use vm::fuzz::FuzzConfig;
use vm::loader::LoadedBinary;

/// Compile a deterministic `fwlang` library: `functions` generated
/// functions from `seed`, built for `arch` at `opt`.
pub(crate) fn compiled(
    seed: u64,
    name: &str,
    functions: usize,
    arch: Arch,
    opt: OptLevel,
) -> Binary {
    let lib = Generator::new(seed).library_sized(name, functions);
    fwbin::compile_library(&lib, arch, opt).unwrap()
}

/// The `key` module's fixture: 8 Arm64/O2 functions from seed 11.
pub(crate) fn keyed_binary() -> Binary {
    compiled(11, "libk", 8, Arch::Arm64, OptLevel::O2)
}

/// The `store` module's static-lane fixture: 6 Arm32/O1 functions from
/// seed 4.
pub(crate) fn store_binary() -> Binary {
    compiled(4, "libs", 6, Arch::Arm32, OptLevel::O1)
}

/// The dynamic-lane fixture: a loaded 4-function Arm64/O2 binary from
/// seed 21, plus default dynamic-stage configs.
pub(crate) fn dyn_fixture() -> (LoadedBinary, FuzzConfig, VmConfig) {
    let bin = compiled(21, "libdyn", 4, Arch::Arm64, OptLevel::O2);
    (LoadedBinary::load(bin).unwrap(), FuzzConfig::default(), VmConfig::default())
}
