//! Acceptance gates for the streaming corpus path (`scan_stream` /
//! `ingest_stream`):
//!
//! * **bounded memory** — a streaming scan over a corpus 10× larger than
//!   the configured working set never holds more than `working_set` units
//!   live at once, proven by the live-entry counter in the streaming path
//!   (not RSS sniffing), through both the bare pipeline and the hub's
//!   cached lanes;
//! * **recall** — on a generated corpus with planted CVE functions and
//!   distractor references wide enough that top-K really prunes, the
//!   indexed streaming scan retains ≥ 99% of the exact scan's detections
//!   (the scaled-down `cargo test` face of the gate `bench_corpus`
//!   re-asserts at full scale before timing).

use corpus::dataset1::Dataset1Config;
use corpus::{CorpusStream, StreamConfig};
use neural::net::TrainConfig;
use patchecko_core::detector::{self, Detector, DetectorConfig};
use patchecko_core::features::StaticFeatures;
use patchecko_core::pipeline::{Basis, Patchecko, PipelineConfig};
use patchecko_core::retrieval::{Retrieval, DEFAULT_TOP_K};
use patchecko_scanhub::ScanHub;
use std::collections::HashSet;
use std::sync::OnceLock;

fn shared_detector() -> &'static Detector {
    static DET: OnceLock<Detector> = OnceLock::new();
    DET.get_or_init(|| {
        let ds = corpus::build_dataset1(&Dataset1Config {
            num_libraries: 10,
            min_functions: 8,
            max_functions: 12,
            seed: 1,
            include_catalog: true,
        });
        let cfg = DetectorConfig {
            pairs_per_function: 6,
            train: TrainConfig { epochs: 10, batch: 256, lr: 1e-3, seed: 7, ..Default::default() },
            ..DetectorConfig::default()
        };
        detector::train(&ds, &cfg).0
    })
}

fn analyzer(retrieval: Retrieval) -> Patchecko {
    let cfg = PipelineConfig { retrieval, ..PipelineConfig::default() };
    Patchecko::new(shared_detector().clone(), cfg)
}

/// The featured entries' vulnerable reference variants, flattened into one
/// pool (25 CVEs × 4 platform variants = 100 rows — wide enough that the
/// default top-16 index really prunes).
fn reference_pool() -> Vec<StaticFeatures> {
    let db = corpus::build_vulndb(0, 1);
    let mut pool = Vec::new();
    for entry in db.featured() {
        pool.extend(Patchecko::reference_feature_set(entry, Basis::Vulnerable).unwrap());
    }
    assert!(pool.len() > DEFAULT_TOP_K, "pool must be wide enough to prune");
    pool
}

/// The streaming scan holds at most `working_set` units live at any
/// moment, even when the corpus is 10× larger — the whole corpus is never
/// materialized. Checked through the bare pipeline and through the hub
/// (whose artifact lanes must not secretly retain the units either).
#[test]
fn streaming_scan_is_bounded_by_the_working_set() {
    const WORKING_SET: usize = 4;
    let mut cfg = StreamConfig::sized(0, 0xFEED);
    cfg.functions_per_library = 8;
    cfg.target_functions = WORKING_SET * 10 * cfg.functions_per_library;
    cfg.plant_every = 16;
    assert_eq!(cfg.units(), WORKING_SET * 10, "corpus must be 10× the working set");

    let refs = reference_pool();
    let exact = analyzer(Retrieval::Exact);
    let report = exact
        .scan_stream(CorpusStream::new(cfg.clone()).map(|u| u.binary), &refs, WORKING_SET)
        .unwrap();
    assert_eq!(report.units, cfg.units());
    assert_eq!(report.functions, cfg.total_functions());
    assert_eq!(report.working_set, WORKING_SET);
    assert!(
        report.peak_live <= WORKING_SET,
        "peak live units {} exceeded the configured working set {WORKING_SET}",
        report.peak_live
    );
    assert!(report.peak_live >= 1, "the counter must actually move");

    let hub = ScanHub::new(analyzer(Retrieval::TopK { k: DEFAULT_TOP_K }));
    let hub_report = hub
        .scan_stream(CorpusStream::new(cfg.clone()).map(|u| u.binary), &refs, WORKING_SET)
        .unwrap();
    assert_eq!(hub_report.units, cfg.units());
    assert!(hub_report.peak_live <= WORKING_SET);

    let (units, functions, peak) = hub
        .ingest_stream(CorpusStream::new(cfg.clone()).map(|u| u.binary), WORKING_SET)
        .unwrap();
    assert_eq!((units, functions), (cfg.units(), cfg.total_functions()));
    assert!(peak <= WORKING_SET, "ingestion peak {peak} exceeded the working set");
}

/// Recall gate, scaled down from the bench's 10⁴ functions: against the
/// 100-row reference pool, the top-K streaming scan must retain ≥ 99% of
/// the exact scan's *true* detections — the planted CVE functions the
/// exact scan flags. The distractor functions supply pruning pressure
/// (their occasional threshold-borderline flags are exact-scan false
/// positives the index may legitimately drop, so they are excluded from
/// the recall denominator).
#[test]
fn topk_streaming_detection_recall_is_at_least_99_percent() {
    let mut cfg = StreamConfig::sized(1_000, 0xC0FFEE);
    cfg.plant_every = 2;
    let refs = reference_pool();

    let flagged = |retrieval: Retrieval| -> HashSet<(usize, usize)> {
        analyzer(retrieval)
            .scan_stream(CorpusStream::new(cfg.clone()).map(|u| u.binary), &refs, 8)
            .unwrap()
            .matches
            .iter()
            .map(|m| (m.unit, m.function))
            .collect()
    };
    let exact = flagged(Retrieval::Exact);
    let topk = flagged(Retrieval::TopK { k: DEFAULT_TOP_K });

    // The ground truth: planted functions the exact scan detects. The
    // exact scan must find nearly all of them, or the gate gates nothing.
    let planted = corpus::manifest(&cfg);
    assert!(!planted.is_empty());
    let exact_true: Vec<(usize, usize)> = planted
        .iter()
        .map(|p| (p.unit, p.function_index))
        .filter(|d| exact.contains(d))
        .collect();
    assert!(
        exact_true.len() * 10 >= planted.len() * 9,
        "exact scan must find ≥90% of planted CVEs ({}/{})",
        exact_true.len(),
        planted.len()
    );

    let retained = exact_true.iter().filter(|d| topk.contains(*d)).count();
    let recall = retained as f64 / exact_true.len() as f64;
    assert!(
        recall >= 0.99,
        "streaming detection recall {recall:.4} below the 99% gate \
         ({retained}/{} true exact detections retained at K={DEFAULT_TOP_K})",
        exact_true.len()
    );
}
