//! Property tests for the artifact cache (satellite of the scanhub PR):
//! keys must be stable under FWB wire round-trips, and cached feature
//! vectors must be bit-identical to freshly extracted ones — across all
//! four architectures and including the on-disk JSON layer.

use fwbin::format::Binary;
use fwbin::isa::{Arch, OptLevel};
use fwlang::gen::Generator;
use patchecko_core::pipeline::{DirectExtraction, FeatureSource};
use proptest::prelude::*;
use patchecko_scanhub::{ArtifactKey, ArtifactStore};

fn compile(seed: u64, n_funcs: usize, arch: Arch, opt: OptLevel) -> Binary {
    let lib = Generator::new(seed).library_sized("libprop", n_funcs);
    fwbin::compile_library(&lib, arch, opt).unwrap()
}

fn bits(features: &patchecko_core::features::StaticFeatures) -> Vec<u64> {
    features.as_slice().iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Re-encoding and decoding a binary through the wire format must not
    /// move any function to a different cache key, on any architecture.
    #[test]
    fn artifact_key_stable_under_reencode(seed in 0u64..10_000, n in 3usize..7) {
        for arch in Arch::ALL {
            let bin = compile(seed, n, arch, OptLevel::O1);
            let decoded = Binary::from_bytes(&bin.to_bytes()).unwrap();
            let twice = Binary::from_bytes(&decoded.to_bytes()).unwrap();
            for idx in 0..bin.function_count() {
                let k = ArtifactKey::for_function(&bin, idx);
                prop_assert_eq!(k, ArtifactKey::for_function(&decoded, idx));
                prop_assert_eq!(k, ArtifactKey::for_function(&twice, idx));
            }
        }
    }

    /// Cache-served features are bit-identical to fresh extraction on all
    /// four arches — both straight from memory and after a save/load
    /// round-trip through the persistent JSON layer.
    #[test]
    fn cached_features_bit_identical_to_fresh(seed in 0u64..10_000, n in 3usize..7) {
        let dir = std::env::temp_dir()
            .join(format!("scanhub-prop-{}-{seed}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ArtifactStore::new();
        for arch in Arch::ALL {
            let bin = compile(seed, n, arch, OptLevel::O2);
            let fresh = DirectExtraction.features_all(&bin).unwrap();
            let cold = store.features_all(&bin).unwrap();
            let warm = store.features_all(&bin).unwrap();
            for ((f, c), w) in fresh.iter().zip(&cold).zip(&warm) {
                prop_assert_eq!(bits(f), bits(c));
                prop_assert_eq!(bits(f), bits(w));
            }
        }
        store.save(&dir).unwrap();
        let reloaded = ArtifactStore::load(&dir).unwrap();
        for arch in Arch::ALL {
            let bin = compile(seed, n, arch, OptLevel::O2);
            let fresh = DirectExtraction.features_all(&bin).unwrap();
            let cached = reloaded.features_all(&bin).unwrap();
            for (f, c) in fresh.iter().zip(&cached) {
                prop_assert_eq!(bits(f), bits(c), "persisted artifacts must round-trip bit-exactly");
            }
        }
        prop_assert_eq!(reloaded.stats().extractions, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
