//! Integration tests for the scan service: cache-backed scans must be
//! observably equivalent to direct pipeline runs, warm re-audits must do
//! zero extraction work, and the scheduler must survive bad jobs.

use corpus::dataset1::Dataset1Config;
use corpus::vulndb::VulnDb;
use neural::net::TrainConfig;
use patchecko_core::detector::{self, Detector, DetectorConfig};
use patchecko_core::differential::DifferentialConfig;
use patchecko_core::error::ScanError;
use patchecko_core::pipeline::{Basis, Patchecko, PipelineConfig};
use patchecko_scanhub::{full_schedule, JobOutcome, JobSpec, ScanHub};
use std::sync::OnceLock;

fn shared_detector() -> &'static Detector {
    static DET: OnceLock<Detector> = OnceLock::new();
    DET.get_or_init(|| {
        let ds = corpus::build_dataset1(&Dataset1Config {
            num_libraries: 10,
            min_functions: 8,
            max_functions: 12,
            seed: 1,
            include_catalog: true,
        });
        let cfg = DetectorConfig {
            pairs_per_function: 6,
            train: TrainConfig { epochs: 10, batch: 256, lr: 1e-3, seed: 7, ..Default::default() },
            ..DetectorConfig::default()
        };
        detector::train(&ds, &cfg).0
    })
}

fn shared_device() -> &'static corpus::DeviceBuild {
    static DEV: OnceLock<corpus::DeviceBuild> = OnceLock::new();
    DEV.get_or_init(|| {
        corpus::build_device(&corpus::android_things_spec(), &corpus::full_catalog(), 0.05)
    })
}

fn small_db() -> VulnDb {
    let mut db = corpus::build_vulndb(0, 1);
    // Trim the featured list so the audits stay test-sized.
    db.entries.truncate(3);
    db
}

fn fresh_hub() -> ScanHub {
    ScanHub::new(Patchecko::new(shared_detector().clone(), PipelineConfig::default()))
}

#[test]
fn warm_cache_reaudit_extracts_nothing() {
    // The headline acceptance property: a warm re-audit of the same image
    // performs ZERO disassembly/feature-extraction calls — every static
    // feature (targets, references, differential three-way) is served from
    // the content-addressed store.
    let hub = fresh_hub();
    let db = small_db();
    let image = &shared_device().image;
    let diff = DifferentialConfig::default();

    let cold = hub.audit(&db, image, &diff).unwrap();
    let after_cold = hub.stats();
    assert!(after_cold.extractions > 0, "cold audit fills the cache");
    assert_eq!(after_cold.misses, after_cold.extractions);

    let warm = hub.audit(&db, image, &diff).unwrap();
    let delta = hub.stats().since(&after_cold);
    assert_eq!(delta.extractions, 0, "warm re-audit must not extract");
    assert_eq!(delta.misses, 0, "warm re-audit must not miss");
    assert!(delta.hits > 0, "warm re-audit is served by the cache");

    // Identical verdicts, cold vs warm (cached features are bit-identical,
    // the dynamic stage is seeded).
    assert_eq!(
        serde_json::to_string(&cold).unwrap(),
        serde_json::to_string(&warm).unwrap(),
        "cache must not change audit results"
    );
}

#[test]
fn cached_scan_matches_direct_pipeline() {
    let hub = fresh_hub();
    let db = corpus::build_vulndb(0, 1);
    let entry = db.get("CVE-2018-9412").unwrap();
    let device = shared_device();
    let truth = device.truth_for("CVE-2018-9412").unwrap();
    let bin = device.image.binary(&truth.library).unwrap();

    let cached = hub.analyze_library(bin, entry, Basis::Vulnerable).unwrap();
    let direct = hub.analyzer.analyze_library(bin, entry, Basis::Vulnerable).unwrap();
    assert_eq!(cached.scan.probs, direct.scan.probs);
    assert_eq!(cached.scan.candidates, direct.scan.candidates);
    assert_eq!(cached.dynamic.validated, direct.dynamic.validated);
    assert_eq!(cached.dynamic.ranking, direct.dynamic.ranking);
}

#[test]
fn scheduler_completes_batch_and_contains_failures() {
    let mut analyzer = Patchecko::new(shared_detector().clone(), PipelineConfig::default());
    analyzer.config.threads = Some(4); // satellite (f): explicit worker count
    let hub = std::sync::Arc::new(ScanHub::new(analyzer));
    let db = std::sync::Arc::new(small_db());
    let images = std::sync::Arc::new(vec![shared_device().image.clone()]);

    let mut jobs = full_schedule(images.len(), &db, &[Basis::Vulnerable]);
    assert_eq!(jobs.len(), db.featured().len());
    // Poison the schedule with jobs that must fail gracefully.
    jobs.push(JobSpec { image: 0, cve: "CVE-0000-0000".into(), basis: Basis::Vulnerable });
    jobs.push(JobSpec { image: 9, cve: "CVE-2018-9412".into(), basis: Basis::Patched });

    let report = hub.batch_audit(&images, &db, &jobs);
    assert_eq!(report.records.len(), jobs.len());
    assert_eq!(report.threads, 4);
    assert_eq!(report.failed(), 2);
    // Records stay in schedule order with their specs attached.
    for (record, spec) in report.records.iter().zip(&jobs) {
        assert_eq!(&record.spec, spec);
        assert!(record.seconds >= 0.0);
    }
    match &report.records[jobs.len() - 2].outcome {
        JobOutcome::Failed { error, attempts } => {
            assert!(matches!(error, ScanError::UnknownCve(_)), "{error}");
            assert_eq!(*attempts, 1, "permanent errors are not retried");
        }
        other => panic!("expected failure, got {other:?}"),
    }
    match &report.records[jobs.len() - 1].outcome {
        JobOutcome::Failed { error, attempts } => {
            assert!(matches!(error, ScanError::ImageOutOfRange { index: 9, .. }), "{error}");
            assert_eq!(*attempts, 1, "permanent errors are not retried");
        }
        other => panic!("expected failure, got {other:?}"),
    }
    let summary = report.failure_summary();
    assert!(summary.contains("CVE-0000-0000"), "{summary}");
    assert!(summary.contains("after 1 attempt"), "{summary}");
    let flagship = &report.records[0];
    assert!(flagship.is_ok());

    // A second identical batch rides the warm cache end to end.
    let before = hub.stats();
    let rerun = hub.batch_audit(&images, &db, &jobs);
    assert_eq!(rerun.cache_delta.extractions, 0, "warm batch extracts nothing");
    assert_eq!(rerun.completed(), report.completed());
    assert!(hub.stats().hits > before.hits);

    // The report serializes for the CLI's --json output.
    let json = serde_json::to_string(&report).unwrap();
    assert!(json.contains("CVE-2018-9412"));
}

#[test]
fn persisted_cache_survives_restart() {
    let dir = std::env::temp_dir().join(format!("scanhub-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let image = &shared_device().image;

    let db = corpus::build_vulndb(0, 1);
    let entry = db.get("CVE-2018-9412").unwrap();
    let lib = &shared_device().truth_for("CVE-2018-9412").unwrap().library;

    let hub = ScanHub::with_cache_dir(
        Patchecko::new(shared_detector().clone(), PipelineConfig::default()),
        &dir,
    )
    .unwrap();
    let warmed = hub.warm_image(image).unwrap();
    assert_eq!(warmed, image.total_functions());
    // Cache the reference variants too, then persist everything.
    hub.scan_library(image.binary(lib).unwrap(), entry, Basis::Vulnerable).unwrap();
    assert!(hub.persist().unwrap());

    // "Reboot": a new hub over the same directory serves the same scan
    // without a single extraction.
    let hub2 = ScanHub::with_cache_dir(
        Patchecko::new(shared_detector().clone(), PipelineConfig::default()),
        &dir,
    )
    .unwrap();
    assert_eq!(hub2.store().len(), hub.store().len());
    let scan = hub2.scan_library(image.binary(lib).unwrap(), entry, Basis::Vulnerable).unwrap();
    assert!(scan.total > 0);
    let stats = hub2.stats();
    assert_eq!(stats.extractions, 0, "restarted hub reuses persisted artifacts");
    assert_eq!(stats.misses, 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn warm_audit_telemetry_shows_zero_extractions_end_to_end() {
    // Same acceptance property as the CacheStats-based warm test, but
    // driven entirely through the scope registry the hub was built with:
    // the `cache.extractions` counter must not move across a warm
    // re-audit, and the attached report telemetry must agree.
    let reg = std::sync::Arc::new(scope::MetricsRegistry::new());
    let hub = ScanHub::with_registry(
        Patchecko::new(shared_detector().clone(), PipelineConfig::default()),
        std::sync::Arc::clone(&reg),
    );
    let db = small_db();
    let image = &shared_device().image;
    let diff = DifferentialConfig::default();

    let cold = hub.audit_with_telemetry(&db, image, &diff).unwrap();
    let cold_t = cold.telemetry.expect("cold audit carries telemetry");
    assert!(cold_t.counter("cache.extractions") > 0, "cold audit extracts");
    assert_eq!(cold_t.counter("cache.extractions"), cold_t.counter("cache.misses"));
    // The audit's stage spans are merged into the report telemetry.
    assert!(cold_t.duration("span.audit").is_some(), "audit span recorded");
    assert!(cold_t.duration("span.static_scan").is_some(), "static span recorded");

    let after_cold = reg.snapshot();
    let warm = hub.audit_with_telemetry(&db, image, &diff).unwrap();
    let warm_t = warm.telemetry.expect("warm audit carries telemetry");
    assert_eq!(warm_t.counter("cache.extractions"), 0, "warm audit extracts nothing");
    assert_eq!(warm_t.counter("cache.misses"), 0);
    assert!(warm_t.counter("cache.hits") > 0, "warm audit is served by the cache");
    // Registry-level view agrees with the per-report deltas.
    let reg_delta = reg.snapshot().since(&after_cold);
    assert_eq!(reg_delta.counter("cache.extractions"), 0);

    // Findings are identical cold vs warm; only telemetry differs.
    assert_eq!(
        serde_json::to_string(&cold.findings).unwrap(),
        serde_json::to_string(&warm.findings).unwrap(),
    );
}

#[test]
fn batch_report_carries_scheduler_telemetry() {
    let reg = std::sync::Arc::new(scope::MetricsRegistry::new());
    let hub = std::sync::Arc::new(ScanHub::with_registry(
        Patchecko::new(shared_detector().clone(), PipelineConfig::default()),
        std::sync::Arc::clone(&reg),
    ));
    let db = std::sync::Arc::new(small_db());
    let images = std::sync::Arc::new(vec![shared_device().image.clone()]);
    let jobs = full_schedule(images.len(), &db, &[Basis::Vulnerable]);

    let report = hub.batch_audit(&images, &db, &jobs);
    let t = report.telemetry.as_ref().expect("batch report carries telemetry");
    assert_eq!(t.counter("sched.jobs"), jobs.len() as u64);
    assert_eq!(t.counter("sched.attempts"), jobs.len() as u64, "no retries on a clean batch");
    assert_eq!(t.counter("sched.retries"), 0);
    assert_eq!(t.counter("cache.extractions"), report.cache_delta.extractions);
    // Per-job spans are in the merged telemetry (recorded globally).
    assert!(t.duration("span.sched.job").is_some_and(|d| d.count >= jobs.len() as u64));
    // The registry itself holds the scheduler counters too.
    assert_eq!(reg.snapshot().counter("sched.jobs"), jobs.len() as u64);
}

#[test]
fn scheduler_never_sleeps_after_the_final_attempt() {
    // A job that exhausts its attempts must pay backoff only *between*
    // attempts: with max_attempts = 2 and a 150ms base, the job sleeps
    // once (~150ms), not twice (150 + 300ms). The generous upper bound
    // keeps the test robust on loaded CI machines while still failing
    // deterministically if a trailing backoff sneaks in.
    use patchecko_scanhub::RetryPolicy;
    let reg = std::sync::Arc::new(scope::MetricsRegistry::new());
    let retry = RetryPolicy { max_attempts: 2, base_backoff_ms: 150, job_timeout_ms: None };
    let hub = std::sync::Arc::new(
        ScanHub::with_registry(
            Patchecko::new(shared_detector().clone(), PipelineConfig::default()),
            std::sync::Arc::clone(&reg),
        )
        .with_retry_policy(retry)
        .with_fault_hook(std::sync::Arc::new(|spec: &JobSpec, _attempt| {
            Some(ScanError::Injected {
                site: "test".into(),
                detail: format!("always-failing {}", spec.cve),
            })
        })),
    );
    let db = std::sync::Arc::new(small_db());
    let images = std::sync::Arc::new(vec![shared_device().image.clone()]);
    let jobs =
        vec![JobSpec { image: 0, cve: db.featured()[0].entry.cve.clone(), basis: Basis::Vulnerable }];

    let started = std::time::Instant::now();
    let report = hub.batch_audit(&images, &db, &jobs);
    let elapsed = started.elapsed();
    assert_eq!(report.failed(), 1);
    assert_eq!(report.records[0].attempts, 2, "transient error retried to exhaustion");
    assert!(elapsed >= std::time::Duration::from_millis(150), "one backoff was paid");
    assert!(
        elapsed < std::time::Duration::from_millis(450),
        "no backoff after the final attempt (elapsed {elapsed:?})"
    );
    // The telemetry agrees: one retry, one backoff of exactly the base.
    let snap = reg.snapshot();
    assert_eq!(snap.counter("sched.attempts"), 2);
    assert_eq!(snap.counter("sched.retries"), 1);
    assert_eq!(snap.counter("sched.backoff_ms"), 150);
}

#[test]
fn hung_job_times_out_as_transient_failure_instead_of_stalling_the_batch() {
    // Satellite: a job exceeding its RetryPolicy wall-clock budget is
    // abandoned with a transient Timeout, retried, and finally recorded
    // as JobOutcome::Failed — the batch returns promptly instead of
    // waiting out the hang. The hang is simulated in the fault hook,
    // which runs inside the budgeted attempt like any scan work.
    use patchecko_scanhub::RetryPolicy;
    use std::time::Duration;
    let reg = std::sync::Arc::new(scope::MetricsRegistry::new());
    let retry = RetryPolicy { max_attempts: 2, base_backoff_ms: 10, job_timeout_ms: Some(300) };
    let hub = std::sync::Arc::new(
        ScanHub::with_registry(
            Patchecko::new(shared_detector().clone(), PipelineConfig::default()),
            std::sync::Arc::clone(&reg),
        )
        .with_retry_policy(retry)
        .with_fault_hook(std::sync::Arc::new(|_spec: &JobSpec, _attempt| {
            // Hang far past the budget; the abandoned attempt threads
            // finish (asleep) long after the batch has moved on.
            std::thread::sleep(Duration::from_secs(6));
            None
        })),
    );
    let db = std::sync::Arc::new(small_db());
    let images = std::sync::Arc::new(vec![shared_device().image.clone()]);
    let jobs =
        vec![JobSpec { image: 0, cve: db.featured()[0].entry.cve.clone(), basis: Basis::Vulnerable }];

    let started = std::time::Instant::now();
    let report = hub.batch_audit(&images, &db, &jobs);
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(5),
        "batch must not wait out the hang (elapsed {elapsed:?})"
    );
    assert_eq!(report.failed(), 1);
    match &report.records[0].outcome {
        JobOutcome::Failed { error, attempts } => {
            assert!(matches!(error, ScanError::Timeout { budget_ms: 300 }), "{error}");
            assert!(error.is_transient(), "timeouts are retryable");
            assert_eq!(*attempts, 2, "the timeout was retried to exhaustion");
        }
        other => panic!("expected timeout failure, got {other:?}"),
    }
    let snap = reg.snapshot();
    assert_eq!(snap.counter("sched.timeouts"), 2, "each budgeted attempt recorded its expiry");
    assert_eq!(snap.counter("sched.retries"), 1);
}
