//! Acceptance gates for indexed candidate retrieval (the signature/LSH
//! pre-filter in front of the NN scan):
//!
//! * **identity** — `--retrieval topk:K` with K ≥ the reference count is
//!   bitwise-identical to the exact all-pairs scan (probs, candidates,
//!   best_ref), both with direct extraction and through the persistent
//!   artifact cache (property-tested over generated libraries on all
//!   four ISAs);
//! * **recall** — at the default K, indexed retrieval retains ≥ 99% of
//!   the exact scan's detections on the seed fixture, across all 4 ISAs
//!   × all 6 optimization levels against a reference pool wide enough
//!   that real pruning happens;
//! * **persistence** — a hub scan in top-K mode populates the signature
//!   lane incrementally, serves it warm, and survives a save/load cycle.

use corpus::catalog;
use corpus::dataset1::Dataset1Config;
use corpus::vulndb::VulnDb;
use fwbin::isa::{Arch, OptLevel};
use fwlang::gen::Generator;
use neural::net::TrainConfig;
use patchecko_core::detector::{self, Detector, DetectorConfig};
use patchecko_core::features::StaticFeatures;
use patchecko_core::pipeline::{Basis, Patchecko, PipelineConfig};
use patchecko_core::retrieval::{Retrieval, DEFAULT_TOP_K};
use patchecko_scanhub::{ArtifactStore, ScanHub};
use proptest::prelude::*;
use std::sync::OnceLock;

fn shared_detector() -> &'static Detector {
    static DET: OnceLock<Detector> = OnceLock::new();
    DET.get_or_init(|| {
        let ds = corpus::build_dataset1(&Dataset1Config {
            num_libraries: 10,
            min_functions: 8,
            max_functions: 12,
            seed: 1,
            include_catalog: true,
        });
        let cfg = DetectorConfig {
            pairs_per_function: 6,
            train: TrainConfig { epochs: 10, batch: 256, lr: 1e-3, seed: 7, ..Default::default() },
            ..DetectorConfig::default()
        };
        detector::train(&ds, &cfg).0
    })
}

fn small_db() -> &'static VulnDb {
    static DB: OnceLock<VulnDb> = OnceLock::new();
    DB.get_or_init(|| {
        let mut db = corpus::build_vulndb(0, 1);
        db.entries.truncate(10);
        db
    })
}

fn analyzer(retrieval: Retrieval) -> Patchecko {
    let cfg = PipelineConfig { retrieval, ..PipelineConfig::default() };
    Patchecko::new(shared_detector().clone(), cfg)
}

fn bits(probs: &[f32]) -> Vec<u32> {
    probs.iter().map(|p| p.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Top-K retrieval with K = |references| visits every pair the exact
    /// scan visits — the whole scan must come out bitwise-identical, on
    /// every ISA, through the artifact cache (cold and warm, so cached
    /// signatures feed the index the second time around).
    #[test]
    fn topk_at_full_k_is_bitwise_identical_through_the_cache(seed in 0u64..10_000, n in 3usize..7) {
        let entry = &small_db().entries[0];
        let refs = Patchecko::reference_feature_set(entry, Basis::Vulnerable).unwrap();
        let exact = analyzer(Retrieval::Exact);
        let topk = analyzer(Retrieval::TopK { k: refs.len() });
        let store = ArtifactStore::new();
        for arch in Arch::ALL {
            let lib = Generator::new(seed).library_sized("libprop", n);
            let bin = fwbin::compile_library(&lib, arch, OptLevel::O1).unwrap();
            let e = exact.scan_library_with(&bin, &refs, &store).unwrap();
            let cold = topk.scan_library_with(&bin, &refs, &store).unwrap();
            let warm = topk.scan_library_with(&bin, &refs, &store).unwrap();
            for t in [&cold, &warm] {
                prop_assert_eq!(bits(&e.probs), bits(&t.probs));
                prop_assert_eq!(&e.candidates, &t.candidates);
                prop_assert_eq!(&e.best_ref, &t.best_ref);
            }
        }
    }
}

/// Recall gate: at the default K against a reference DB of each entry's
/// 4 true platform variants plus 60 distractor reference functions (wide
/// enough that top-16 really prunes), the indexed scan must retain
/// ≥ 99% of the exact scan's detections (detection recall: a function
/// the exact scan flags is still flagged), and must not disagree on any
/// threshold decision for more than 1% of targets. Targets are the seed
/// fixture: the catalog entries' own vulnerable and patched libraries
/// compiled at every (ISA, optimization level) pair — the paper's
/// use-case, where the true match is a cross-compiled variant of a
/// pooled reference.
#[test]
fn default_k_detection_recall_is_at_least_99_percent_across_isas_and_opts() {
    let db = small_db();
    let distractors: Vec<StaticFeatures> = {
        let lib = Generator::new(99).library_sized("libdistract", 60);
        let bin = fwbin::compile_library(&lib, Arch::Arm64, OptLevel::O2).unwrap();
        patchecko_core::features::extract_all(&bin).unwrap()
    };
    let exact = analyzer(Retrieval::Exact);
    let topk = analyzer(Retrieval::TopK { k: DEFAULT_TOP_K });

    let (mut flagged, mut retained, mut total, mut agree) = (0u32, 0u32, 0u32, 0u32);
    for entry in &db.entries {
        let mut pool = Patchecko::reference_feature_set(entry, Basis::Vulnerable).unwrap();
        pool.extend(distractors.iter().cloned());
        assert!(pool.len() > DEFAULT_TOP_K, "pool must be wide enough to prune");
        for patched in [false, true] {
            let lib = catalog::reference_library(&entry.entry, patched);
            for arch in Arch::ALL {
                for opt in OptLevel::ALL {
                    let bin = fwbin::compile_library(&lib, arch, opt).unwrap();
                    let e = exact.scan_library(&bin, &pool).unwrap();
                    let t = topk.scan_library(&bin, &pool).unwrap();
                    for f in 0..e.total {
                        total += 1;
                        let ef = e.candidates.contains(&f);
                        let tf = t.candidates.contains(&f);
                        if ef {
                            flagged += 1;
                            if tf {
                                retained += 1;
                            }
                        }
                        if ef == tf {
                            agree += 1;
                        }
                    }
                }
            }
        }
    }
    assert!(flagged > 0, "the seed fixture must produce detections");
    let recall = f64::from(retained) / f64::from(flagged);
    let agreement = f64::from(agree) / f64::from(total);
    assert!(
        recall >= 0.99,
        "detection recall {recall:.4} below the 99% gate \
         ({retained}/{flagged} exact detections retained at K={DEFAULT_TOP_K})"
    );
    assert!(
        agreement >= 0.99,
        "threshold-decision agreement {agreement:.4} below the 99% gate ({agree}/{total})"
    );
}

/// A top-K hub scan populates the persistent signature lane (cold:
/// all misses + inserts), serves it warm (all hits), and the lane
/// survives persist/reload — with the scan results bitwise-stable
/// throughout and the pruning counters moving in the hub's registry.
#[test]
fn hub_topk_scan_populates_and_serves_the_persistent_index() {
    let dir = std::env::temp_dir().join(format!("scanhub-retrieval-hub-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let entry = &small_db().entries[0];
    // K below the reference count (4 variants), so the index really
    // selects and the pruning counters move.
    let hub = ScanHub::with_cache_dir(analyzer(Retrieval::TopK { k: 2 }), &dir).unwrap();
    let bin = Generator::new(11).library_sized("libhub", 6);
    let bin = fwbin::compile_library(&bin, Arch::Arm64, OptLevel::O2).unwrap();
    let n = bin.function_count() as u64;

    let pruned_before = scope::snapshot().counter("index.pairs_pruned");
    let cold = hub.scan_library(&bin, entry, Basis::Vulnerable).unwrap();
    let s = hub.stats();
    assert_eq!(s.sig_entries, n, "cold scan inserts one signature per target function");
    assert_eq!((s.sig_hits, s.sig_misses), (0, n));
    assert!(
        scope::snapshot().counter("index.pairs_pruned") >= pruned_before + n,
        "k=2 of 4 references prunes pairs (band-collision rescue may add a few back)"
    );

    let warm = hub.scan_library(&bin, entry, Basis::Vulnerable).unwrap();
    assert_eq!(bits(&cold.probs), bits(&warm.probs));
    assert_eq!(hub.stats().sig_hits, n, "warm scan serves every signature from the lane");

    assert!(hub.persist().unwrap());
    let hub2 = ScanHub::with_cache_dir(analyzer(Retrieval::TopK { k: 2 }), &dir).unwrap();
    let s = hub2.stats();
    assert_eq!(s.sig_entries, n, "signature lane survives reload");
    assert_eq!(s.sig_quarantined, 0);
    let reloaded = hub2.scan_library(&bin, entry, Basis::Vulnerable).unwrap();
    assert_eq!(bits(&cold.probs), bits(&reloaded.probs));
    assert_eq!(cold.best_ref, reloaded.best_ref);
    let s = hub2.stats();
    assert_eq!((s.sig_hits, s.sig_misses), (n, 0), "reloaded lane is warm");
    std::fs::remove_dir_all(&dir).unwrap();
}
