//! Concurrent same-key access: racing requesters for one image's
//! artifacts must coalesce to exactly one extraction (static lane) and
//! exactly one live profiling run (dynamic lane). This is the
//! single-process precursor to the scan daemon's in-flight request dedup
//! — two clients auditing the same image trigger one computation.
//!
//! The dynamic-lane assertions read the process-global `vm.executions`
//! counter, so those tests serialize on a local mutex; as its own
//! integration-test binary this file owns the process and no other
//! suite's VM runs can leak in.

use fwbin::format::Binary;
use fwbin::isa::{Arch, OptLevel};
use fwlang::gen::Generator;
use patchecko_core::dynsource::DynProfileSource;
use patchecko_core::pipeline::FeatureSource;
use patchecko_scanhub::ArtifactStore;
use std::sync::{Arc, Mutex, OnceLock};
use vm::exec::VmConfig;
use vm::fuzz::FuzzConfig;
use vm::loader::LoadedBinary;

fn vm_counter_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

fn vm_executions() -> u64 {
    scope::snapshot().counter("vm.executions")
}

fn sample_binary() -> Binary {
    let lib = Generator::new(33).library_sized("librace", 6);
    fwbin::compile_library(&lib, Arch::Arm64, OptLevel::O2).unwrap()
}

#[test]
fn concurrent_feature_requests_extract_exactly_once() {
    let store = Arc::new(ArtifactStore::new());
    let bin = Arc::new(sample_binary());
    let n = bin.function_count() as u64;

    let results: Vec<_> = std::thread::scope(|s| {
        (0..2)
            .map(|_| {
                let (store, bin) = (Arc::clone(&store), Arc::clone(&bin));
                s.spawn(move || store.features_all(&bin).unwrap())
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    assert_eq!(results[0], results[1], "both racers see identical features");

    let stats = store.stats();
    assert_eq!(
        stats.extractions, n,
        "two concurrent requesters perform exactly one extraction per function"
    );
    assert_eq!(stats.entries, n, "one cache entry per function, no duplicates");
    assert_eq!(stats.hits + stats.misses, 2 * n, "every lookup was counted");
}

#[test]
fn concurrent_profile_requests_execute_the_vm_exactly_once() {
    let _guard = vm_counter_lock().lock().unwrap();
    let store = Arc::new(ArtifactStore::new());
    let lb = Arc::new(LoadedBinary::load(sample_binary()).unwrap());
    let (fuzz, vmc) = (FuzzConfig::default(), VmConfig::default());

    // Baseline: what one uncontended profiling run costs in VM executions.
    // A second store guarantees a cold dynamic lane for the measurement.
    let baseline_store = ArtifactStore::new();
    let envs = baseline_store.environments(&lb, &fuzz, &vmc).unwrap();
    let before = vm_executions();
    let expected = baseline_store.profile(&lb, 0, &envs, &vmc).unwrap();
    let single_run_cost = vm_executions() - before;
    assert!(single_run_cost > 0, "a cold profile must actually execute");

    // Race: two threads request the same profile from one cold store.
    let envs = Arc::new(store.environments(&lb, &fuzz, &vmc).unwrap());
    let before = vm_executions();
    let profiles: Vec<_> = std::thread::scope(|s| {
        (0..2)
            .map(|_| {
                let (store, lb, envs) = (Arc::clone(&store), Arc::clone(&lb), Arc::clone(&envs));
                let vmc = vmc.clone();
                s.spawn(move || store.profile(&lb, 0, &envs, &vmc).unwrap())
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    assert_eq!(
        vm_executions() - before,
        single_run_cost,
        "two concurrent requesters pay for exactly one profiling run"
    );
    assert_eq!(store.stats().dyn_profiled, 1, "one live profile, not two");
    assert_eq!(profiles[0], expected, "the shared profile matches an uncontended run");
    assert_eq!(profiles[0], profiles[1], "both racers see the same profile");
}

#[test]
fn concurrent_environment_requests_fuzz_exactly_once() {
    let _guard = vm_counter_lock().lock().unwrap();
    let store = Arc::new(ArtifactStore::new());
    let lb = Arc::new(LoadedBinary::load(sample_binary()).unwrap());
    let (fuzz, vmc) = (FuzzConfig::default(), VmConfig::default());

    let baseline_store = ArtifactStore::new();
    let before = vm_executions();
    let expected = baseline_store.environments(&lb, &fuzz, &vmc).unwrap();
    let single_run_cost = vm_executions() - before;
    assert!(single_run_cost > 0, "environment survival-filtering executes the reference");

    let before = vm_executions();
    let sets: Vec<_> = std::thread::scope(|s| {
        (0..2)
            .map(|_| {
                let (store, lb, fuzz) = (Arc::clone(&store), Arc::clone(&lb), fuzz.clone());
                let vmc = vmc.clone();
                s.spawn(move || store.environments(&lb, &fuzz, &vmc).unwrap())
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    assert_eq!(
        vm_executions() - before,
        single_run_cost,
        "two concurrent requesters pay for exactly one environment generation"
    );
    assert_eq!(sets[0].envs, expected.envs);
    assert_eq!(sets[0].fingerprint, sets[1].fingerprint);
}
