//! The dynamic-lane acceptance property: a warm re-audit performs ZERO VM
//! executions. Every environment set and dynamic profile — pipeline
//! validation, reference profiling, and the differential engine's
//! three-way comparisons — is served from the cache, observed through the
//! process-global `vm.executions` counter that `Vm::run` increments as its
//! single chokepoint.
//!
//! The counter is process-global, so the tests in this file serialize on a
//! local mutex; as an integration-test binary the file owns its process
//! and no other suite's VM runs can leak in.

use corpus::dataset1::Dataset1Config;
use corpus::vulndb::VulnDb;
use neural::net::TrainConfig;
use patchecko_core::detector::{self, Detector, DetectorConfig};
use patchecko_core::differential::DifferentialConfig;
use patchecko_core::pipeline::{Patchecko, PipelineConfig};
use patchecko_scanhub::ScanHub;
use std::sync::{Mutex, OnceLock};

/// Serializes the tests below: both read the global `vm.executions`
/// counter, which any concurrently running VM would perturb.
fn vm_counter_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

fn shared_detector() -> &'static Detector {
    static DET: OnceLock<Detector> = OnceLock::new();
    DET.get_or_init(|| {
        let ds = corpus::build_dataset1(&Dataset1Config {
            num_libraries: 10,
            min_functions: 8,
            max_functions: 12,
            seed: 1,
            include_catalog: true,
        });
        let cfg = DetectorConfig {
            pairs_per_function: 6,
            train: TrainConfig { epochs: 10, batch: 256, lr: 1e-3, seed: 7, ..Default::default() },
            ..DetectorConfig::default()
        };
        detector::train(&ds, &cfg).0
    })
}

fn shared_device() -> &'static corpus::DeviceBuild {
    static DEV: OnceLock<corpus::DeviceBuild> = OnceLock::new();
    DEV.get_or_init(|| {
        corpus::build_device(&corpus::android_things_spec(), &corpus::full_catalog(), 0.05)
    })
}

fn small_db() -> VulnDb {
    let mut db = corpus::build_vulndb(0, 1);
    db.entries.truncate(3);
    db
}

fn vm_executions() -> u64 {
    scope::snapshot().counter("vm.executions")
}

#[test]
fn warm_reaudit_executes_zero_vm_runs() {
    let _guard = vm_counter_lock().lock().unwrap();
    let hub = ScanHub::new(Patchecko::new(shared_detector().clone(), PipelineConfig::default()));
    let db = small_db();
    let image = &shared_device().image;
    let diff = DifferentialConfig::default();

    let before_cold = vm_executions();
    let cold = hub.audit(&db, image, &diff).unwrap();
    let after_cold = vm_executions();
    assert!(after_cold > before_cold, "cold audit must actually execute on the VM");
    let stats_cold = hub.stats();
    assert!(stats_cold.dyn_misses > 0, "cold audit fills the dynamic lane");
    assert!(stats_cold.dyn_profiled > 0, "cold audit profiles live");

    let warm = hub.audit(&db, image, &diff).unwrap();
    assert_eq!(
        vm_executions(),
        after_cold,
        "warm re-audit must perform zero VM executions"
    );
    let delta = hub.stats().since(&stats_cold);
    assert_eq!(delta.dyn_misses, 0, "warm re-audit must not miss the dynamic lane");
    assert_eq!(delta.dyn_profiled, 0, "warm re-audit must not profile live");
    assert!(delta.dyn_hits > 0, "warm re-audit is served by the dynamic lane");

    assert_eq!(
        serde_json::to_string(&cold).unwrap(),
        serde_json::to_string(&warm).unwrap(),
        "the dynamic cache must not change audit results"
    );
}

#[test]
fn persisted_dyn_cache_serves_fresh_hub_with_zero_vm_runs() {
    let _guard = vm_counter_lock().lock().unwrap();
    let dir = std::env::temp_dir().join(format!("scanhub-dyncache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db = small_db();
    let image = &shared_device().image;
    let diff = DifferentialConfig::default();
    let analyzer = || Patchecko::new(shared_detector().clone(), PipelineConfig::default());

    let cold_hub = ScanHub::with_cache_dir(analyzer(), &dir).unwrap();
    let cold = cold_hub.audit(&db, image, &diff).unwrap();
    assert!(cold_hub.persist().unwrap(), "cold audit produces new artifacts to persist");
    drop(cold_hub);

    // A fresh hub — fresh process in spirit — reads the same cache
    // directory and must answer the whole audit without touching the VM.
    let warm_hub = ScanHub::with_cache_dir(analyzer(), &dir).unwrap();
    assert!(warm_hub.stats().dyn_entries > 0, "persisted dynamic lane reloads");
    let before_warm = vm_executions();
    let warm = warm_hub.audit(&db, image, &diff).unwrap();
    assert_eq!(
        vm_executions(),
        before_warm,
        "an audit served from a persisted dynamic cache executes nothing"
    );
    let stats = warm_hub.stats();
    assert_eq!(stats.dyn_profiled, 0);
    assert_eq!(stats.dyn_misses, 0);
    assert!(stats.dyn_hits > 0);

    assert_eq!(
        serde_json::to_string(&cold).unwrap(),
        serde_json::to_string(&warm).unwrap(),
        "persisted dynamic cache must reproduce the cold report bitwise"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
