//! Quickstart: find a known-vulnerable function in a stripped firmware
//! image, end to end, in under a minute.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The flow is the paper's Figure 1 at miniature scale: train the
//! deep-learning detector on a small Dataset I, build a stripped device
//! image that embeds the CVE-2018-9412 (`removeUnsynchronization`) analog,
//! statically scan the target library, prune candidates by executing them,
//! and rank the survivors by dynamic similarity.

use patchecko::core::detector::{self, DetectorConfig};
use patchecko::core::pipeline::{Basis, Patchecko, PipelineConfig};
use patchecko::core::similarity;
use patchecko::corpus;
use patchecko::corpus::dataset1::Dataset1Config;
use patchecko::neural::net::TrainConfig;

fn main() {
    // 1. Dataset I: cross-platform training corpus (small here; use
    //    `num_libraries: 100` for the paper scale).
    println!("[1/4] building Dataset I and training the detector...");
    let ds = corpus::build_dataset1(&Dataset1Config {
        num_libraries: 20,
        min_functions: 8,
        max_functions: 14,
        seed: 1,
        include_catalog: true,
    });
    let (det, _history, metrics) = detector::train(
        &ds,
        &DetectorConfig {
            pairs_per_function: 8,
            train: TrainConfig { epochs: 20, batch: 256, lr: 1e-3, seed: 7, ..Default::default() },
            ..DetectorConfig::default()
        },
    );
    println!(
        "      detector: {:.1}% accuracy, AUC {:.3} on held-out pairs",
        metrics.accuracy * 100.0,
        metrics.auc
    );

    // 2. Dataset II + III: the CVE database and a stripped device image.
    println!("[2/4] building the vulnerability database and device image...");
    let db = corpus::build_vulndb(0, 1);
    let catalog = corpus::full_catalog();
    let device = corpus::build_device(&corpus::android_things_spec(), &catalog, 0.1);
    let entry = db.get("CVE-2018-9412").expect("flagship CVE");
    let truth = device.truth_for("CVE-2018-9412").expect("ground truth");
    let target = device.image.binary(&truth.library).expect("host library");
    println!(
        "      image {} has {} libraries, {} functions total",
        device.image.device,
        device.image.binaries.len(),
        device.image.total_functions()
    );

    // 3. The hybrid pipeline.
    println!("[3/4] running the hybrid analysis for CVE-2018-9412...");
    let patchecko = Patchecko::new(det, PipelineConfig::default());
    let analysis = patchecko.analyze_library(target, entry, Basis::Vulnerable).expect("scan failed");
    println!(
        "      static stage: {} of {} functions flagged in {:.3}s",
        analysis.scan.candidates.len(),
        analysis.scan.total,
        analysis.scan.seconds
    );
    println!(
        "      dynamic stage: {} candidates survived execution validation in {:.3}s",
        analysis.dynamic.validated.len(),
        analysis.dynamic.seconds
    );

    // 4. The verdict.
    println!("[4/4] ranking:");
    for (i, r) in analysis.dynamic.ranking.iter().take(3).enumerate() {
        let marker = if r.function_index == truth.function_index { "  <== true target" } else { "" };
        println!("      #{} candidate_{} (distance {:.1}){}", i + 1, r.function_index, r.distance, marker);
    }
    match similarity::rank_of(&analysis.dynamic.ranking, truth.function_index) {
        Some(rank) => println!("\nfound the vulnerable function at rank {rank}."),
        None => println!("\nthe target was not ranked (unexpected at this scale)."),
    }
}
