//! Full firmware audit: scan a device image against the entire CVE
//! database and report, per CVE, whether the device is vulnerable or
//! patched — the deployment scenario of the paper's introduction
//! (penetration-testing a COTS device without source or vendor
//! cooperation).
//!
//! ```text
//! cargo run --release --example firmware_audit [android_things|pixel2xl]
//! ```

use patchecko::core::detector::{self, DetectorConfig};
use patchecko::core::differential::DifferentialConfig;
use patchecko::core::eval;
use patchecko::core::pipeline::{Patchecko, PipelineConfig};
use patchecko::corpus;
use patchecko::corpus::dataset1::Dataset1Config;
use patchecko::neural::net::TrainConfig;

fn main() {
    let device_arg = std::env::args().nth(1).unwrap_or_else(|| "android_things".into());
    let spec = match device_arg.as_str() {
        "pixel2xl" => corpus::pixel2xl_spec(),
        _ => corpus::android_things_spec(),
    };

    println!("training detector...");
    let ds = corpus::build_dataset1(&Dataset1Config {
        num_libraries: 20,
        min_functions: 8,
        max_functions: 14,
        seed: 1,
        include_catalog: true,
    });
    let (det, _, metrics) = detector::train(
        &ds,
        &DetectorConfig {
            pairs_per_function: 8,
            train: TrainConfig { epochs: 20, batch: 256, lr: 1e-3, seed: 7, ..Default::default() },
            ..DetectorConfig::default()
        },
    );
    println!("detector accuracy {:.1}%", metrics.accuracy * 100.0);

    println!("building database and firmware image for {}...", spec.name);
    let db = corpus::build_vulndb(0, 1);
    let catalog = corpus::full_catalog();
    let device = corpus::build_device(&spec, &catalog, 0.1);
    println!(
        "image: {} libraries, {} functions, patch level {}",
        device.image.binaries.len(),
        device.image.total_functions(),
        device.image.patch_level
    );

    let patchecko = Patchecko::new(det, PipelineConfig::default());
    let diff_cfg = DifferentialConfig::default();

    println!("\n{:<16} {:<20} {:>10} {:>10} {:>7}", "CVE", "library", "verdict", "truth", "ok");
    println!("{}", "-".repeat(68));
    let mut correct = 0;
    let mut exposed = Vec::new();
    for entry in db.featured() {
        let (row, _verdict) =
            eval::evaluate_patch_detection(&patchecko, entry, &device, &diff_cfg)
                .expect("patch evaluation failed");
        let verdict = match row.detected_patched {
            Some(true) => "patched",
            Some(false) => "VULNERABLE",
            None => "not found",
        };
        let truth = device.truth_for(&entry.entry.cve).unwrap();
        let ok = row.correct();
        if ok {
            correct += 1;
        }
        if row.detected_patched == Some(false) {
            exposed.push(entry.entry.cve.clone());
        }
        println!(
            "{:<16} {:<20} {:>10} {:>10} {:>7}",
            entry.entry.cve,
            truth.library,
            verdict,
            if truth.patched { "patched" } else { "vulnerable" },
            if ok { "yes" } else { "NO" }
        );
    }
    println!("{}", "-".repeat(68));
    println!(
        "verdict accuracy {}/{} = {:.0}% (paper: 96%)",
        correct,
        db.featured().len(),
        100.0 * correct as f64 / db.featured().len() as f64
    );
    println!("\ndevice is exposed to {} known CVEs:", exposed.len());
    for cve in exposed {
        println!("  - {cve}");
    }
}
