//! Train the deep-learning detector on Dataset I, print the Figure-8
//! curves, and save a reusable model checkpoint.
//!
//! ```text
//! cargo run --release --example train_model [libraries] [epochs]
//! ```
//!
//! With the defaults (100 libraries, 30 epochs) this reproduces the
//! training run of §V-B: ≈2,100 binary variants, tens of thousands of
//! labeled pairs, held-out accuracy above the paper's 93 % detection /
//! 96 % training figures.

use patchecko::core::detector::{self, Detector, DetectorConfig};
use patchecko::corpus;
use patchecko::corpus::dataset1::Dataset1Config;
use patchecko::neural::net::TrainConfig;

fn main() {
    let libraries: usize =
        std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(100);
    let epochs: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(30);

    println!("building Dataset I ({libraries} libraries x 4 ISAs x 6 opt levels)...");
    let started = std::time::Instant::now();
    let ds = corpus::build_dataset1(&Dataset1Config {
        num_libraries: libraries,
        min_functions: 12,
        max_functions: 20,
        seed: 1,
        include_catalog: true,
    });
    println!(
        "  {} binary variants, {} function samples, built in {:.1}s \
         (paper: 2,108 binaries, 2,037,772 samples)",
        ds.variants.len(),
        ds.total_function_samples(),
        started.elapsed().as_secs_f64()
    );

    println!("training the 6-layer pair classifier ({epochs} epochs)...");
    let cfg = DetectorConfig {
        pairs_per_function: 12,
        train: TrainConfig { epochs, batch: 256, lr: 1e-3, seed: 7, ..Default::default() },
        ..DetectorConfig::default()
    };
    let t0 = std::time::Instant::now();
    let (det, history, metrics) = detector::train(&ds, &cfg);
    println!("  trained in {:.1}s", t0.elapsed().as_secs_f64());

    println!("\nFigure 8 curves:");
    println!("{:>6} {:>10} {:>10} {:>11} {:>11}", "epoch", "train_acc", "val_acc", "train_loss", "val_loss");
    for e in &history.epochs {
        println!(
            "{:>6} {:>10.4} {:>10.4} {:>11.4} {:>11.4}",
            e.epoch, e.train_acc, e.val_acc, e.train_loss, e.val_loss
        );
    }
    println!(
        "\nheld-out test: accuracy {:.2}% | AUC {:.4} | {} pairs \
         (paper: ~96% training accuracy, >93% detection)",
        metrics.accuracy * 100.0,
        metrics.auc,
        metrics.pairs
    );

    // Save and reload the checkpoint to demonstrate model persistence.
    let path = std::env::temp_dir().join("patchecko_detector.json");
    let json = serde_json_write(&det);
    std::fs::write(&path, &json).expect("write checkpoint");
    println!("\nsaved checkpoint to {} ({} KiB)", path.display(), json.len() / 1024);
    let reloaded: Detector = serde_json_read(&std::fs::read_to_string(&path).unwrap());
    assert_eq!(reloaded.threshold, det.threshold);
    println!("checkpoint reloads cleanly.");
}

fn serde_json_write(det: &Detector) -> String {
    serde_json::to_string(det).expect("serialize detector")
}

fn serde_json_read(s: &str) -> Detector {
    serde_json::from_str(s).expect("deserialize detector")
}
