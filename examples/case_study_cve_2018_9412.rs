//! The §IV case study: CVE-2018-9412, `ID3::removeUnsynchronization` in
//! `libstagefright`.
//!
//! ```text
//! cargo run --release --example case_study_cve_2018_9412
//! ```
//!
//! Walks the exact narrative of the paper's Implementation & Case-Study
//! section: show the vulnerable and patched source (Figure 6), extract
//! features, locate the candidate set with the deep model, fuzz the
//! reference function for execution environments, prune candidates by
//! execution, rank by dynamic Minkowski similarity (Tables III-V), and run
//! the differential engine to decide the patch is absent.

use patchecko::core::detector::{self, DetectorConfig};
use patchecko::core::differential::{self, DifferentialConfig};
use patchecko::core::pipeline::{Basis, Patchecko, PipelineConfig};
use patchecko::core::similarity;
use patchecko::corpus::{self, catalog};
use patchecko::corpus::dataset1::Dataset1Config;
use patchecko::fwlang::pretty;
use patchecko::neural::net::TrainConfig;

fn main() {
    // --- Figure 6: the source-level view (unpadded cores for clarity) ---
    let (vuln_core, patched_core, _) = catalog::remove_unsynchronization();
    println!("=== Figure 6 (left): vulnerable removeUnsynchronization ===\n");
    println!("{}", pretty::function(&vuln_core));
    println!("=== Figure 6 (right): patched removeUnsynchronization ===\n");
    println!("{}", pretty::function(&patched_core));
    println!(
        "the patch removed the memmove and added one more if condition for\n\
         value checking — exactly the paper's description.\n"
    );

    // --- Train the detector ---
    println!("=== training the deep-learning detector ===");
    let ds = corpus::build_dataset1(&Dataset1Config {
        num_libraries: 20,
        min_functions: 8,
        max_functions: 14,
        seed: 1,
        include_catalog: true,
    });
    let (det, _, metrics) = detector::train(
        &ds,
        &DetectorConfig {
            pairs_per_function: 8,
            train: TrainConfig { epochs: 20, batch: 256, lr: 1e-3, seed: 7, ..Default::default() },
            ..DetectorConfig::default()
        },
    );
    println!("detector accuracy {:.1}% (paper: >93%)\n", metrics.accuracy * 100.0);

    // --- The target: Android Things 1.0's libstagefright, stripped ---
    let db = corpus::build_vulndb(0, 1);
    let entry = db.get("CVE-2018-9412").unwrap();
    let device = corpus::build_device(&corpus::android_things_spec(), &corpus::full_catalog(), 0.1);
    let truth = device.truth_for("CVE-2018-9412").unwrap();
    let bin = device.image.binary("libstagefright").unwrap();
    println!(
        "=== target: {} in {} ({} functions, stripped: {}) ===\n",
        truth.library,
        device.image.device,
        bin.function_count(),
        bin.is_stripped()
    );

    let patchecko = Patchecko::new(det, PipelineConfig::default());

    // --- Vulnerability detection by deep learning ---
    let analysis = patchecko.analyze_library(bin, entry, Basis::Vulnerable).expect("scan failed");
    println!(
        "deep learning stage: {} candidate functions of {} total \
         (paper: 252 of 5,646)",
        analysis.scan.candidates.len(),
        analysis.scan.total
    );

    // --- Dynamic analysis engine ---
    println!(
        "execution validation: {} candidates survived the input validation \
         (paper: 38 of 252)",
        analysis.dynamic.validated.len()
    );
    println!("\n=== Table III analog: dynamic features of survivors (env-averaged) ===");
    print!("{:<18}", "candidate");
    for f in [1usize, 6, 7, 9, 10, 13, 14, 18, 20] {
        print!("{:>8}", format!("F{f}"));
    }
    println!();
    for (cand, profile) in &analysis.dynamic.profiles {
        let avg = |idx: usize| -> f64 {
            profile.iter().map(|p| p.feature(idx)).sum::<f64>() / profile.len().max(1) as f64
        };
        print!("{:<18}", format!("candidate_{cand}"));
        for f in [1usize, 6, 7, 9, 10, 13, 14, 18, 20] {
            print!("{:>8.1}", avg(f));
        }
        let marker = if *cand == truth.function_index { "  <== removeUnsynchronization" } else { "" };
        println!("{marker}");
    }

    // --- Calculating function similarity (Table IV) ---
    println!("\n=== Table IV analog: similarity ranking (vulnerable basis) ===");
    for (i, r) in analysis.dynamic.ranking.iter().take(10).enumerate() {
        let name = device.ground_truth_name(&truth.library, r.function_index).unwrap_or("?");
        println!("  #{:<2} candidate_{:<4} sim {:>8.1}   {}", i + 1, r.function_index, r.distance, name);
    }
    let rank = similarity::rank_of(&analysis.dynamic.ranking, truth.function_index);
    println!("true target rank: {rank:?} (paper: #1, sim 34.7 vs 68.1 for #2)");

    // --- Differential analysis engine ---
    println!("\n=== differential engine: is it patched? ===");
    let verdict = differential::detect_patch(
        &patchecko,
        entry,
        bin,
        truth.function_index,
        &DifferentialConfig::default(),
    )
    .expect("differential analysis failed");
    println!(
        "dynamic similarity: {:.1} vs vulnerable ref, {:.1} vs patched ref \
         (paper: 34.7 vs 65.6)",
        verdict.dyn_dist_vulnerable, verdict.dyn_dist_patched
    );
    println!(
        "signature: target imports {:?}; vulnerable ref has memmove: {}, patched ref: {}",
        verdict.signature.target_imports,
        verdict.signature.vuln_imports.contains(&"memmove".to_string()),
        verdict.signature.patched_imports.contains(&"memmove".to_string()),
    );
    println!(
        "verdict: {} (ground truth: {}) — the paper concludes the same: \
         \"the target function is still vulnerable and not patched\"",
        if verdict.patched { "PATCHED" } else { "STILL VULNERABLE" },
        if truth.patched { "patched" } else { "vulnerable" }
    );
}
