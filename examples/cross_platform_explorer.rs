//! Cross-platform explorer: one source function, compiled 24 ways.
//!
//! ```text
//! cargo run --release --example cross_platform_explorer [seed]
//! ```
//!
//! Demonstrates the core premise of §II-A — "different cross-platform
//! compilations with different levels of optimization produce different
//! binary programs from identical source code" — by compiling one function
//! for every (architecture, optimization) pair, printing how the key
//! Table I static features drift, and verifying that runtime behaviour
//! stays identical everywhere (the invariant the dynamic stage rests on).

use patchecko::disasm;
use patchecko::fwbin::{compile_library, Arch, OptLevel};
use patchecko::fwlang::gen::Generator;
use patchecko::fwlang::pretty;
use patchecko::vm::env::ExecEnv;
use patchecko::vm::exec::VmConfig;
use patchecko::vm::loader::LoadedBinary;
use patchecko::core::features;

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(11);
    let mut lib = patchecko::fwlang::Library::new("libexplore");
    let mut g = Generator::new(seed);
    let f = g.any_function(&mut lib, "subject");
    lib.functions.push(f.clone());

    println!("=== source (seed {seed}) ===\n");
    println!("{}", pretty::function(&f));

    println!(
        "=== the same function on 24 platforms ===\n\n{:<7} {:<6} {:>6} {:>7} {:>6} {:>6} {:>8} {:>8}",
        "arch", "opt", "insts", "bytes", "blocks", "edges", "spills*8", "result"
    );
    println!("{}", "-".repeat(64));

    let env = ExecEnv::for_buffer((0..24).map(|x| x * 7).collect(), &[5, 2]);
    let vm_cfg = VmConfig::default();
    let mut results = Vec::new();
    for arch in Arch::ALL {
        for opt in OptLevel::ALL {
            let bin = compile_library(&lib, arch, opt).expect("compiles");
            let dis = disasm::disassemble(&bin, 0).expect("decodes");
            let feats = features::extract(&dis, &bin.functions[0]);
            let loaded = LoadedBinary::load(bin).expect("loads");
            let run = loaded.run_any(0, &env, &vm_cfg);
            let result = match run.outcome {
                patchecko::vm::Outcome::Returned(v) => format!("{}", v.as_int()),
                other => format!("{other:?}"),
            };
            println!(
                "{:<7} {:<6} {:>6} {:>7} {:>6} {:>6} {:>8} {:>8}",
                arch.name(),
                opt.name(),
                feats.by_name("num_inst").unwrap(),
                feats.by_name("size_fun").unwrap(),
                feats.by_name("num_bb").unwrap(),
                feats.by_name("num_edge").unwrap(),
                feats.by_name("size_local").unwrap(),
                result
            );
            results.push(result);
        }
    }

    results.dedup();
    println!("{}", "-".repeat(64));
    if results.len() == 1 {
        println!(
            "all 24 builds return {} on the same input — instruction streams\n\
             differ by up to several x, behaviour does not. This is the gap the\n\
             static stage must bridge (deep learning) and the invariant the\n\
             dynamic stage exploits (Minkowski over runtime features).",
            results[0]
        );
    } else {
        println!("UNEXPECTED: builds disagree: {results:?}");
        std::process::exit(1);
    }
}
