//! End-to-end integration tests: the full PATCHECKO workflow against
//! miniature device images, spanning every crate in the workspace.

use patchecko::core::detector::{self, Detector, DetectorConfig};
use patchecko::core::differential::{self, DifferentialConfig};
use patchecko::core::eval;
use patchecko::core::pipeline::{Basis, Patchecko, PipelineConfig};
use patchecko::core::similarity;
use patchecko::corpus;
use patchecko::corpus::dataset1::Dataset1Config;
use patchecko::neural::net::TrainConfig;
use std::sync::OnceLock;

fn shared_patchecko() -> &'static Patchecko {
    static P: OnceLock<Patchecko> = OnceLock::new();
    P.get_or_init(|| {
        let ds = corpus::build_dataset1(&Dataset1Config {
            num_libraries: 20,
            min_functions: 8,
            max_functions: 14,
            seed: 1,
            include_catalog: true,
        });
        let cfg = DetectorConfig {
            pairs_per_function: 12,
            train: TrainConfig { epochs: 40, batch: 256, lr: 1e-3, seed: 3, ..Default::default() },
            ..DetectorConfig::default()
        };
        let (det, history, metrics) = detector::train(&ds, &cfg);
        // The headline claims hold even at 1/5 scale.
        assert!(metrics.accuracy > 0.88, "detector accuracy {}", metrics.accuracy);
        assert!(metrics.auc > 0.92, "AUC {}", metrics.auc);
        assert_eq!(history.epochs.len(), cfg.train.epochs);
        Patchecko::new(det, PipelineConfig::default())
    })
}

fn shared_device() -> &'static corpus::DeviceBuild {
    static D: OnceLock<corpus::DeviceBuild> = OnceLock::new();
    D.get_or_init(|| {
        corpus::build_device(&corpus::android_things_spec(), &corpus::full_catalog(), 0.06)
    })
}

fn shared_db() -> &'static corpus::VulnDb {
    static DB: OnceLock<corpus::VulnDb> = OnceLock::new();
    DB.get_or_init(|| corpus::build_vulndb(0, 1))
}

#[test]
fn flagship_hybrid_detection_ranks_target_top3() {
    let p = shared_patchecko();
    let device = shared_device();
    let entry = shared_db().get("CVE-2018-9412").unwrap();
    let truth = device.truth_for("CVE-2018-9412").unwrap();
    let bin = device.image.binary(&truth.library).unwrap();

    let analysis = p.analyze_library(bin, entry, Basis::Vulnerable).unwrap();
    assert!(analysis.scan.candidates.contains(&truth.function_index), "static stage keeps target");
    assert!(analysis.dynamic.validated.contains(&truth.function_index), "target survives envs");
    let rank = similarity::rank_of(&analysis.dynamic.ranking, truth.function_index).unwrap();
    assert!(rank <= 3, "paper: top-3 100% of the time, got {rank}");
    // Dynamic pruning is monotone.
    assert!(analysis.dynamic.validated.len() <= analysis.scan.candidates.len());
}

#[test]
fn patch_verdicts_for_representative_cves() {
    let p = shared_patchecko();
    let device = shared_device();
    let db = shared_db();
    let diff = DifferentialConfig::default();

    // Flagship: present and vulnerable on Android Things.
    let (row, _) =
        eval::evaluate_patch_detection(p, db.get("CVE-2018-9412").unwrap(), device, &diff).unwrap();
    assert_eq!(row.detected_patched, Some(false));
    assert!(row.correct());

    // A patched 2017 CVE: verdict must flip.
    let (row, _) =
        eval::evaluate_patch_detection(p, db.get("CVE-2017-13232").unwrap(), device, &diff).unwrap();
    assert_eq!(row.detected_patched, Some(true));
    assert!(row.correct());

    // The paper's single Table VIII miss: one-integer patch, reported
    // "patched" against a not-patched ground truth via the tie-break.
    let (row, verdict) =
        eval::evaluate_patch_detection(p, db.get("CVE-2018-9470").unwrap(), device, &diff).unwrap();
    assert_eq!(row.detected_patched, Some(true), "the deliberate miss");
    assert!(!row.truth_patched);
    assert!(!row.correct());
    assert!(verdict.unwrap().tie_break, "9470 must be decided by the tie-break");
}

#[test]
fn heavy_patch_misses_vulnerable_basis_but_not_patched_basis() {
    // The paper's CVE-2017-13209 behaviour (patched on Android Things with
    // a restructuring patch): the vulnerable-basis deep model misses the
    // target; the patched basis finds it.
    let p = shared_patchecko();
    let device = shared_device();
    let entry = shared_db().get("CVE-2017-13209").unwrap();
    let truth = device.truth_for("CVE-2017-13209").unwrap();
    assert!(truth.patched);
    let bin = device.image.binary(&truth.library).unwrap();

    let va = p.analyze_library(bin, entry, Basis::Vulnerable).unwrap();
    assert!(
        !va.scan.candidates.contains(&truth.function_index),
        "vulnerable basis misses the heavily-patched target (Table VI row)"
    );
    let pa = p.analyze_library(bin, entry, Basis::Patched).unwrap();
    assert!(
        pa.scan.candidates.contains(&truth.function_index),
        "patched basis finds it (Table VII row)"
    );
    let rank = similarity::rank_of(&pa.dynamic.ranking, truth.function_index).unwrap();
    assert!(rank <= 3);
}

#[test]
fn differential_engine_memmove_signature() {
    // The case study's key signal: the memmove import distinguishes the
    // vulnerable flagship build from the patched one.
    let p = shared_patchecko();
    let device = shared_device();
    let entry = shared_db().get("CVE-2018-9412").unwrap();
    let truth = device.truth_for("CVE-2018-9412").unwrap();
    let bin = device.image.binary(&truth.library).unwrap();
    let v = differential::detect_patch(
        p,
        entry,
        bin,
        truth.function_index,
        &DifferentialConfig::default(),
    )
    .unwrap();
    assert!(v.signature.vuln_imports.contains(&"memmove".to_string()));
    assert!(!v.signature.patched_imports.contains(&"memmove".to_string()));
    assert!(v.signature.target_imports.contains(&"memmove".to_string()));
    assert!(!v.patched);
}

#[test]
fn detector_checkpoint_roundtrips_through_json() {
    let p = shared_patchecko();
    let json = serde_json::to_string(&p.detector).unwrap();
    let back: Detector = serde_json::from_str(&json).unwrap();
    // Same predictions after reload.
    let entry = shared_db().get("CVE-2018-9451").unwrap();
    let f = Patchecko::reference_features(entry, Basis::Vulnerable).unwrap();
    let g = Patchecko::reference_features(entry, Basis::Patched).unwrap();
    assert_eq!(p.detector.similarity(&f, &g), back.similarity(&f, &g));
}

#[test]
fn whole_image_audit_matches_ground_truth() {
    // The deployment flow: audit the full image with no ground truth, then
    // score against the held-out truth — accuracy must reach the paper's
    // ballpark even at test scale.
    let p = shared_patchecko();
    let device = shared_device();
    let db = shared_db();
    let report = eval::audit_image(
        p,
        db,
        &device.image,
        &patchecko::core::DifferentialConfig::default(),
    )
    .unwrap();
    assert_eq!(report.findings.len(), 25);
    assert_eq!(report.device, "android_things_1.0");
    let mut correct = 0;
    for f in &report.findings {
        let truth = device.truth_for(&f.cve).unwrap();
        let verdict_patched = match f.status {
            patchecko::core::AuditStatus::Patched => Some(true),
            patchecko::core::AuditStatus::Vulnerable => Some(false),
            patchecko::core::AuditStatus::NotFound | patchecko::core::AuditStatus::Error => None,
        };
        if verdict_patched == Some(truth.patched) {
            correct += 1;
        }
    }
    assert!(correct >= 21, "audit accuracy {correct}/25");
    // The markdown report is complete.
    let md = report.to_markdown();
    assert!(md.contains("CVE-2018-9412"));
    assert!(md.contains("Exposed to"));
}

#[test]
fn image_analysis_locates_best_match_in_right_library() {
    let p = shared_patchecko();
    let device = shared_device();
    let entry = shared_db().get("CVE-2018-9412").unwrap();
    let truth = device.truth_for("CVE-2018-9412").unwrap();
    let result = p.analyze_image(&device.image, entry, Basis::Vulnerable).unwrap();
    assert_eq!(result.analyses.len(), device.image.binaries.len());
    let best = result.best.expect("flagship is present");
    assert_eq!(best.library, truth.library, "best match lands in the right library");
    assert_eq!(best.function_index, truth.function_index);
}

#[test]
fn exploit_channel_perfects_table8_at_test_scale() {
    // The §V-D ablation, as a regression test: with PoCs, every verdict on
    // the small device is correct, including CVE-2018-9470.
    let p = shared_patchecko();
    let device = shared_device();
    let db = shared_db();
    let cfg = patchecko::core::DifferentialConfig {
        use_exploit_channel: true,
        ..Default::default()
    };
    let (row, verdict) =
        eval::evaluate_patch_detection(p, db.get("CVE-2018-9470").unwrap(), device, &cfg).unwrap();
    assert!(row.correct(), "exploit channel resolves the tiny patch: {verdict:?}");
}

#[test]
fn cve_rows_are_internally_consistent() {
    let p = shared_patchecko();
    let device = shared_device();
    for cve in ["CVE-2018-9451", "CVE-2017-13208", "CVE-2018-9498"] {
        let entry = shared_db().get(cve).unwrap();
        let (row, analysis) = eval::evaluate_cve(p, entry, device, Basis::Vulnerable).unwrap();
        assert_eq!(row.tp + row.tn + row.fp + row.fn_, row.total as u32);
        assert_eq!(row.tp + row.fn_, 1);
        assert_eq!(row.execution, analysis.dynamic.validated.len());
        assert!(row.fp_percent <= 100.0);
        if row.tp == 1 {
            assert!(row.ranking.is_some(), "{cve}: found targets must be ranked");
        }
    }
}
