//! Cross-crate property-based tests (proptest): compiler semantic
//! preservation, codec roundtrips through the full container, patch
//! application laws, and similarity metric axioms on realistic vectors.

use patchecko::fwbin::{compile_library, Arch, Binary, OptLevel};
use patchecko::fwlang::gen::Generator;
use patchecko::fwlang::patch::Patch;
use patchecko::vm::env::ExecEnv;
use patchecko::vm::exec::VmConfig;
use patchecko::vm::loader::LoadedBinary;
use patchecko::vm::Outcome;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The optimizer is behaviour-preserving: any generated function, on
    /// any input, returns the same value at O0 and O3 (and the same
    /// outcome class when it does not terminate normally).
    #[test]
    fn optimizer_preserves_semantics(
        seed in 0u64..5000,
        input in proptest::collection::vec(any::<u8>(), 0..48),
        x1 in 0i64..64,
        x2 in -8i64..8,
    ) {
        let lib = Generator::new(seed).library_sized("libprop", 3);
        let o0 = LoadedBinary::load(compile_library(&lib, Arch::Arm64, OptLevel::O0).unwrap()).unwrap();
        let o3 = LoadedBinary::load(compile_library(&lib, Arch::Arm64, OptLevel::O3).unwrap()).unwrap();
        let env = ExecEnv::for_buffer(input, &[x1, x2]);
        let cfg = VmConfig::default();
        for f in 0..3 {
            let a = o0.run_any(f, &env, &cfg);
            let b = o3.run_any(f, &env, &cfg);
            match (a.outcome, b.outcome) {
                (Outcome::Returned(x), Outcome::Returned(y)) =>
                    prop_assert_eq!(x.as_int(), y.as_int(), "fn {}", f),
                (x, y) => prop_assert_eq!(x.is_ok(), y.is_ok(), "fn {}: {:?} vs {:?}", f, x, y),
            }
        }
    }

    /// Cross-architecture equivalence: x86's two-operand legalization and
    /// spill-heavy allocation never change results.
    #[test]
    fn architectures_preserve_semantics(
        seed in 5000u64..8000,
        input in proptest::collection::vec(any::<u8>(), 1..32),
    ) {
        let lib = Generator::new(seed).library_sized("libprop", 2);
        let a = LoadedBinary::load(compile_library(&lib, Arch::X86, OptLevel::O2).unwrap()).unwrap();
        let b = LoadedBinary::load(compile_library(&lib, Arch::Arm64, OptLevel::O2).unwrap()).unwrap();
        let env = ExecEnv::for_buffer(input, &[2, 1]);
        let cfg = VmConfig::default();
        for f in 0..2 {
            let ra = a.run_any(f, &env, &cfg);
            let rb = b.run_any(f, &env, &cfg);
            match (ra.outcome, rb.outcome) {
                (Outcome::Returned(x), Outcome::Returned(y)) =>
                    prop_assert_eq!(x.as_int(), y.as_int()),
                (x, y) => prop_assert_eq!(x.is_ok(), y.is_ok()),
            }
        }
    }

    /// The FWB container roundtrips any compiled binary bit-exactly.
    #[test]
    fn container_roundtrip(seed in 0u64..10000, strip in any::<bool>()) {
        let lib = Generator::new(seed).library_sized("libprop", 4);
        let mut bin = compile_library(&lib, Arch::Amd64, OptLevel::O1).unwrap();
        if strip {
            bin.strip();
        }
        let back = Binary::from_bytes(&bin.to_bytes()).unwrap();
        prop_assert_eq!(bin, back);
    }

    /// Patch application is deterministic and never mutates its input.
    #[test]
    fn patch_application_is_pure(seed in 0u64..3000, min_len in 1i64..16) {
        let mut lib = patchecko::fwlang::Library::new("libprop");
        let mut g = Generator::new(seed);
        let f = g.any_function(&mut lib, "target");
        let before = f.clone();
        let patch = Patch::BoundsGuard { len_param: 1, min_len, reject: Some(-1) };
        let p1 = patch.apply(&f);
        let p2 = patch.apply(&f);
        prop_assert_eq!(&f, &before, "input unchanged");
        prop_assert_eq!(&p1, &p2, "deterministic");
        prop_assert_ne!(&p1.body, &f.body, "patch changes the body");
    }

    /// Minkowski distance satisfies the metric axioms on dynamic-feature
    /// sized vectors for the paper's p = 3 (and 1, 2).
    #[test]
    fn minkowski_metric_axioms(
        a in proptest::collection::vec(0.0f64..1e4, 21),
        b in proptest::collection::vec(0.0f64..1e4, 21),
        c in proptest::collection::vec(0.0f64..1e4, 21),
    ) {
        use patchecko::core::minkowski;
        for p in [1.0, 2.0, 3.0] {
            prop_assert!(minkowski(&a, &a, p).abs() < 1e-9);
            prop_assert!((minkowski(&a, &b, p) - minkowski(&b, &a, p)).abs() < 1e-9);
            let direct = minkowski(&a, &c, p);
            let via = minkowski(&a, &b, p) + minkowski(&b, &c, p);
            prop_assert!(direct <= via + 1e-6, "triangle inequality: {} > {}", direct, via);
        }
    }

    /// Dynamic features are reproducible: the same function under the same
    /// environment yields the identical 21-feature vector.
    #[test]
    fn dynamic_features_deterministic(
        seed in 0u64..2000,
        input in proptest::collection::vec(any::<u8>(), 0..24),
    ) {
        let lib = Generator::new(seed).library_sized("libprop", 2);
        let loaded = LoadedBinary::load(compile_library(&lib, Arch::Arm32, OptLevel::O2).unwrap()).unwrap();
        let env = ExecEnv::for_buffer(input, &[1, 2]);
        let cfg = VmConfig::default();
        let a = loaded.run_any(0, &env, &cfg);
        let b = loaded.run_any(0, &env, &cfg);
        prop_assert_eq!(a.outcome, b.outcome);
        prop_assert_eq!(a.features, b.features);
    }
}
