//! Cross-platform semantic-equivalence integration tests: the same source
//! function compiled for any (architecture, optimization level) pair must
//! behave identically in the VM — the invariant PATCHECKO's whole dynamic
//! stage rests on.

use patchecko::fwbin::{compile_library, Arch, OptLevel};
use patchecko::fwlang::gen::Generator;
use patchecko::vm::env::ExecEnv;
use patchecko::vm::exec::VmConfig;
use patchecko::vm::loader::LoadedBinary;
use patchecko::vm::Outcome;

/// Run every function of `lib` on `envs` for every platform combination
/// and assert identical outcomes (same return value, or both non-normal).
fn assert_equivalent_behaviour(seed: u64, n_funcs: usize, envs: &[ExecEnv]) {
    let lib = Generator::new(seed).library_sized("libeq", n_funcs);
    let vm_cfg = VmConfig::default();

    // Reference platform.
    let ref_bin = compile_library(&lib, Arch::Arm64, OptLevel::O0).unwrap();
    let ref_loaded = LoadedBinary::load(ref_bin).unwrap();

    for arch in Arch::ALL {
        for opt in OptLevel::ALL {
            if arch == Arch::Arm64 && opt == OptLevel::O0 {
                continue;
            }
            let bin = compile_library(&lib, arch, opt).unwrap();
            let loaded = LoadedBinary::load(bin).unwrap();
            for f in 0..lib.functions.len() {
                for (ei, env) in envs.iter().enumerate() {
                    let a = ref_loaded.run_any(f, env, &vm_cfg);
                    let b = loaded.run_any(f, env, &vm_cfg);
                    match (&a.outcome, &b.outcome) {
                        (Outcome::Returned(x), Outcome::Returned(y)) => assert_eq!(
                            x.as_int(),
                            y.as_int(),
                            "fn {} ({}) env {ei}: arm64/O0 vs {arch}/{opt}",
                            f,
                            lib.functions[f].name
                        ),
                        // Both abnormal is acceptable (fault kind can vary
                        // with evaluation order at different opt levels).
                        (x, y) => assert_eq!(
                            x.is_ok(),
                            y.is_ok(),
                            "fn {} env {ei}: {x:?} vs {y:?} on {arch}/{opt}",
                            f
                        ),
                    }
                    // Memory side effects on the input buffer must agree
                    // when both runs complete.
                    if a.outcome.is_ok() && b.outcome.is_ok() {
                        assert_eq!(
                            a.features.feature(21),
                            b.features.feature(21),
                            "syscall counts must be identical"
                        );
                        assert_eq!(
                            a.features.feature(20),
                            b.features.feature(20),
                            "library call counts must be identical"
                        );
                    }
                }
            }
        }
    }
}

fn standard_envs() -> Vec<ExecEnv> {
    vec![
        ExecEnv::for_buffer(vec![0u8; 8], &[3, 1]),
        ExecEnv::for_buffer((0..32).collect(), &[5, 2]),
        ExecEnv::for_buffer(vec![0xff, 0x00, 0xff, 0x00, 0x42, 0x42], &[1, 0]),
        ExecEnv::for_buffer(vec![7], &[0, 0]),
    ]
}

#[test]
fn generated_functions_behave_identically_across_24_platform_combos() {
    assert_equivalent_behaviour(101, 8, &standard_envs());
}

#[test]
fn second_seed_also_equivalent() {
    assert_equivalent_behaviour(202, 8, &standard_envs());
}

#[test]
fn catalog_functions_behave_identically_across_platforms() {
    let vm_cfg = VmConfig::default();
    let envs = standard_envs();
    for entry in patchecko::corpus::full_catalog() {
        for patched in [false, true] {
            let lib = patchecko::corpus::catalog::reference_library(&entry, patched);
            let ref_loaded = LoadedBinary::load(
                compile_library(&lib, Arch::Arm64, OptLevel::O1).unwrap(),
            )
            .unwrap();
            for (arch, opt) in
                [(Arch::X86, OptLevel::O3), (Arch::Arm32, OptLevel::O2), (Arch::Amd64, OptLevel::Oz)]
            {
                let loaded =
                    LoadedBinary::load(compile_library(&lib, arch, opt).unwrap()).unwrap();
                for env in &envs {
                    let a = ref_loaded.run_any(0, env, &vm_cfg);
                    let b = loaded.run_any(0, env, &vm_cfg);
                    match (&a.outcome, &b.outcome) {
                        (Outcome::Returned(x), Outcome::Returned(y)) => assert_eq!(
                            x.as_int(),
                            y.as_int(),
                            "{} ({}patched) on {arch}/{opt}",
                            entry.cve,
                            if patched { "" } else { "un" }
                        ),
                        (x, y) => {
                            assert_eq!(x.is_ok(), y.is_ok(), "{}: {x:?} vs {y:?}", entry.cve)
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn input_buffer_mutations_agree_across_platforms() {
    // Functions that write to the buffer must produce identical final
    // buffer contents regardless of compilation target.
    let lib = Generator::new(303).library_sized("libmut", 10);
    let vm_cfg = VmConfig::default();
    let a = LoadedBinary::load(compile_library(&lib, Arch::X86, OptLevel::O0).unwrap()).unwrap();
    let b = LoadedBinary::load(compile_library(&lib, Arch::Arm64, OptLevel::Ofast).unwrap()).unwrap();
    for f in 0..lib.functions.len() {
        let env = ExecEnv::for_buffer((0..24).collect(), &[9, 4]);
        // Re-run through the VM keeping the mutated buffer.
        let ra = {
            let image_env = env.clone();
            let r = a.run_any(f, &image_env, &vm_cfg);
            (r.outcome.is_ok(), r.features.feature(12))
        };
        let rb = {
            let r = b.run_any(f, &env, &vm_cfg);
            (r.outcome.is_ok(), r.features.feature(12))
        };
        assert_eq!(ra.0, rb.0, "fn {f} outcome class");
        // Store counts can differ (O0 spills) but byte-level buffer writes
        // to the anon region must not: compare anon write+read traffic
        // parity via region access equality is too strict across opts, so
        // assert only outcome equivalence here; exact value equality is
        // covered by the return-value tests above.
    }
}
