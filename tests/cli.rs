//! End-to-end tests of the `patchecko` command-line binary: the full
//! operator workflow over on-disk artifacts (model checkpoint, `.fwb`
//! image directory, Markdown report).

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_patchecko"))
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("patchecko_cli_test_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn help_and_errors() {
    let out = bin().arg("help").output().unwrap();
    assert!(out.status.success());
    let help = String::from_utf8_lossy(&out.stderr);
    assert!(help.contains("patchecko train"));
    assert!(help.contains("patch-check"));

    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = bin().arg("scan").output().unwrap();
    assert!(!out.status.success(), "missing flags must fail");
}

#[test]
fn list_and_inspect() {
    let out = bin().arg("list-cves").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("CVE-2018-9412"));
    assert!(text.contains("libstagefright"));
    assert_eq!(text.lines().count(), 26, "header + 25 CVEs");

    let out = bin().args(["inspect", "--cve", "CVE-2018-9412", "--asm"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("memmove"), "vulnerable source shows the memmove");
    assert!(text.contains("bb0:"), "assembly listing present");

    let out = bin().args(["inspect", "--cve", "CVE-2018-9412", "--patched"]).output().unwrap();
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(!text.contains("memmove("), "patched source has no memmove call");

    let out = bin().args(["inspect", "--cve", "CVE-0000-0000"]).output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn train_build_scan_roundtrip() {
    let dir = tmpdir("roundtrip");
    let model = dir.join("model.json");
    let image = dir.join("image");

    // Train a small model.
    let out = bin()
        .args([
            "train",
            "--out",
            model.to_str().unwrap(),
            "--libs",
            "10",
            "--epochs",
            "8",
            "--pairs",
            "6",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(model.exists());

    // Build a tiny on-disk image.
    let out = bin()
        .args([
            "build-image",
            "--device",
            "android_things",
            "--out",
            image.to_str().unwrap(),
            "--scale",
            "0.04",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(image.join("libstagefright.fwb").exists());
    assert!(image.join("image.json").exists());

    // Scan for the flagship CVE.
    let out = bin()
        .args([
            "scan",
            "--model",
            model.to_str().unwrap(),
            "--image",
            image.to_str().unwrap(),
            "--cve",
            "CVE-2018-9412",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("best match: libstagefright:"), "scan output: {text}");

    // Patch-check the same CVE: vulnerable on Android Things.
    let out = bin()
        .args([
            "patch-check",
            "--model",
            model.to_str().unwrap(),
            "--image",
            image.to_str().unwrap(),
            "--cve",
            "CVE-2018-9412",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("STILL VULNERABLE"), "patch-check output: {text}");

    let _ = std::fs::remove_dir_all(&dir);
}
