//! End-to-end tests of the `patchecko` command-line binary: the full
//! operator workflow over on-disk artifacts (model checkpoint, `.fwb`
//! image directory, Markdown report).

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_patchecko"))
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("patchecko_cli_test_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn help_and_errors() {
    let out = bin().arg("help").output().unwrap();
    assert!(out.status.success());
    let help = String::from_utf8_lossy(&out.stderr);
    assert!(help.contains("patchecko train"));
    assert!(help.contains("patch-check"));

    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = bin().arg("scan").output().unwrap();
    assert!(!out.status.success(), "missing flags must fail");
}

#[test]
fn list_and_inspect() {
    let out = bin().arg("list-cves").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("CVE-2018-9412"));
    assert!(text.contains("libstagefright"));
    assert_eq!(text.lines().count(), 26, "header + 25 CVEs");

    let out = bin().args(["inspect", "--cve", "CVE-2018-9412", "--asm"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("memmove"), "vulnerable source shows the memmove");
    assert!(text.contains("bb0:"), "assembly listing present");

    let out = bin().args(["inspect", "--cve", "CVE-2018-9412", "--patched"]).output().unwrap();
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(!text.contains("memmove("), "patched source has no memmove call");

    let out = bin().args(["inspect", "--cve", "CVE-0000-0000"]).output().unwrap();
    assert!(!out.status.success());
}

/// Parse the dynamic-lane counters out of a `cache: ...` stderr line:
/// `(hits, misses, profiled)` from
/// `"...; dyn: H hits / M misses, P profiled, E entries, Q quarantined"`.
fn dyn_counters(stderr: &str) -> (u64, u64, u64) {
    let line = stderr
        .lines()
        .find(|l| l.starts_with("cache: ") && l.contains("dyn: "))
        .unwrap_or_else(|| panic!("no cache-stats line in stderr:\n{stderr}"));
    let dyn_part = line.split("dyn: ").nth(1).unwrap();
    let nums: Vec<u64> = dyn_part
        .split(|c: char| !c.is_ascii_digit())
        .filter(|s| !s.is_empty())
        .map(|s| s.parse().unwrap())
        .collect();
    assert!(nums.len() >= 3, "short dyn segment: {dyn_part}");
    (nums[0], nums[1], nums[2])
}

#[test]
fn batch_audit_exit_codes_and_dyn_cache_stats() {
    let dir = tmpdir("batch_dyn");
    let model = dir.join("model.json");
    let image = dir.join("image");
    let cache = dir.join("cache");

    let out = bin()
        .args(["train", "--out", model.to_str().unwrap(), "--libs", "10", "--epochs", "8", "--pairs", "6"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let out = bin()
        .args(["build-image", "--device", "android_things", "--out", image.to_str().unwrap(), "--scale", "0.04"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let batch = |extra: &[&str]| {
        let mut cmd = bin();
        cmd.args([
            "batch-audit",
            "--model",
            model.to_str().unwrap(),
            "--images",
            image.to_str().unwrap(),
            "--cache-dir",
            cache.to_str().unwrap(),
            "--cache-stats",
        ]);
        cmd.args(extra);
        cmd.output().unwrap()
    };

    // Cold batch: completes, exits 0, profiles live into the dynamic lane.
    let out = batch(&["--cves", "CVE-2018-9412"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("1 jobs (1 completed, 0 failed)"), "summary line: {stdout}");
    assert!(stderr.contains("cache persisted to"), "cold run persists: {stderr}");
    // (A cold run still records in-memory hits: the pipeline and the
    // differential engine reuse profiles within the same audit.)
    let (_, misses, profiled) = dyn_counters(&stderr);
    assert!(misses > 0 && profiled > 0, "cold run profiles live: {misses} misses, {profiled} profiled");

    // Warm batch in a fresh process: the persisted dynamic lane answers
    // everything — zero misses, zero live profiling.
    let out = batch(&["--cves", "CVE-2018-9412"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "{stderr}");
    let (hits, misses, profiled) = dyn_counters(&stderr);
    assert!(hits > 0, "warm run is served by the dynamic lane: {stderr}");
    assert_eq!((misses, profiled), (0, 0), "warm run must not execute: {stderr}");

    // Exit codes: an unknown CVE and a missing image directory both fail
    // with status 1 and a diagnostic on stderr.
    let out = batch(&["--cves", "CVE-0000-0000"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown CVE"));

    let out = bin()
        .args([
            "batch-audit",
            "--model",
            model.to_str().unwrap(),
            "--images",
            dir.join("no_such_image").to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "missing image dir must fail");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn train_build_scan_roundtrip() {
    let dir = tmpdir("roundtrip");
    let model = dir.join("model.json");
    let image = dir.join("image");

    // Train a small model.
    let out = bin()
        .args([
            "train",
            "--out",
            model.to_str().unwrap(),
            "--libs",
            "10",
            "--epochs",
            "8",
            "--pairs",
            "6",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(model.exists());

    // Build a tiny on-disk image.
    let out = bin()
        .args([
            "build-image",
            "--device",
            "android_things",
            "--out",
            image.to_str().unwrap(),
            "--scale",
            "0.04",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(image.join("libstagefright.fwb").exists());
    assert!(image.join("image.json").exists());

    // Scan for the flagship CVE.
    let out = bin()
        .args([
            "scan",
            "--model",
            model.to_str().unwrap(),
            "--image",
            image.to_str().unwrap(),
            "--cve",
            "CVE-2018-9412",
        ])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("best match: libstagefright:"), "scan output: {text}");

    // Patch-check the same CVE: vulnerable on Android Things.
    let out = bin()
        .args([
            "patch-check",
            "--model",
            model.to_str().unwrap(),
            "--image",
            image.to_str().unwrap(),
            "--cve",
            "CVE-2018-9412",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("STILL VULNERABLE"), "patch-check output: {text}");

    let _ = std::fs::remove_dir_all(&dir);
}
