//! Crash-tolerant daemon restart, end to end over the real binary: a
//! served daemon is SIGKILLed mid-life, a fresh `serve` on the same
//! socket takes over the stale socket (announcing the dead pid from the
//! lockfile), and — because `--checkpoint-every 1` persisted the caches
//! after the pre-crash audit — the first post-restart audit is fully
//! warm: identical verdicts, zero VM executions in the new process.
//!
//! Ignored by default (trains a model and runs two daemon processes);
//! CI's soak-smoke job runs it with `--ignored`.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_patchecko"))
}

fn tmpdir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("patchecko_restart_test_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Poll `client --stats` until the daemon behind `socket` answers.
fn wait_ready(socket: &Path) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let out = bin()
            .args(["client", "--socket", socket.to_str().unwrap(), "--stats"])
            .output()
            .unwrap();
        if out.status.success() {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "daemon never came up: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

fn client_json(socket: &Path, args: &[&str]) -> String {
    let out = bin()
        .args(["client", "--socket", socket.to_str().unwrap()])
        .args(args)
        .output()
        .unwrap();
    assert!(out.status.success(), "client {args:?}: {}", String::from_utf8_lossy(&out.stderr));
    String::from_utf8(out.stdout).unwrap()
}

fn spawn_serve(model: &Path, image: &Path, socket: &Path, cache: &Path) -> Child {
    bin()
        .args([
            "serve",
            "--model",
            model.to_str().unwrap(),
            "--images",
            image.to_str().unwrap(),
            "--socket",
            socket.to_str().unwrap(),
            "--cache-dir",
            cache.to_str().unwrap(),
            "--checkpoint-every",
            "1",
            "--workers",
            "2",
        ])
        .stderr(Stdio::piped())
        .spawn()
        .unwrap()
}

#[test]
#[ignore = "trains a model and runs two daemon processes; run explicitly or via CI soak-smoke"]
fn sigkilled_daemon_is_replaced_on_the_same_socket_and_serves_warm() {
    let dir = tmpdir("sigkill");
    let model = dir.join("model.json");
    let image = dir.join("image");
    let cache = dir.join("cache");
    let socket = dir.join("scand.sock");

    let out = bin()
        .args(["train", "--out", model.to_str().unwrap(), "--libs", "4", "--epochs", "2", "--pairs", "4"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let out = bin()
        .args(["build-image", "--device", "android_things", "--out", image.to_str().unwrap(), "--scale", "0.05"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // ---- First daemon: one cold audit, checkpointed, then SIGKILL. ----
    let mut first = spawn_serve(&model, &image, &socket, &cache);
    wait_ready(&socket);
    let cold = client_json(&socket, &["--tenant", "acme", "--audit", "0"]);
    // `--checkpoint-every 1` persists all cache lanes after that job —
    // but the client is released *before* the checkpoint runs, so wait
    // for the files to land. (A SIGKILL mid-checkpoint is survivable —
    // saves are atomic — it just loses the un-checkpointed tail, which
    // would void this test's warm-restart claim.)
    let deadline = Instant::now() + Duration::from_secs(60);
    for lane in ["artifacts.json", "dyn_artifacts.json", "sig_index.json"] {
        while !cache.join(lane).exists() {
            assert!(Instant::now() < deadline, "checkpoint never landed: {lane}");
            std::thread::sleep(Duration::from_millis(20));
        }
    }
    // Now the daemon dies without any chance to clean up.
    first.kill().unwrap();
    first.wait().unwrap();
    assert!(socket.exists(), "a SIGKILLed daemon leaves its socket file behind");

    // ---- Second daemon, same socket: takeover announced by pid. -------
    let mut second = spawn_serve(&model, &image, &socket, &cache);
    wait_ready(&socket);

    // The restart is warm from the checkpoint: identical verdict JSON,
    // and the new process has executed zero VM runs to produce it.
    let warm = client_json(&socket, &["--tenant", "acme", "--audit", "0"]);
    assert_eq!(warm, cold, "the post-restart audit reproduces the pre-crash verdicts");
    let stats: serde_json::Value =
        serde_json::from_str(&client_json(&socket, &["--stats"])).unwrap();
    let vm_executions = match &stats {
        serde_json::Value::Map(fields) => fields
            .iter()
            .find(|(k, _)| k == "vm_executions")
            .and_then(|(_, v)| v.as_f64())
            .expect("stats carry vm_executions"),
        other => panic!("stats must be a JSON object, got {other:?}"),
    };
    assert_eq!(vm_executions, 0.0, "the checkpoint made the restart-warm audit VM-free");

    let out = bin()
        .args(["client", "--socket", socket.to_str().unwrap(), "--drain"])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let status = second.wait().unwrap();
    assert!(status.success(), "drained daemon exits cleanly");
    let stderr = {
        use std::io::Read;
        let mut buf = String::new();
        second.stderr.take().unwrap().read_to_string(&mut buf).unwrap();
        buf
    };
    assert!(
        stderr.contains("taking over stale socket"),
        "the takeover is announced in the daemon log:\n{stderr}"
    );
    assert!(!socket.exists(), "clean exit removes the socket");
    let _ = std::fs::remove_dir_all(&dir);
}
