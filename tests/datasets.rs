//! Dataset integrity integration tests: shapes, ground truth, and
//! determinism of Datasets I/II/III.

use patchecko::corpus::{self, dataset1, PatchMagnitude};
use patchecko::fwbin::isa::{Arch, OptLevel};

#[test]
fn catalog_matches_table6_structure() {
    let catalog = corpus::full_catalog();
    assert_eq!(catalog.len(), 25);
    // Libraries shared by multiple CVEs, as in Table VI.
    let stagefright: Vec<_> =
        catalog.iter().filter(|e| e.library == "libstagefright").collect();
    assert_eq!(stagefright.len(), 2); // 9412 + 13182
    let extractor: Vec<_> =
        catalog.iter().filter(|e| e.library == "libmediaextractor").collect();
    assert_eq!(extractor.len(), 4); // 13252, 13253, 9499, 9424
    // Scaled library sizes preserve the paper's ordering (libwebviewchromium
    // largest, libmtp smallest).
    let max = catalog.iter().max_by_key(|e| e.library_functions).unwrap();
    assert_eq!(max.library, "libwebviewchromium");
    let min = catalog.iter().min_by_key(|e| e.library_functions).unwrap();
    assert_eq!(min.library, "libmtp");
}

#[test]
fn catalog_magnitudes_match_paper_narrative() {
    let catalog = corpus::full_catalog();
    let mag = |cve: &str| catalog.iter().find(|e| e.cve == cve).unwrap().magnitude;
    assert_eq!(mag("CVE-2018-9470"), PatchMagnitude::Tiny, "one-integer patch");
    assert_eq!(mag("CVE-2017-13209"), PatchMagnitude::Heavy, "restructuring patch");
    assert_eq!(mag("CVE-2018-9345"), PatchMagnitude::Heavy);
    assert_eq!(mag("CVE-2018-9412"), PatchMagnitude::Standard);
}

#[test]
fn android_things_ground_truth_is_table8() {
    let device = corpus::build_device(&corpus::android_things_spec(), &corpus::full_catalog(), 0.05);
    // The exact ✓-column of Table VIII.
    let expected_patched = [
        ("CVE-2018-9451", false),
        ("CVE-2018-9340", false),
        ("CVE-2017-13232", true),
        ("CVE-2018-9345", false),
        ("CVE-2018-9420", false),
        ("CVE-2017-13210", true),
        ("CVE-2018-9470", false),
        ("CVE-2017-13209", true),
        ("CVE-2018-9411", false),
        ("CVE-2017-13252", true),
        ("CVE-2017-13253", true),
        ("CVE-2018-9499", false),
        ("CVE-2018-9424", false),
        ("CVE-2018-9491", false),
        ("CVE-2017-13278", true),
        ("CVE-2018-9410", false),
        ("CVE-2017-13208", true),
        ("CVE-2018-9498", false),
        ("CVE-2017-13279", true),
        ("CVE-2018-9440", false),
        ("CVE-2018-9427", false),
        ("CVE-2017-13178", false),
        ("CVE-2017-13180", true),
        ("CVE-2018-9412", false),
        ("CVE-2017-13182", true),
    ];
    for (cve, patched) in expected_patched {
        assert_eq!(device.truth_for(cve).unwrap().patched, patched, "{cve}");
    }
}

#[test]
fn dataset1_attrition_near_2108_binaries() {
    // Count supported combinations at paper scale without compiling.
    let mut kept = 0;
    for i in 0..100 {
        let name = format!("lib_ds1_{i}");
        for arch in Arch::ALL {
            for opt in OptLevel::ALL {
                if !dataset1::combo_unsupported(&name, arch, opt) {
                    kept += 1;
                }
            }
        }
    }
    // The paper obtained 2,108 of 2,400.
    assert!((2050..=2250).contains(&kept), "kept {kept}");
}

#[test]
fn device_images_are_stripped_and_deterministic() {
    let catalog = corpus::full_catalog();
    let a = corpus::build_device(&corpus::pixel2xl_spec(), &catalog, 0.05);
    let b = corpus::build_device(&corpus::pixel2xl_spec(), &catalog, 0.05);
    assert_eq!(a.image, b.image);
    for bin in &a.image.binaries {
        assert!(bin.is_stripped());
        // Round-trips through the wire format.
        let back = patchecko::fwbin::Binary::from_bytes(&bin.to_bytes()).unwrap();
        assert_eq!(*bin, back);
    }
    // Devices differ in architecture per their specs.
    assert!(a.image.binaries.iter().all(|b| b.arch == Arch::Arm64));
    let at = corpus::build_device(&corpus::android_things_spec(), &catalog, 0.05);
    assert!(at.image.binaries.iter().all(|b| b.arch == Arch::Arm32));
}

#[test]
fn vulndb_references_differ_per_version_and_decode() {
    let db = corpus::build_vulndb(5, 3);
    assert_eq!(db.entries.len(), 30);
    for e in &db.entries {
        assert_ne!(e.vulnerable_bin.functions[0].code, e.patched_bin.functions[0].code);
        assert!(e.vulnerable_bin.decode_function(0).is_ok());
        assert!(e.patched_bin.decode_function(0).is_ok());
    }
}

#[test]
fn ground_truth_names_align_with_function_table() {
    let catalog = corpus::full_catalog();
    let device = corpus::build_device(&corpus::android_things_spec(), &catalog, 0.05);
    for t in &device.truth {
        let name = device.ground_truth_name(&t.library, t.function_index).unwrap();
        let entry = catalog.iter().find(|e| e.cve == t.cve).unwrap();
        assert_eq!(name, entry.function, "{}", t.cve);
    }
}
